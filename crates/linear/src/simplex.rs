//! Two-phase primal simplex over exact rationals.
//!
//! The paper phrases its termination condition as an LP feasibility/optimality
//! question (its Eq. 4–6). We provide a small, exact solver: Bland's rule
//! (which guarantees termination without cycling), dense tableau, arbitrary
//! precision rationals. Problems in this domain are tiny (tens of rows), so
//! numerical sophistication would be wasted; exactness is what matters,
//! because a feasibility misjudgement is a soundness bug in the termination
//! analyzer.

use crate::expr::{Constraint, ConstraintSystem, LinExpr, Rel, Var};
use crate::rat::Rat;
use std::collections::{BTreeMap, BTreeSet};

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpOutcome {
    /// No point satisfies the constraints.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
    /// An optimal solution.
    Optimal {
        /// Minimum objective value.
        value: Rat,
        /// A point attaining it (vars absent from the map are zero).
        point: BTreeMap<Var, Rat>,
    },
}

impl LpOutcome {
    /// The optimal point, if any.
    pub fn point(&self) -> Option<&BTreeMap<Var, Rat>> {
        match self {
            LpOutcome::Optimal { point, .. } => Some(point),
            _ => None,
        }
    }

    /// The optimal value, if any.
    pub fn value(&self) -> Option<&Rat> {
        match self {
            LpOutcome::Optimal { value, .. } => Some(value),
            _ => None,
        }
    }
}

/// A linear program: minimize `objective` subject to `constraints`, with the
/// variables in `nonneg` restricted to be ≥ 0 and all others free.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Objective to minimize.
    pub objective: LinExpr,
    /// Constraint conjunction.
    pub constraints: ConstraintSystem,
    /// Variables restricted to be nonnegative; all others range over ℚ.
    pub nonneg: BTreeSet<Var>,
}

impl LpProblem {
    /// A feasibility problem (zero objective).
    pub fn feasibility(constraints: ConstraintSystem, nonneg: BTreeSet<Var>) -> LpProblem {
        LpProblem { objective: LinExpr::zero(), constraints, nonneg }
    }

    /// Solve by two-phase simplex.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(&self.objective, &self.constraints, &self.nonneg).solve()
    }

    /// Minimize the given objective over this problem's constraints.
    pub fn minimize(&self, objective: LinExpr) -> LpOutcome {
        Tableau::build(&objective, &self.constraints, &self.nonneg).solve()
    }

    /// Maximize: negate, minimize, negate back.
    pub fn maximize(&self, objective: LinExpr) -> LpOutcome {
        match self.minimize(-objective) {
            LpOutcome::Optimal { value, point } => LpOutcome::Optimal { value: -value, point },
            other => other,
        }
    }
}

/// Decide whether `constraints` (with `nonneg` sign restrictions) has a
/// solution; returns a witness point if so.
pub fn feasible_point(
    constraints: &ConstraintSystem,
    nonneg: &BTreeSet<Var>,
) -> Option<BTreeMap<Var, Rat>> {
    match Tableau::build(&LinExpr::zero(), constraints, nonneg).solve() {
        LpOutcome::Optimal { point, .. } => Some(point),
        LpOutcome::Unbounded => unreachable!("zero objective cannot be unbounded"),
        LpOutcome::Infeasible => None,
    }
}

/// Check whether `candidate` (an inequality or equality) is implied by
/// `system` over the given sign restrictions: i.e. no feasible point of
/// `system` violates it. Used for redundancy removal and polyhedron
/// inclusion tests.
pub fn is_implied(
    system: &ConstraintSystem,
    nonneg: &BTreeSet<Var>,
    candidate: &Constraint,
) -> bool {
    // candidate: expr <= 0. It fails to be implied iff max expr > 0.
    // candidate: expr = 0. Implied iff max expr <= 0 and min expr >= 0.
    // max expr = -(min -expr); both probes borrow the system directly.
    let max_ok = match Tableau::build(&-&candidate.expr, system, nonneg).solve() {
        LpOutcome::Infeasible => return true, // empty system implies anything
        LpOutcome::Unbounded => false,
        LpOutcome::Optimal { value, .. } => !(-value).is_positive(),
    };
    if candidate.rel == Rel::Le {
        return max_ok;
    }
    if !max_ok {
        return false;
    }
    match Tableau::build(&candidate.expr, system, nonneg).solve() {
        LpOutcome::Infeasible => true,
        LpOutcome::Unbounded => false,
        LpOutcome::Optimal { value, .. } => !value.is_negative(),
    }
}

/// A warm-started batch variant of [`is_implied`] for a *fixed* system:
/// phase 1 runs once at construction; each [`ImplicationProbe::implies_le`]
/// call installs a new objective over the existing feasible basis and runs
/// only phase 2. Simplex pivots preserve feasibility, so the basis the
/// previous probe ended on (optimal or mid-ray on an unbounded probe) is a
/// valid warm start for the next — this is what makes tier-3 FM redundancy
/// probes affordable across a batch of candidate rows.
pub struct ImplicationProbe {
    rows: Vec<Vec<Rat>>,
    basis: Vec<usize>,
    /// Structural + slack columns.
    n: usize,
    /// Columns including artificials; rhs lives at index `total`.
    total: usize,
    var_cols: BTreeMap<Var, (usize, Option<usize>)>,
    nonneg: BTreeSet<Var>,
    /// Phase-1 verdict; an infeasible system implies everything.
    infeasible: bool,
}

impl ImplicationProbe {
    /// Prepare probes against `system` with the given sign restrictions.
    /// Runs phase 1 once.
    pub fn new(system: &ConstraintSystem, nonneg: &BTreeSet<Var>) -> ImplicationProbe {
        let t = Tableau::build(&LinExpr::zero(), system, nonneg);
        let m = t.rows.len();
        let n = t.num_cols;
        let total = n + m;
        let mut probe = ImplicationProbe {
            rows: t.rows,
            basis: Vec::new(),
            n,
            total,
            var_cols: t.var_cols,
            nonneg: nonneg.clone(),
            infeasible: false,
        };
        if m == 0 {
            return probe;
        }
        // Phase 1, exactly as in `Tableau::solve`.
        for (i, row) in probe.rows.iter_mut().enumerate() {
            let rhs = row.pop().expect("rhs");
            row.extend(std::iter::repeat_with(Rat::zero).take(m));
            row[n + i] = Rat::one();
            row.push(rhs);
        }
        probe.basis = (n..n + m).collect();
        let mut obj = vec![Rat::zero(); total + 1];
        for row in &probe.rows {
            for j in 0..=total {
                obj[j] -= &row[j];
            }
        }
        for o in obj.iter_mut().take(total).skip(n) {
            *o = Rat::zero();
        }
        if !Tableau::run_simplex(&mut probe.rows, &mut obj, &mut probe.basis, total) {
            unreachable!("phase 1 is bounded below by 0");
        }
        if obj[total].is_negative() {
            probe.infeasible = true;
            return probe;
        }
        for i in 0..m {
            if probe.basis[i] >= n {
                if let Some(j) = (0..n).find(|&j| !probe.rows[i][j].is_zero()) {
                    Tableau::pivot(&mut probe.rows, &mut obj, &mut probe.basis, i, j);
                }
            }
        }
        probe
    }

    /// Whether the system was infeasible (in which case every candidate is
    /// vacuously implied).
    pub fn system_infeasible(&self) -> bool {
        self.infeasible
    }

    /// Does the system imply `expr ≤ 0`? Exact: maximizes `expr` over the
    /// system by re-pricing the warm tableau and checks the optimum.
    pub fn implies_le(&mut self, expr: &LinExpr) -> bool {
        if self.infeasible {
            return true;
        }
        // Maximize expr = minimize −expr. Variables absent from the system
        // are unconstrained by it: a free one with a nonzero coefficient
        // (or a nonnegative one pushed upward) makes the max unbounded; a
        // nonnegative one with a negative coefficient sits at 0 and drops.
        let mut cost = vec![Rat::zero(); self.total + 1];
        for (v, a) in expr.terms() {
            match self.var_cols.get(&v) {
                Some(&(pc, mc)) => {
                    cost[pc] -= a;
                    if let Some(mc) = mc {
                        cost[mc] += a;
                    }
                }
                None => {
                    if !self.nonneg.contains(&v) || a.is_positive() {
                        return false;
                    }
                }
            }
        }
        if self.rows.is_empty() {
            // No rows at all: the max over the origin-anchored cone is the
            // constant iff no coefficient survived above.
            return !expr.constant_term().is_positive();
        }
        // Price out the current basis, then phase 2 with artificials barred.
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.n && !cost[b].is_zero() {
                let factor = cost[b].clone();
                for (o, cell) in cost.iter_mut().zip(&self.rows[i]) {
                    if cell.is_zero() {
                        continue;
                    }
                    *o -= &(&factor * cell);
                }
            }
        }
        if !Tableau::run_simplex_restricted(
            &mut self.rows,
            &mut cost,
            &mut self.basis,
            self.total,
            self.n,
        ) {
            return false; // max expr unbounded above
        }
        // min(−expr) = −constant + (−cost[total]); max expr = −min(−expr).
        let min_neg = &(-expr.constant_term().clone()) + &(-cost[self.total].clone());
        !(-min_neg).is_positive()
    }
}

/// Internal dense simplex tableau in equality standard form
/// `A·x = b, x ≥ 0`, minimize `c·x`.
struct Tableau {
    /// Rows of A augmented with b as the last column.
    rows: Vec<Vec<Rat>>,
    /// Objective row (phase-2 cost), length = num_cols.
    cost: Vec<Rat>,
    /// Constant offset of the objective.
    cost_offset: Rat,
    /// Column index of the basic variable of each row.
    basis: Vec<usize>,
    /// Total structural + slack columns (excludes artificials until added).
    num_cols: usize,
    /// Map from user variable to (plus-column, optional minus-column).
    var_cols: BTreeMap<Var, (usize, Option<usize>)>,
}

impl Tableau {
    fn build(
        objective: &LinExpr,
        constraints: &ConstraintSystem,
        nonneg: &BTreeSet<Var>,
    ) -> Tableau {
        // Collect all variables from constraints and objective.
        let mut vars: BTreeSet<Var> = constraints.vars();
        vars.extend(objective.vars());

        // Assign columns: nonneg vars get one column, free vars two (x+ - x-).
        let mut var_cols: BTreeMap<Var, (usize, Option<usize>)> = BTreeMap::new();
        let mut next_col = 0usize;
        for &v in &vars {
            if nonneg.contains(&v) {
                var_cols.insert(v, (next_col, None));
                next_col += 1;
            } else {
                var_cols.insert(v, (next_col, Some(next_col + 1)));
                next_col += 2;
            }
        }

        // One slack column per inequality.
        let n_slacks = constraints.constraints().iter().filter(|c| c.rel == Rel::Le).count();
        let first_slack = next_col;
        let num_cols = next_col + n_slacks;

        // Build rows: expr REL 0 becomes  Σ a·cols (+ slack) = -constant.
        let mut rows: Vec<Vec<Rat>> = Vec::new();
        let mut slack_idx = first_slack;
        for c in constraints.constraints() {
            let mut row = vec![Rat::zero(); num_cols + 1];
            for (v, a) in c.expr.terms() {
                let (pc, mc) = var_cols[&v];
                row[pc] += a;
                if let Some(mc) = mc {
                    row[mc] -= a;
                }
            }
            // rhs
            row[num_cols] = -c.expr.constant_term().clone();
            if c.rel == Rel::Le {
                row[slack_idx] = Rat::one();
                slack_idx += 1;
            }
            // Make rhs nonnegative for phase 1.
            if row[num_cols].is_negative() {
                for x in row.iter_mut() {
                    *x = -&*x;
                }
            }
            rows.push(row);
        }

        // Phase-2 cost from the objective.
        let mut cost = vec![Rat::zero(); num_cols];
        for (v, a) in objective.terms() {
            let (pc, mc) = var_cols[&v];
            cost[pc] += a;
            if let Some(mc) = mc {
                cost[mc] -= a;
            }
        }

        Tableau {
            rows,
            cost,
            cost_offset: objective.constant_term().clone(),
            basis: Vec::new(),
            num_cols,
            var_cols,
        }
    }

    fn solve(mut self) -> LpOutcome {
        let m = self.rows.len();
        if m == 0 {
            // No constraints: objective must be constant or the LP is
            // unbounded in some direction with a nonzero cost coefficient
            // (every column is a nonnegative variable that can grow).
            for c in &self.cost {
                if c.is_negative() {
                    return LpOutcome::Unbounded;
                }
            }
            // All-zero point is optimal.
            return LpOutcome::Optimal { value: self.cost_offset.clone(), point: BTreeMap::new() };
        }

        // Phase 1: add one artificial per row, minimize their sum.
        let n = self.num_cols;
        let total = n + m;
        for (i, row) in self.rows.iter_mut().enumerate() {
            let rhs = row.pop().expect("rhs");
            row.extend(std::iter::repeat_with(Rat::zero).take(m));
            row[n + i] = Rat::one();
            row.push(rhs);
        }
        self.basis = (n..n + m).collect();

        // Phase-1 reduced cost row: minimize Σ artificials. Start from
        // cost row = Σ_i (-row_i) over structural columns (standard trick).
        let mut obj = vec![Rat::zero(); total + 1];
        for row in &self.rows {
            for j in 0..=total {
                obj[j] -= &row[j];
            }
        }
        // Zero out artificial columns in obj (they are basic with cost 1):
        for o in obj.iter_mut().take(total).skip(n) {
            *o = Rat::zero();
        }

        if !Self::run_simplex(&mut self.rows, &mut obj, &mut self.basis, total) {
            unreachable!("phase 1 is bounded below by 0");
        }
        // obj[total] holds -(current phase-1 objective).
        if obj[total].is_negative() {
            return LpOutcome::Infeasible;
        }

        // Drive any artificial variables out of the basis (degenerate rows).
        for i in 0..m {
            if self.basis[i] >= n {
                // Find a structural column with nonzero coefficient to pivot.
                let pivot_col = (0..n).find(|&j| !self.rows[i][j].is_zero());
                match pivot_col {
                    Some(j) => {
                        Self::pivot(&mut self.rows, &mut obj, &mut self.basis, i, j);
                    }
                    None => {
                        // Row is redundant (all-zero over structural columns);
                        // its rhs must be zero here. Leave it; it is inert.
                    }
                }
            }
        }

        // Phase 2: install the real cost row, priced out over the basis.
        let mut obj2 = vec![Rat::zero(); total + 1];
        obj2[..n].clone_from_slice(&self.cost);
        // Price out basic variables: obj2 -= cost[basic] * row.
        for (i, &b) in self.basis.iter().enumerate() {
            if b < n && !obj2[b].is_zero() {
                let factor = obj2[b].clone();
                for (o, cell) in obj2.iter_mut().zip(&self.rows[i]) {
                    if cell.is_zero() {
                        continue;
                    }
                    *o -= &(&factor * cell);
                }
            }
        }
        // Forbid re-entry of artificial columns.
        let artificial_start = n;

        if !Self::run_simplex_restricted(
            &mut self.rows,
            &mut obj2,
            &mut self.basis,
            total,
            artificial_start,
        ) {
            return LpOutcome::Unbounded;
        }

        // Read off the solution.
        let mut col_val = vec![Rat::zero(); total];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < total {
                col_val[b] = self.rows[i][total].clone();
            }
        }
        let mut point = BTreeMap::new();
        for (&v, &(pc, mc)) in &self.var_cols {
            let mut val = col_val[pc].clone();
            if let Some(mc) = mc {
                val -= &col_val[mc];
            }
            if !val.is_zero() {
                point.insert(v, val);
            }
        }
        // obj2[total] = -(objective - priced constant), i.e. the negated
        // current objective value of the basic solution.
        let value = &self.cost_offset + &(-obj2[total].clone());
        LpOutcome::Optimal { value, point }
    }

    /// Standard simplex loop with Bland's rule. Returns false on
    /// unboundedness. `obj` has length `total + 1`; reduced costs in
    /// `obj[0..total]`, negated objective value in `obj[total]`.
    fn run_simplex(
        rows: &mut [Vec<Rat>],
        obj: &mut [Rat],
        basis: &mut [usize],
        total: usize,
    ) -> bool {
        Self::run_simplex_restricted(rows, obj, basis, total, total)
    }

    /// Like [`run_simplex`] but columns `>= forbidden_from` may not enter
    /// the basis (used to keep artificials out during phase 2).
    fn run_simplex_restricted(
        rows: &mut [Vec<Rat>],
        obj: &mut [Rat],
        basis: &mut [usize],
        total: usize,
        forbidden_from: usize,
    ) -> bool {
        loop {
            // Bland: entering column = smallest index with negative reduced
            // cost.
            let entering = (0..total.min(forbidden_from)).find(|&j| obj[j].is_negative());
            let Some(e) = entering else {
                return true; // optimal
            };
            // Ratio test, Bland tie-break by smallest basis index.
            let mut leave: Option<(usize, Rat)> = None;
            for (i, row) in rows.iter().enumerate() {
                if row[e].is_positive() {
                    let ratio = &row[total] / &row[e];
                    match &leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < *lr || (ratio == *lr && basis[i] < basis[*li]) {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((l, _)) = leave else {
                return false; // unbounded
            };
            Self::pivot(rows, obj, basis, l, e);
        }
    }

    /// Pivot on (row l, column e).
    fn pivot(rows: &mut [Vec<Rat>], obj: &mut [Rat], basis: &mut [usize], l: usize, e: usize) {
        let piv = rows[l][e].clone();
        debug_assert!(!piv.is_zero());
        let inv = piv.recip();
        for x in rows[l].iter_mut() {
            *x *= &inv;
        }
        for i in 0..rows.len() {
            if i == l || rows[i][e].is_zero() {
                continue;
            }
            let factor = rows[i][e].clone();
            // Split-borrow the pivot row away from row i to combine them.
            let (pivot_row, target_row) = if i < l {
                let (a, b) = rows.split_at_mut(l);
                (&b[0], &mut a[i])
            } else {
                let (a, b) = rows.split_at_mut(i);
                (&a[l], &mut b[0])
            };
            for (t, cell) in target_row.iter_mut().zip(pivot_row.iter()) {
                if cell.is_zero() {
                    continue;
                }
                *t -= &(&factor * cell);
            }
        }
        if !obj[e].is_zero() {
            let factor = obj[e].clone();
            for (o, cell) in obj.iter_mut().zip(rows[l].iter()) {
                if cell.is_zero() {
                    continue;
                }
                *o -= &(&factor * cell);
            }
        }
        basis[l] = e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    fn all_nonneg(vars: impl IntoIterator<Item = Var>) -> BTreeSet<Var> {
        vars.into_iter().collect()
    }

    #[test]
    fn simple_minimization() {
        // min x subject to x >= 3 (x >= 0): optimum 3.
        let x = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::constant(r(3, 1))));
        let p = LpProblem { objective: LinExpr::var(x), constraints: sys, nonneg: all_nonneg([x]) };
        match p.solve() {
            LpOutcome::Optimal { value, point } => {
                assert_eq!(value, r(3, 1));
                assert_eq!(point.get(&x), Some(&r(3, 1)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn classic_lp() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
        // Optimum 36 at (2, 6). (Dantzig's textbook example.)
        let (x, y) = (0, 1);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::le(LinExpr::var(x), LinExpr::constant(r(4, 1))));
        sys.push(Constraint::le(LinExpr::term(y, r(2, 1)), LinExpr::constant(r(12, 1))));
        sys.push(Constraint::le(
            &LinExpr::term(x, r(3, 1)) + &LinExpr::term(y, r(2, 1)),
            LinExpr::constant(r(18, 1)),
        ));
        let p = LpProblem::feasibility(sys, all_nonneg([x, y]));
        let obj = &LinExpr::term(x, r(3, 1)) + &LinExpr::term(y, r(5, 1));
        match p.maximize(obj) {
            LpOutcome::Optimal { value, point } => {
                assert_eq!(value, r(36, 1));
                assert_eq!(point.get(&x), Some(&r(2, 1)));
                assert_eq!(point.get(&y), Some(&r(6, 1)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn infeasible() {
        let x = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::constant(r(2, 1))));
        sys.push(Constraint::le(LinExpr::var(x), LinExpr::constant(r(1, 1))));
        let p = LpProblem::feasibility(sys, all_nonneg([x]));
        assert_eq!(p.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded() {
        // min -x, x >= 0, no upper bound.
        let x = 0;
        let p = LpProblem {
            objective: -&LinExpr::var(x),
            constraints: ConstraintSystem::new(),
            nonneg: all_nonneg([x]),
        };
        assert_eq!(p.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn free_variables() {
        // min x, x free, x >= -5 is the only bound: optimum -5.
        let x = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::constant(r(-5, 1))));
        let p = LpProblem { objective: LinExpr::var(x), constraints: sys, nonneg: BTreeSet::new() };
        match p.solve() {
            LpOutcome::Optimal { value, point } => {
                assert_eq!(value, r(-5, 1));
                assert_eq!(point.get(&x), Some(&r(-5, 1)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn free_variable_unbounded() {
        // min x with x free and no constraints: unbounded.
        let p = LpProblem {
            objective: LinExpr::var(0),
            constraints: ConstraintSystem::new(),
            nonneg: BTreeSet::new(),
        };
        // A free variable with no constraints builds zero rows but two
        // columns; the minus column has negative cost.
        assert_eq!(p.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x + y st x + y = 4, x - y = 2, x,y >= 0 => x=3, y=1, value 4.
        let (x, y) = (0, 1);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(4, 1))));
        sys.push(Constraint::eq(&LinExpr::var(x) - &LinExpr::var(y), LinExpr::constant(r(2, 1))));
        let p = LpProblem {
            objective: &LinExpr::var(x) + &LinExpr::var(y),
            constraints: sys,
            nonneg: all_nonneg([x, y]),
        };
        match p.solve() {
            LpOutcome::Optimal { value, point } => {
                assert_eq!(value, r(4, 1));
                assert_eq!(point.get(&x), Some(&r(3, 1)));
                assert_eq!(point.get(&y), Some(&r(1, 1)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn degenerate_redundant_rows() {
        // x = 1 stated twice plus x <= 1: phase 1 leaves a redundant row.
        let x = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(LinExpr::var(x), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::eq(LinExpr::var(x), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::le(LinExpr::var(x), LinExpr::constant(r(1, 1))));
        let p = LpProblem::feasibility(sys, all_nonneg([x]));
        match p.solve() {
            LpOutcome::Optimal { point, .. } => {
                assert_eq!(point.get(&x), Some(&r(1, 1)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn objective_with_constant_offset() {
        // min x + 10 st x >= 2 => 12.
        let x = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::constant(r(2, 1))));
        let p = LpProblem {
            objective: &LinExpr::var(x) + &LinExpr::constant(r(10, 1)),
            constraints: sys,
            nonneg: all_nonneg([x]),
        };
        assert_eq!(p.solve().value(), Some(&r(12, 1)));
    }

    #[test]
    fn implication_checks() {
        // {x <= 1} implies x <= 2 but not x <= 1/2 (x >= 0).
        let x = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::le(LinExpr::var(x), LinExpr::constant(r(1, 1))));
        let nn = all_nonneg([x]);
        let weak = Constraint::le(LinExpr::var(x), LinExpr::constant(r(2, 1)));
        let strong = Constraint::le(LinExpr::var(x), LinExpr::constant(r(1, 2)));
        assert!(is_implied(&sys, &nn, &weak));
        assert!(!is_implied(&sys, &nn, &strong));
    }

    #[test]
    fn implied_equality() {
        // {x + y = 3, x - y = 1} implies x = 2.
        let (x, y) = (0, 1);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(3, 1))));
        sys.push(Constraint::eq(&LinExpr::var(x) - &LinExpr::var(y), LinExpr::constant(r(1, 1))));
        let nn = BTreeSet::new();
        let cand = Constraint::eq(LinExpr::var(x), LinExpr::constant(r(2, 1)));
        assert!(is_implied(&sys, &nn, &cand));
        let wrong = Constraint::eq(LinExpr::var(x), LinExpr::constant(r(1, 1)));
        assert!(!is_implied(&sys, &nn, &wrong));
    }

    #[test]
    fn probe_matches_is_implied_across_a_batch() {
        // {x <= 1, y <= x} with x, y >= 0: one warm tableau, many probes.
        let (x, y, z) = (0, 1, 2);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::le(LinExpr::var(x), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::le(LinExpr::var(y), LinExpr::var(x)));
        let nn = all_nonneg([x, y, z]);
        let mut probe = ImplicationProbe::new(&sys, &nn);
        let cases = [
            (Constraint::le(LinExpr::var(y), LinExpr::constant(r(1, 1))), true),
            (Constraint::le(LinExpr::var(y), LinExpr::constant(r(1, 2))), false),
            (Constraint::le(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(2, 1))), true),
            // Mentions z, absent from the system and unbounded above.
            (Constraint::le(LinExpr::var(z), LinExpr::constant(r(10, 1))), false),
            // −z <= 0 holds at the nonneg optimum z = 0.
            (Constraint::le(-&LinExpr::var(z), LinExpr::zero()), true),
            (Constraint::le(LinExpr::var(x), LinExpr::constant(r(1, 1))), true),
        ];
        for (cand, expected) in cases {
            assert_eq!(is_implied(&sys, &nn, &cand), expected, "oracle: {cand:?}");
            assert_eq!(probe.implies_le(&cand.expr), expected, "probe: {cand:?}");
        }
    }

    #[test]
    fn probe_on_infeasible_system_implies_everything() {
        let x = 0;
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(LinExpr::var(x), LinExpr::constant(r(2, 1))));
        sys.push(Constraint::le(LinExpr::var(x), LinExpr::constant(r(1, 1))));
        let mut probe = ImplicationProbe::new(&sys, &BTreeSet::new());
        assert!(probe.system_infeasible());
        assert!(probe.implies_le(&LinExpr::constant(r(5, 1))));
    }

    #[test]
    fn probe_with_empty_system() {
        let mut probe = ImplicationProbe::new(&ConstraintSystem::new(), &BTreeSet::new());
        assert!(probe.implies_le(&LinExpr::constant(r(-1, 1))));
        assert!(!probe.implies_le(&LinExpr::constant(r(1, 1))));
        assert!(!probe.implies_le(&LinExpr::var(0)));
    }

    #[test]
    fn feasible_point_satisfies_system() {
        let (x, y) = (0, 1);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::ge(&LinExpr::var(x) + &LinExpr::var(y), LinExpr::constant(r(1, 1))));
        sys.push(Constraint::le(LinExpr::var(x), LinExpr::var(y)));
        let nn = all_nonneg([x, y]);
        let pt = feasible_point(&sys, &nn).expect("feasible");
        assert!(sys.holds_at(&pt));
    }
}
