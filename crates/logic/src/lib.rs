//! # argus-logic — logic-program substrate
//!
//! Terms, rules, programs, a Prolog-subset parser, unification, predicate
//! dependency graphs with SCC condensation, and bound–free mode analysis.
//! This crate knows nothing about termination; it supplies the syntactic
//! machinery that *Sohn & Van Gelder (PODS 1991)* presuppose:
//!
//! * [`Term`] with the paper's *structural term size* measure (§2.2);
//! * [`Program`] / [`Rule`] / [`Atom`] with IDB/EDB classification (§2);
//! * [`parser`] for the Prolog-like rule syntax of the paper's examples;
//! * [`unify`](mod@crate::unify) — unification with optional occurs check, used by the
//!   syntactic transformations of Appendix A;
//! * [`DepGraph`] — the predicate dependency digraph, Tarjan SCCs, and the
//!   recursive-subgoal / linear-recursion classification of §2.3;
//! * [`modes`] — bound–free adornment propagation (§3's preprocessing
//!   assumption).
//!
//! ```
//! use argus_logic::{parser::parse_program, DepGraph, PredKey};
//!
//! let program = parse_program(
//!     "append([], Ys, Ys).\n\
//!      append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
//! ).unwrap();
//! let graph = DepGraph::build(&program);
//! assert!(graph.is_recursive(&PredKey::new("append", 3)));
//! ```

#![warn(missing_docs)]

pub mod adorn;
pub mod arena;
pub mod cond;
pub mod depgraph;
pub mod groundness;
pub mod hash;
pub mod intern;
pub mod modes;
pub mod norm;
pub mod parser;
pub mod program;
pub mod span;
pub mod term;
pub mod unify;

pub use adorn::{adorn_program, AdornedProgram};
pub use arena::{TermArena, TermId};
pub use cond::Dnf;
pub use depgraph::DepGraph;
pub use groundness::{analyze_groundness, Groundness};
pub use intern::Sym;
pub use modes::{Adornment, Mode, ModeMap};
pub use norm::Norm;
pub use program::{Atom, Literal, PredKey, Program, Rule};
pub use span::{LineIndex, Span, SpanSlot};
pub use term::{SizePolynomial, Term};
pub use unify::{mgu, unify, unify_atoms, Subst};
