//! End-to-end reproduction of every worked example in the paper.

use argus_core::{analyze_source, SccOutcome, Verdict};
use argus_linear::Rat;

fn half() -> Rat {
    Rat::new(1.into(), 2.into())
}

/// Example 3.1 / 4.1: the permutation procedure, first argument bound.
/// "This example … cannot be shown to terminate (with the first argument
/// bound) by any of the previous methods cited." The analysis must derive
/// `2θ ≥ 1` and prove termination with θ = 1/2.
#[test]
fn example_3_1_perm() {
    let report = analyze_source(
        "perm([], []).\n\
         perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
         append([], Ys, Ys).\n\
         append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        "perm/2",
        "bf",
    )
    .unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
    // The witness for perm is a single theta with 2θ ≥ 1; the simplex
    // vertex solution is exactly 1/2.
    let w = report.witness_for(&argus_logic::PredKey::new("perm", 2)).expect("perm proved");
    assert_eq!(w.len(), 1);
    assert_eq!(w[0], half(), "paper: termination demonstrated using θ = 1/2");
}

/// Example 5.1: merge with the first two arguments bound. The combined
/// constraints reduce to θ1 = θ2 ≥ 1/2: "the sum of two bound arguments
/// always decreases in every recursive call".
#[test]
fn example_5_1_merge() {
    let report = analyze_source(
        "merge([], Ys, Ys).\n\
         merge(Xs, [], Xs).\n\
         merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
         merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).",
        "merge/3",
        "bbf",
    )
    .unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
    let w = report.witness_for(&argus_logic::PredKey::new("merge", 3)).expect("merge proved");
    assert_eq!(w.len(), 2);
    assert_eq!(w[0], w[1], "paper: θ1 = θ2");
    assert!(&w[0] + &w[1] >= Rat::one(), "paper: θ1 = θ2 ≥ 1/2");
}

/// Example 6.1: the arithmetic expression parser — mutual AND nonlinear
/// recursion. δ_et = δ_tn = 0 are forced, δ_ne = 1 gives no zero-weight
/// cycle, and α = β = γ ≥ 1/2 proves termination.
#[test]
fn example_6_1_parser() {
    let report = analyze_source(
        "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
         e(L, T) :- t(L, T).\n\
         t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
         t(L, T) :- n(L, T).\n\
         n(['('|A], T) :- e(A, [')'|T]).\n\
         n([L|T], T) :- z(L).",
        "e/2",
        "bf",
    )
    .unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
    let scc = report.scc_of(&argus_logic::PredKey::new("e", 2)).expect("e analyzed");
    assert_eq!(scc.members.len(), 3, "e, t, n are one SCC");
    match &scc.outcome {
        SccOutcome::Proved { witness, deltas } => {
            // δ pattern from the paper: e→t and t→n forced to 0, n→e = 1,
            // self-loops 1.
            let d = |a: &str, b: &str| {
                deltas
                    .get(&(argus_logic::PredKey::new(a, 2), argus_logic::PredKey::new(b, 2)))
                    .cloned()
                    .unwrap()
            };
            assert_eq!(d("e", "t"), Rat::zero());
            assert_eq!(d("t", "n"), Rat::zero());
            assert_eq!(d("n", "e"), Rat::one());
            assert_eq!(d("e", "e"), Rat::one());
            assert_eq!(d("t", "t"), Rat::one());
            // All three witnesses are >= 1/2 (the paper's α = β = γ ≥ 1/2).
            for name in ["e", "t", "n"] {
                let w = &witness[&argus_logic::PredKey::new(name, 2)];
                assert_eq!(w.len(), 1);
                assert!(w[0] >= half(), "theta[{name}] = {} < 1/2", w[0]);
            }
        }
        other => panic!("expected proof, got {other:?}"),
    }
}

/// Appendix A, Example A.1: in raw form the recursion does not shrink
/// argument sizes and the method fails; after the automatic transformation
/// sequence (safe unfolding → predicate splitting → safe unfolding) the
/// program is proved terminating.
#[test]
fn example_a_1_transformations() {
    let src = "p(g(X)) :- e(X).\n\
               p(g(X)) :- q(f(X)).\n\
               q(Y) :- p(Y).\n\
               q(f(Z)) :- p(Z), q(Z).";
    // Without preprocessing: not proved.
    let program = argus_logic::parser::parse_program(src).unwrap();
    let options = argus_core::AnalysisOptions { transform_phases: 0, ..Default::default() };
    let raw = argus_core::analyze(
        &program,
        &argus_logic::PredKey::new("p", 1),
        argus_logic::Adornment::parse("b").unwrap(),
        &options,
    );
    assert_ne!(raw.verdict, Verdict::Terminates, "raw A.1 must not be provable: {raw}");
    // With the Appendix A driver (default 3 phases): proved.
    let report = analyze_source(src, "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
}

/// A directly nonterminating loop: p :- p. The analyzer cannot prove it
/// (and must not!).
#[test]
fn direct_loop_unprovable() {
    let report = analyze_source("p(X) :- p(X).\np(a).", "p/1", "b").unwrap();
    assert_ne!(report.verdict, Verdict::Terminates);
}

/// A mutual loop with no size change anywhere: both deltas are forced to
/// zero, producing the zero-weight-cycle report of §6.1 step 3.
#[test]
fn mutual_loop_zero_cycle() {
    let report = analyze_source("p(X) :- q(X).\nq(X) :- p(X).", "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::ZeroWeightCycle, "{report}");
}

/// Classic single-argument structural recursion: append with first
/// argument bound, list length decreasing.
#[test]
fn append_bff() {
    let report = analyze_source(
        "append([], Ys, Ys).\n\
         append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        "append/3",
        "bff",
    )
    .unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
}

/// append called with only the THIRD argument bound also terminates (the
/// third argument shrinks) — this is the adornment the perm example
/// exercises internally.
#[test]
fn append_ffb() {
    let report = analyze_source(
        "append([], Ys, Ys).\n\
         append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        "append/3",
        "ffb",
    )
    .unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
}

/// append with NO bound arguments does not terminate top-down (it
/// enumerates forever); the analyzer must not prove it.
#[test]
fn append_fff_unprovable() {
    let report = analyze_source(
        "append([], Ys, Ys).\n\
         append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        "append/3",
        "fff",
    )
    .unwrap();
    assert_ne!(report.verdict, Verdict::Terminates);
}

/// Naive reverse: nonrecursive use of append inside a structural recursion.
#[test]
fn naive_reverse() {
    let report = analyze_source(
        "app([], Ys, Ys).\n\
         app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n\
         nrev([], []).\n\
         nrev([X|Xs], R) :- nrev(Xs, R1), app(R1, [X], R).",
        "nrev/2",
        "bf",
    )
    .unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
}

/// Quicksort: nonlinear recursion where the recursive sublists are smaller
/// than the input because of partition's size relation
/// (part1 = part3 + part4 − overhead…). This exercises §6.2.
#[test]
fn quicksort() {
    let report = analyze_source(
        "qsort([], []).\n\
         qsort([X|Xs], S) :- part(Xs, X, L, G), qsort(L, SL), qsort(G, SG),\n\
                             app(SL, [X|SG], S).\n\
         part([], _, [], []).\n\
         part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).\n\
         part([Y|Ys], X, L, [Y|G]) :- Y > X, part(Ys, X, L, G).\n\
         app([], Ys, Ys).\n\
         app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).",
        "qsort/2",
        "bf",
    )
    .unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
}

/// The Appendix C mode also proves the standard examples.
#[test]
fn path_constraint_mode_on_parser() {
    let program = argus_logic::parser::parse_program(
        "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
         e(L, T) :- t(L, T).\n\
         t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
         t(L, T) :- n(L, T).\n\
         n(['('|A], T) :- e(A, [')'|T]).\n\
         n([L|T], T) :- z(L).",
    )
    .unwrap();
    let options = argus_core::AnalysisOptions {
        delta_mode: argus_core::DeltaMode::PathConstraints,
        ..Default::default()
    };
    let report = argus_core::analyze(
        &program,
        &argus_logic::PredKey::new("e", 2),
        argus_logic::Adornment::parse("bf").unwrap(),
        &options,
    );
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
}

/// Appendix C correctly refuses the no-size-change mutual loop too (there
/// is no δ assignment with positive cycles that the sizes support).
#[test]
fn path_constraint_mode_rejects_loop() {
    let program = argus_logic::parser::parse_program("p(X) :- q(X).\nq(X) :- p(X).").unwrap();
    let options = argus_core::AnalysisOptions {
        delta_mode: argus_core::DeltaMode::PathConstraints,
        ..Default::default()
    };
    let report = argus_core::analyze(
        &program,
        &argus_logic::PredKey::new("p", 1),
        argus_logic::Adornment::parse("b").unwrap(),
        &options,
    );
    assert_ne!(report.verdict, Verdict::Terminates, "{report}");
}

/// Ackermann's function on successor naturals: nested recursion. The first
/// argument decreases or stays equal while the second decreases; the
/// analyzer needs the inter-argument constraint from the inner call. This
/// is a known hard case — we accept either outcome but the analysis must
/// not crash and must stay sound (i.e. it may fail to prove, never prove
/// wrongly; here it actually terminates, so any verdict is sound).
#[test]
fn ackermann_does_not_crash() {
    let report = analyze_source(
        "ack(z, N, s(N)).\n\
         ack(s(M), z, R) :- ack(M, s(z), R).\n\
         ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).",
        "ack/3",
        "bbf",
    )
    .unwrap();
    // Lexicographic descent is beyond a single linear combination: the
    // paper's method cannot prove Ackermann. Document that as Unknown.
    assert_eq!(report.verdict, Verdict::Unknown, "{report}");
}

/// The report's Display output is readable and mentions the verdict.
#[test]
fn report_display() {
    let report = analyze_source(
        "append([], Ys, Ys).\n\
         append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        "append/3",
        "bff",
    )
    .unwrap();
    let s = report.to_string();
    assert!(s.contains("Terminates"), "{s}");
    assert!(s.contains("append"), "{s}");
    assert!(s.contains("theta"), "{s}");
}
