//! Success-groundness analysis.
//!
//! The adorned-program construction needs to know, after a subgoal
//! `q(t̄)` succeeds, which of the rule's variables are certainly ground.
//! Assuming *all* of them are (the naive rule) overclaims: a fact
//! `q(_)` succeeds without instantiating its argument at all, and an
//! overclaimed "bound" argument would let the termination analysis reason
//! about the size of a term that is not actually ground at run time.
//!
//! This module computes, per `(predicate, adornment)` pair, the set of
//! argument positions that are ground in **every** SLD solution when the
//! adornment's bound positions are ground at call time. Soundness is by
//! induction on the height of the success derivation, which licenses the
//! **greatest** fixpoint: start optimistically (every position ground on
//! success) and refine downward:
//!
//! * abstractly execute each clause left to right, tracking definitely
//!   ground variables: head bound arguments contribute their variables;
//!   a positive subgoal `q(t̄)` with call adornment `b` contributes the
//!   variables of `t_j` for every `j ∈ G(q, b)` (the *current*,
//!   optimistic table — justified for the strictly smaller subderivation);
//!   `X is E` grounds `X`; `T1 = T2` grounds each side's variables when
//!   the other side is ground; comparisons and negative subgoals ground
//!   nothing;
//! * `G(p, a)` becomes the bound positions plus the positions ground at
//!   clause end in **all** clauses (a predicate with no clauses never
//!   succeeds, so every claim about its solutions is vacuously true);
//! * iterate until the descending chain stabilizes, then prune the pair
//!   set to those reachable from the query under the final table
//!   (patterns discovered only under transient assumptions are dropped).

use crate::intern::Sym;
use crate::modes::{is_builtin, sym_eq, sym_is, test_builtin_syms, Adornment, Mode};
use crate::program::{Literal, PredKey, ProcIndex, Program};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// Success-groundness table: for each reachable `(predicate, adornment)`,
/// the argument positions ground in every solution.
#[derive(Debug, Clone, Default)]
pub struct Groundness {
    map: BTreeMap<(PredKey, Adornment), BTreeSet<usize>>,
}

impl Groundness {
    /// Ground-on-success positions for `(pred, adornment)`. Unknown pairs
    /// (EDB predicates, unreached patterns) default to just the bound
    /// positions — the only thing guaranteed without rules to inspect.
    pub fn success_ground(&self, pred: &PredKey, adornment: &Adornment) -> BTreeSet<usize> {
        self.map
            .get(&(pred.clone(), adornment.clone()))
            .cloned()
            .unwrap_or_else(|| adornment.bound_positions().into_iter().collect())
    }

    /// All analyzed `(pred, adornment)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (&(PredKey, Adornment), &BTreeSet<usize>)> {
        self.map.iter()
    }
}

/// The call adornment of an atom given the currently ground variables.
pub(crate) fn call_adornment(atom: &crate::program::Atom, ground: &HashSet<Sym>) -> Adornment {
    Adornment(
        atom.args
            .iter()
            .map(|t| if t.vars_subset_of(ground) { Mode::Bound } else { Mode::Free })
            .collect(),
    )
}

/// Update the ground-variable set for one executed literal, using `tables`
/// for user predicates. Returns the subgoal's call adornment for user
/// predicates (callers record reachable patterns).
pub(crate) fn apply_groundness(
    lit: &Literal,
    ground: &mut HashSet<Sym>,
    lookup: &mut dyn FnMut(&PredKey, &Adornment) -> BTreeSet<usize>,
) -> Option<(PredKey, Adornment)> {
    if !lit.positive {
        return None; // negation grounds nothing (Appendix D)
    }
    let key = lit.atom.key();
    if key.arity == 2 && test_builtin_syms().contains(&key.name) {
        return None;
    }
    if key.arity == 2 && key.name == sym_is() {
        lit.atom.args[0].add_vars_to(ground);
        return None;
    }
    if key.arity == 2 && key.name == sym_eq() {
        // Unification makes the sides equal: if either side is ground, the
        // other side's variables become ground.
        let lg = lit.atom.args[0].vars_subset_of(ground);
        let rg = lit.atom.args[1].vars_subset_of(ground);
        if lg {
            lit.atom.args[1].add_vars_to(ground);
        }
        if rg {
            lit.atom.args[0].add_vars_to(ground);
        }
        return None;
    }
    if is_builtin(&key) {
        return None;
    }
    let adornment = call_adornment(&lit.atom, ground);
    for j in lookup(&key, &adornment) {
        lit.atom.args[j].add_vars_to(ground);
    }
    Some((key, adornment))
}

/// Compute success-groundness for every `(pred, adornment)` reachable from
/// `query` called with `root`.
pub fn analyze_groundness(program: &Program, query: &PredKey, root: Adornment) -> Groundness {
    let idb = program.idb_predicates();
    let index = ProcIndex::build(program);
    let all_positions = |p: &PredKey| -> BTreeSet<usize> { (0..p.arity).collect() };
    let mut table: BTreeMap<(PredKey, Adornment), BTreeSet<usize>> = BTreeMap::new();
    let mut worklist: VecDeque<(PredKey, Adornment)> = VecDeque::new();
    let mut queued: HashSet<(PredKey, Adornment)> = HashSet::new();
    // Callee pair -> pairs that consulted it. When an entry shrinks, only
    // its recorded consumers can change, so only they are requeued (the
    // old requeue-everything rule made large fixpoints quadratic). Edges
    // are recorded at lookup time, including lookups of pairs not yet in
    // the table, so a later-inserted entry knows its earlier callers.
    let mut deps: HashMap<(PredKey, Adornment), HashSet<(PredKey, Adornment)>> = HashMap::new();
    let seed = (query.clone(), root.clone());
    table.insert(seed.clone(), all_positions(query));
    queued.insert(seed.clone());
    worklist.push_back(seed);

    // Descending chaotic iteration: entries start optimistic ("all ground
    // on success") and only shrink; new pairs may be discovered as
    // entries shrink and call patterns weaken. Each entry shrinks at most
    // `arity` times, so the loop terminates. The gfp is confluent (every
    // update is a meet on a descending chain), so the deps-driven
    // worklist order yields the same table as exhaustive requeueing.
    let mut iterations = 0usize;
    let mut ground: HashSet<Sym> = HashSet::new();
    while let Some(pair) = worklist.pop_front() {
        queued.remove(&pair);
        let (ref pred, ref adornment) = pair;
        iterations += 1;
        if iterations > 100_000 {
            break; // defensive; far above any reachable bound
        }
        if !idb.contains(pred) {
            continue;
        }
        let mut per_clause: Vec<BTreeSet<usize>> = Vec::new();
        let mut discovered: Vec<(PredKey, Adornment)> = Vec::new();
        for rule in index.procedure(program, pred) {
            ground.clear();
            for (i, arg) in rule.head.args.iter().enumerate() {
                if adornment.0[i] == Mode::Bound {
                    arg.add_vars_to(&mut ground);
                }
            }
            for lit in &rule.body {
                let mut lookup = |p: &PredKey, a: &Adornment| -> BTreeSet<usize> {
                    deps.entry((p.clone(), a.clone())).or_default().insert(pair.clone());
                    // Missing entries — IDB pairs start at the optimistic
                    // gfp top; true EDB relations hold ground tuples; and
                    // predicates with no rules never succeed, making the
                    // claim vacuous. Either way: all positions.
                    table
                        .get(&(p.clone(), a.clone()))
                        .cloned()
                        .unwrap_or_else(|| (0..p.arity).collect())
                };
                if let Some(found) = apply_groundness(lit, &mut ground, &mut lookup) {
                    if idb.contains(&found.0) {
                        discovered.push(found);
                    }
                }
            }
            per_clause.push(
                rule.head
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(_, arg)| arg.vars_subset_of(&ground))
                    .map(|(i, _)| i)
                    .collect(),
            );
        }
        // Join: ground on success iff ground in every clause; no clauses
        // means no successes (vacuously all positions).
        let mut joined: BTreeSet<usize> = adornment.bound_positions().into_iter().collect();
        match per_clause.first() {
            None => joined = all_positions(pred),
            Some(first) => {
                let mut inter = first.clone();
                for c in &per_clause[1..] {
                    inter = inter.intersection(c).copied().collect();
                }
                joined.extend(inter);
            }
        }

        let mut requeue: Vec<(PredKey, Adornment)> = Vec::new();
        for found in discovered {
            if !table.contains_key(&found) {
                table.insert(found.clone(), all_positions(&found.0));
                requeue.push(found);
            }
        }
        let entry = table.get_mut(&pair).expect("seeded");
        // Meet with the previous value rather than overwrite: when a callee
        // entry shrinks, a later subgoal's call adornment can weaken to a
        // *new* pair whose optimistic initial value transiently re-inflates
        // `joined`, so the recomputed set alone is not guaranteed to sit
        // below the current one. The meet forces a pointwise-descending
        // chain (each entry shrinks at most `arity` times, so the loop
        // terminates) and stays sound: at stabilization every entry is a
        // subset of its recomputation, the coinductive condition, and
        // under-claiming success-groundness is always conservative.
        let met: BTreeSet<usize> = joined.intersection(entry).copied().collect();
        if &met != entry {
            *entry = met;
            // The entry shrank: requeue exactly the pairs that consulted
            // it (self-loops are captured naturally — a recursive clause
            // looks up its own pair).
            if let Some(callers) = deps.get(&pair) {
                requeue.extend(callers.iter().cloned());
            }
        }
        for p in requeue {
            if queued.insert(p.clone()) {
                worklist.push_back(p);
            }
        }
    }

    // Prune to the pairs reachable from the seed under the FINAL table:
    // pairs discovered only under transient optimistic assumptions would
    // otherwise leave spurious predicate copies in the adorned program.
    let mut reachable: BTreeSet<(PredKey, Adornment)> = BTreeSet::new();
    let mut frontier: VecDeque<(PredKey, Adornment)> = VecDeque::new();
    let seed = (query.clone(), root);
    reachable.insert(seed.clone());
    frontier.push_back(seed);
    while let Some((pred, adornment)) = frontier.pop_front() {
        if !idb.contains(&pred) {
            continue;
        }
        for rule in index.procedure(program, &pred) {
            ground.clear();
            for (i, arg) in rule.head.args.iter().enumerate() {
                if adornment.0[i] == Mode::Bound {
                    arg.add_vars_to(&mut ground);
                }
            }
            for lit in &rule.body {
                let mut lookup = |p: &PredKey, a: &Adornment| -> BTreeSet<usize> {
                    table
                        .get(&(p.clone(), a.clone()))
                        .cloned()
                        .unwrap_or_else(|| (0..p.arity).collect())
                };
                if let Some(pair) = apply_groundness(lit, &mut ground, &mut lookup) {
                    if idb.contains(&pair.0) && reachable.insert(pair.clone()) {
                        frontier.push_back(pair);
                    }
                }
            }
        }
    }
    table.retain(|k, _| reachable.contains(k));

    Groundness { map: table }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn ground_set(
        src: &str,
        pred: &str,
        arity: usize,
        adn: &str,
        target: (&str, usize, &str),
    ) -> BTreeSet<usize> {
        let program = parse_program(src).unwrap();
        let g = analyze_groundness(
            &program,
            &PredKey::new(pred, arity),
            Adornment::parse(adn).unwrap(),
        );
        g.success_ground(&PredKey::new(target.0, target.1), &Adornment::parse(target.2).unwrap())
    }

    #[test]
    fn append_bff_grounds_all() {
        let src = "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";
        // bff: wait — with only arg1 ground, Ys is whatever the caller
        // passed; append([], Ys, Ys) leaves Ys free. Success-ground = {0}.
        let g = ground_set(src, "append", 3, "bff", ("append", 3, "bff"));
        assert_eq!(g, [0].into_iter().collect());
        // bbf: all three ground on success.
        let g = ground_set(src, "append", 3, "bbf", ("append", 3, "bbf"));
        assert_eq!(g, [0, 1, 2].into_iter().collect());
        // ffb: splitting a ground list grounds both pieces.
        let g = ground_set(src, "append", 3, "ffb", ("append", 3, "ffb"));
        assert_eq!(g, [0, 1, 2].into_iter().collect());
    }

    #[test]
    fn wildcard_fact_grounds_nothing() {
        let src = "q(_).\np(X) :- q(X).";
        let g = ground_set(src, "p", 1, "f", ("q", 1, "f"));
        assert!(g.is_empty(), "{g:?}");
    }

    #[test]
    fn is_grounds_lhs() {
        let src = "len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.";
        let g = ground_set(src, "len", 2, "bf", ("len", 2, "bf"));
        assert_eq!(g, [0, 1].into_iter().collect());
    }

    #[test]
    fn equality_propagates_both_ways() {
        let src = "p(X, Y) :- X = f(Y).\nr(A, B) :- p(A, B).";
        // p called bf: X ground => Y ground via f(Y) = X.
        let g = ground_set(src, "r", 2, "bf", ("p", 2, "bf"));
        assert_eq!(g, [0, 1].into_iter().collect());
        // p called fb: Y ground => X = f(Y) ground.
        let g = ground_set(src, "r", 2, "fb", ("p", 2, "fb"));
        assert_eq!(g, [0, 1].into_iter().collect());
    }

    #[test]
    fn disjunction_takes_intersection() {
        // One clause grounds arg2, the other leaves it open: not
        // success-ground.
        let src = "p(X, a) :- q(X).\np(X, _) :- q(X).\nq(c).";
        let g = ground_set(src, "p", 2, "bf", ("p", 2, "bf"));
        assert_eq!(g, [0].into_iter().collect());
    }

    #[test]
    fn mutual_recursion_fixpoint() {
        let src = "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
                   e(L, T) :- t(L, T).\n\
                   t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
                   t(L, T) :- n(L, T).\n\
                   n(['('|A], T) :- e(A, [')'|T]).\n\
                   n([L|T], T) :- z(L).\nz(7).";
        for name in ["e", "t", "n"] {
            let g = ground_set(src, "e", 2, "bf", (name, 2, "bf"));
            assert_eq!(g, [0, 1].into_iter().collect(), "{name} bf grounds its continuation");
        }
    }

    #[test]
    fn negation_grounds_nothing() {
        let src = "p(X, Y) :- \\+ q(Y), r(X).\nq(a).\nr(b).";
        let g = ground_set(src, "p", 2, "bf", ("p", 2, "bf"));
        assert_eq!(g, [0].into_iter().collect(), "Y stays free through \\+");
    }

    #[test]
    fn negation_does_not_unground_earlier_bindings() {
        // A negated goal over an already-ground variable must not disturb
        // the set built by the positive goals around it.
        let src = "p(X, Y) :- r(Y), \\+ q(Y), s(X).\nq(a).\nr(b).\ns(c).";
        let g = ground_set(src, "p", 2, "bf", ("p", 2, "bf"));
        assert_eq!(g, [0, 1].into_iter().collect());
    }

    #[test]
    fn weakened_call_patterns_keep_the_chain_descending() {
        // nrev/2 with only its *output* bound: as `nrev fb`'s entry
        // shrinks, the recursive subgoal's call adornment weakens from fb
        // to ff, whose fresh optimistic entry transiently re-inflates the
        // recomputed set. The meet-update must absorb that (this used to
        // trip the descent assertion); the final table may only claim the
        // root-bound position.
        let src = "app([], Ys, Ys).\n\
                   app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n\
                   nrev([], []).\n\
                   nrev([X|Xs], R) :- nrev(Xs, R1), app(R1, [X], R).";
        let g = ground_set(src, "nrev", 2, "fb", ("nrev", 2, "fb"));
        assert!(g.contains(&1) && !g.contains(&0), "{g:?}");
    }

    #[test]
    fn zero_arity_subgoals_pass_through() {
        // Zero-arity goals (positive or negated) have no variables; the
        // scan must pass through them without touching the ground set.
        let src = "go(X) :- init, \\+ stopped, gen(X).\ninit.\nstopped.\ngen(a).";
        let g = ground_set(src, "go", 1, "f", ("go", 1, "f"));
        assert_eq!(g, [0].into_iter().collect(), "gen/1 still grounds X");
        // The zero-arity predicate itself: no positions, trivially ground.
        let program = parse_program(src).unwrap();
        let gr =
            analyze_groundness(&program, &PredKey::new("go", 1), Adornment::parse("f").unwrap());
        let empty = Adornment(vec![]);
        assert!(gr.success_ground(&PredKey::new("init", 0), &empty).is_empty());
    }
}
