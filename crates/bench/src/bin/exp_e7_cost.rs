//! E7 (quick form) — analysis cost without the Criterion harness.
//!
//! Single-shot wall-clock timings (median of 5 runs) for the rows
//! EXPERIMENTS.md reports: per-corpus-program analysis time, the
//! chained-SCC scaling family, and the FM-vs-simplex feasibility
//! crossover. For statistically careful numbers use
//! `cargo bench -p argus-bench`; this binary reproduces the table's shape
//! in seconds instead of minutes.

use argus_bench::workload;
use argus_bench::ExperimentLog;
use argus_core::{analyze, AnalysisOptions};
use argus_linear::{fm, simplex};
use std::collections::BTreeSet;
use std::time::Instant;

fn median_ms(mut runs: Vec<f64>) -> f64 {
    runs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    runs[runs.len() / 2]
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    let runs: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    median_ms(runs)
}

fn main() {
    let mut log = ExperimentLog::new(
        "E7-quick",
        "analysis cost (median of 5, wall clock)",
        "§4: \"in practice, Fourier-Motzkin elimination is simple and adequate\"",
        &["workload", "time (ms)"],
    );

    // Per-program analysis cost.
    for name in ["append_bff", "merge", "perm", "tree_insert", "quicksort", "expr_parser", "hanoi"]
    {
        let entry = argus_corpus::find(name).expect("entry");
        let program = entry.program().expect("parse");
        let (query, adornment) = entry.query_key();
        let ms = time_ms(|| {
            let _ = analyze(&program, &query, adornment.clone(), &AnalysisOptions::default());
        });
        log.row(&[format!("analyze {name}"), format!("{ms:.1}")]);
    }

    // Chained-SCC scaling.
    for depth in [1usize, 2, 4, 8] {
        let src = workload::chained_append_program(depth);
        let program = argus_logic::parser::parse_program(&src).expect("parse");
        let query = argus_logic::PredKey::new("p0", 2);
        let adornment = argus_logic::Adornment::parse("bf").unwrap();
        let ms = time_ms(|| {
            let _ = analyze(&program, &query, adornment.clone(), &AnalysisOptions::default());
        });
        log.row(&[format!("chained depth {depth}"), format!("{ms:.1}")]);
    }

    // FM vs simplex feasibility crossover.
    for nvars in [3usize, 4, 5, 6] {
        let mut r = workload::rng(13 + nvars as u64);
        let sys = workload::random_feasible_system(&mut r, nvars, nvars * 2, 3);
        let ms_sx = time_ms(|| {
            let _ = simplex::feasible_point(&sys, &BTreeSet::new());
        });
        log.row(&[format!("simplex feasibility, {nvars} vars"), format!("{ms_sx:.2}")]);
        let ms_fm = time_ms(|| {
            let _ = fm::project_onto_capped(&sys, &BTreeSet::new(), 50_000);
        });
        log.row(&[format!("FM feasibility, {nvars} vars"), format!("{ms_fm:.2}")]);
    }

    log.note(
        "Shapes to expect: per-program cost in single/double-digit ms; chained \
         scaling roughly linear; FM beats simplex up to ~5 dense variables, \
         then falls off a cliff (the reason for the row caps).",
    );
    log.emit();
}
