//! `fm_gate` — bench-regression gate for the FM redundancy tiers.
//!
//! Reads a `BENCH_argus.json` written by `bench_report` (any scale) and
//! fails if the row-reduction counters of the `fm_redundancy` suite fall
//! below pinned floors. Wall time is deliberately *not* gated here: the
//! counters are deterministic by construction, timings are not, so this
//! gate stays green on loaded CI machines while still catching a change
//! that quietly disables dedup/subsumption/Chernikov dropping or the
//! per-SCC projection cache.
//!
//! Usage: `fm_gate [PATH]` (default `BENCH_argus.json`).

use argus_bench::json::{scan_num_field, scan_str_field};
use std::collections::BTreeMap;

/// Pinned floors. Chosen well below the measured values (see
/// EXPERIMENTS.md E11) so scheduler noise can never trip them, but far
/// above what any regression to the redundancy machinery would produce.
const FLOORS: &[Check] = &[
    // ≥5× peak-row reduction on the FM-heavy corpus entry (measured ~21×).
    Check::Ratio {
        num: "fm_redundancy/infer-rules/mutual_fib_ring/tier0",
        den: "fm_redundancy/infer-rules/mutual_fib_ring/tier2",
        key: "peak_rows",
        floor: 5.0,
    },
    // Dense random projection: tier 0 must still blow up relative to the
    // default tier (measured ~10×); if this ratio collapses, either tier 0
    // got redundancy elimination (wrong) or tier 2 stopped eliminating.
    Check::Ratio {
        num: "fm_redundancy/project/6v12r/tier0",
        den: "fm_redundancy/project/6v12r/tier2",
        key: "peak_rows",
        floor: 4.0,
    },
    // The individual mechanisms must actually fire on the corpus entry.
    Check::Min {
        id: "fm_redundancy/infer-rules/mutual_fib_ring/tier1",
        key: "subsume_hits",
        floor: 1.0,
    },
    // Chernikov dropping fires on the dense projection (the ring's
    // per-rule projections are already minimal after subsumption, so
    // tiers 1 and 2 coincide there — measured 1512 drops here).
    Check::Min { id: "fm_redundancy/project/6v12r/tier2", key: "chernikov_drops", floor: 1.0 },
    Check::Min {
        id: "fm_redundancy/infer-rules/mutual_fib_ring/tier2",
        key: "dedup_hits",
        floor: 1.0,
    },
    // The per-SCC projection cache must hit at least once end-to-end.
    Check::Min {
        id: "fm_redundancy/analyze/mutual_fib_ring/tier2/cache",
        key: "cache_hits",
        floor: 1.0,
    },
    // And be off when disabled.
    Check::Max {
        id: "fm_redundancy/analyze/mutual_fib_ring/tier2/nocache",
        key: "cache_hits",
        ceil: 0.0,
    },
];

enum Check {
    /// `counters[key]` of sample `num` divided by sample `den` must be ≥ `floor`.
    Ratio { num: &'static str, den: &'static str, key: &'static str, floor: f64 },
    /// `counters[key]` of sample `id` must be ≥ `floor`.
    Min { id: &'static str, key: &'static str, floor: f64 },
    /// `counters[key]` of sample `id` must be ≤ `ceil`.
    Max { id: &'static str, key: &'static str, ceil: f64 },
}

fn counter(samples: &BTreeMap<String, String>, id: &str, key: &str) -> Result<f64, String> {
    let line = samples.get(id).ok_or_else(|| format!("sample `{id}` missing from report"))?;
    scan_num_field(line, key).ok_or_else(|| format!("sample `{id}` has no counter `{key}`"))
}

fn run(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        if let Some(id) = scan_str_field(line, "id") {
            samples.insert(id, line.to_string());
        }
    }
    if samples.is_empty() {
        return Err(format!("no samples found in {path}"));
    }

    let mut failures = Vec::new();
    let mut report = Vec::new();
    for check in FLOORS {
        match check {
            Check::Ratio { num, den, key, floor } => {
                let n = counter(&samples, num, key)?;
                let d = counter(&samples, den, key)?;
                if d <= 0.0 {
                    failures.push(format!("{den}: {key} is {d}, expected > 0"));
                    continue;
                }
                let ratio = n / d;
                let ok = ratio >= *floor;
                report.push(format!(
                    "{} {key} ratio {num} / {den} = {n:.0}/{d:.0} = {ratio:.1} (floor {floor})",
                    if ok { "ok  " } else { "FAIL" }
                ));
                if !ok {
                    failures.push(format!("{key} ratio {num}/{den} = {ratio:.2} < {floor}"));
                }
            }
            Check::Min { id, key, floor } => {
                let v = counter(&samples, id, key)?;
                let ok = v >= *floor;
                report.push(format!(
                    "{} {id} {key} = {v:.0} (floor {floor})",
                    if ok { "ok  " } else { "FAIL" }
                ));
                if !ok {
                    failures.push(format!("{id} {key} = {v:.0} < {floor}"));
                }
            }
            Check::Max { id, key, ceil } => {
                let v = counter(&samples, id, key)?;
                let ok = v <= *ceil;
                report.push(format!(
                    "{} {id} {key} = {v:.0} (ceiling {ceil})",
                    if ok { "ok  " } else { "FAIL" }
                ));
                if !ok {
                    failures.push(format!("{id} {key} = {v:.0} > {ceil}"));
                }
            }
        }
    }
    for line in &report {
        eprintln!("fm_gate: {line}");
    }
    Ok(failures)
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_argus.json".to_string());
    match run(&path) {
        Ok(failures) if failures.is_empty() => {
            eprintln!("fm_gate: all row-reduction floors hold ({path})");
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("fm_gate: FAIL {f}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("fm_gate: {e}");
            std::process::exit(1);
        }
    }
}
