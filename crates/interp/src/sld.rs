//! Top-down SLD resolution with the Prolog computation rule.
//!
//! Left-to-right goal selection, textual-order clause selection, depth-first
//! search with backtracking — "the Prolog algorithm" whose termination the
//! paper analyzes. Execution is metered: every resolution step and builtin
//! call consumes budget, so nonterminating queries are cut off and reported
//! as [`Outcome::OutOfBudget`] instead of hanging the process. This is the
//! empirical oracle used to validate the analyzer's verdicts: a program the
//! analyzer proves terminating must complete (all solutions, finite search
//! tree) within budget on any query of its declared mode.

use argus_logic::program::{Literal, PredKey, ProcIndex, Program};
use argus_logic::term::Term;
use argus_logic::unify::{unify, unify_atoms, Subst};
use std::collections::BTreeMap;

/// Interpreter limits and switches.
#[derive(Debug, Clone)]
pub struct InterpOptions {
    /// Maximum number of resolution/builtin steps before giving up.
    pub max_steps: u64,
    /// Maximum recursion depth of the goal stack.
    pub max_depth: usize,
    /// Collect at most this many solutions (the search still runs to
    /// completion — bounded by budget — so termination is meaningful).
    pub max_solutions: usize,
    /// Perform the occurs check during unification (Prolog default: off).
    pub occurs_check: bool,
}

impl Default for InterpOptions {
    fn default() -> InterpOptions {
        InterpOptions {
            max_steps: 200_000,
            max_depth: 400,
            max_solutions: 1_000,
            occurs_check: false,
        }
    }
}

/// Result of running a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The search tree was explored exhaustively.
    Completed {
        /// Bindings of the query's variables, one map per solution.
        solutions: Vec<BTreeMap<String, Term>>,
        /// Resolution/builtin steps consumed.
        steps: u64,
    },
    /// The step or depth budget ran out: the query may not terminate.
    OutOfBudget {
        /// Steps consumed when the budget tripped.
        steps: u64,
        /// Solutions found before cutoff.
        solutions_so_far: usize,
    },
}

impl Outcome {
    /// True iff the search completed within budget.
    pub fn terminated(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }

    /// Number of solutions produced.
    pub fn solution_count(&self) -> usize {
        match self {
            Outcome::Completed { solutions, .. } => solutions.len(),
            Outcome::OutOfBudget { solutions_so_far, .. } => *solutions_so_far,
        }
    }

    /// Steps consumed.
    pub fn steps(&self) -> u64 {
        match self {
            Outcome::Completed { steps, .. } => *steps,
            Outcome::OutOfBudget { steps, .. } => *steps,
        }
    }
}

/// Internal stop signals threaded through the search.
enum Stop {
    /// Budget exhausted.
    Budget,
    /// Solution limit reached (search is truncated but "terminated" in the
    /// sense that it did not run away; reported as completed).
    Enough,
}

struct Machine<'p> {
    program: &'p Program,
    index: ProcIndex,
    options: InterpOptions,
    steps: u64,
    rename_counter: u64,
    solutions: Vec<Subst>,
    query_vars: Vec<argus_logic::Sym>,
}

/// Run `goals` against `program`.
pub fn solve(program: &Program, goals: &[Literal], options: &InterpOptions) -> Outcome {
    let mut query_vars = Vec::new();
    {
        let mut seen = std::collections::BTreeSet::new();
        for g in goals {
            for v in g.atom.vars() {
                if seen.insert(v) {
                    query_vars.push(v);
                }
            }
        }
    }
    let mut m = Machine {
        program,
        index: ProcIndex::build(program),
        options: options.clone(),
        steps: 0,
        rename_counter: 0,
        solutions: Vec::new(),
        query_vars,
    };
    let mut s = Subst::new();
    let result = m.solve_goals(goals, &mut s, 0);
    let steps = m.steps;
    match result {
        Err(Stop::Budget) => Outcome::OutOfBudget { steps, solutions_so_far: m.solutions.len() },
        _ => {
            let solutions = m
                .solutions
                .iter()
                .map(|s| {
                    m.query_vars
                        .iter()
                        .map(|v| (v.to_string(), s.resolve(&Term::Var(*v))))
                        .collect()
                })
                .collect();
            Outcome::Completed { solutions, steps }
        }
    }
}

/// Evaluate an arithmetic expression over integers (`+ - * //`).
fn eval_arith(s: &Subst, t: &Term) -> Option<i64> {
    match s.walk(t) {
        Term::Var(_) => None,
        Term::App(f, args) if args.is_empty() => f.parse::<i64>().ok(),
        Term::App(f, args) if args.len() == 2 => {
            let a = eval_arith(s, &args[0])?;
            let b = eval_arith(s, &args[1])?;
            match &**f {
                "+" => a.checked_add(b),
                "-" => a.checked_sub(b),
                "*" => a.checked_mul(b),
                "//" => {
                    if b == 0 {
                        None
                    } else {
                        a.checked_div(b)
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

impl<'p> Machine<'p> {
    fn tick(&mut self) -> Result<(), Stop> {
        self.steps += 1;
        if self.steps > self.options.max_steps {
            Err(Stop::Budget)
        } else {
            Ok(())
        }
    }

    fn solve_goals(&mut self, goals: &[Literal], s: &mut Subst, depth: usize) -> Result<(), Stop> {
        if depth > self.options.max_depth {
            return Err(Stop::Budget);
        }
        let Some((first, rest)) = goals.split_first() else {
            self.solutions.push(s.clone());
            if self.solutions.len() >= self.options.max_solutions {
                return Err(Stop::Enough);
            }
            return Ok(());
        };

        if !first.positive {
            // Negation as failure: succeed iff the positive goal has no
            // solution. The subsearch shares the step budget.
            self.tick()?;
            let saved_solutions = std::mem::take(&mut self.solutions);
            let saved_limit = self.options.max_solutions;
            self.options.max_solutions = 1;
            let sub_goal = Literal::pos(first.atom.clone());
            let mut s2 = s.clone();
            let sub = self.solve_goals(&[sub_goal], &mut s2, depth + 1);
            let found = !self.solutions.is_empty();
            self.solutions = saved_solutions;
            self.options.max_solutions = saved_limit;
            if let Err(Stop::Budget) = sub {
                return Err(Stop::Budget);
            }
            if found {
                return Ok(()); // negation fails: no solutions from here
            }
            return self.solve_goals(rest, s, depth);
        }

        let key = first.atom.key();
        // Builtins.
        if key.arity == 2 {
            match &*key.name {
                "=" => {
                    self.tick()?;
                    let mut s2 = s.clone();
                    if unify(
                        &mut s2,
                        &first.atom.args[0],
                        &first.atom.args[1],
                        self.options.occurs_check,
                    ) {
                        return self.solve_goals(rest, &mut s2, depth);
                    }
                    return Ok(());
                }
                "\\=" => {
                    self.tick()?;
                    let mut s2 = s.clone();
                    if !unify(
                        &mut s2,
                        &first.atom.args[0],
                        &first.atom.args[1],
                        self.options.occurs_check,
                    ) {
                        return self.solve_goals(rest, s, depth);
                    }
                    return Ok(());
                }
                "==" | "\\==" => {
                    self.tick()?;
                    let a = s.resolve(&first.atom.args[0]);
                    let b = s.resolve(&first.atom.args[1]);
                    let eq = a == b;
                    let want = &*key.name == "==";
                    if eq == want {
                        return self.solve_goals(rest, s, depth);
                    }
                    return Ok(());
                }
                "<" | ">" | "=<" | ">=" => {
                    self.tick()?;
                    let (Some(a), Some(b)) =
                        (eval_arith(s, &first.atom.args[0]), eval_arith(s, &first.atom.args[1]))
                    else {
                        return Ok(()); // non-numeric: fail silently
                    };
                    let ok = match &*key.name {
                        "<" => a < b,
                        ">" => a > b,
                        "=<" => a <= b,
                        _ => a >= b,
                    };
                    if ok {
                        return self.solve_goals(rest, s, depth);
                    }
                    return Ok(());
                }
                "is" => {
                    self.tick()?;
                    let Some(v) = eval_arith(s, &first.atom.args[1]) else {
                        return Ok(());
                    };
                    let mut s2 = s.clone();
                    if unify(&mut s2, &first.atom.args[0], &Term::int(v), self.options.occurs_check)
                    {
                        return self.solve_goals(rest, &mut s2, depth);
                    }
                    return Ok(());
                }
                _ => {}
            }
        }

        // User predicate: try each clause in order.
        self.clause_resolution(&key, first, rest, s, depth)
    }

    fn clause_resolution(
        &mut self,
        key: &PredKey,
        first: &Literal,
        rest: &[Literal],
        s: &mut Subst,
        depth: usize,
    ) -> Result<(), Stop> {
        // Snapshot matching clauses (textual order).
        let clauses: Vec<_> =
            self.index.procedure(self.program, key).into_iter().cloned().collect();
        for clause in &clauses {
            self.tick()?;
            self.rename_counter += 1;
            let renamed = clause.rename_suffix(&format!("_r{}", self.rename_counter));
            let mut s2 = s.clone();
            if !unify_atoms(&mut s2, &first.atom, &renamed.head, self.options.occurs_check) {
                continue;
            }
            let mut new_goals = renamed.body.clone();
            new_goals.extend_from_slice(rest);
            self.solve_goals(&new_goals, &mut s2, depth + 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_logic::parser::{parse_program, parse_query};

    fn run(src: &str, query: &str) -> Outcome {
        let p = parse_program(src).unwrap();
        let goals = parse_query(query).unwrap();
        solve(&p, &goals, &InterpOptions::default())
    }

    const APPEND: &str = "append([], Ys, Ys).\n\
                          append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";

    #[test]
    fn append_ground() {
        let out = run(APPEND, "append([a, b], [c], Z)");
        match out {
            Outcome::Completed { solutions, .. } => {
                assert_eq!(solutions.len(), 1);
                assert_eq!(solutions[0]["Z"].to_string(), "[a, b, c]");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn append_splits() {
        // append(X, Y, [a, b]) has 3 solutions.
        let out = run(APPEND, "append(X, Y, [a, b])");
        assert!(out.terminated());
        assert_eq!(out.solution_count(), 3);
    }

    #[test]
    fn append_generator_runs_away() {
        // append(X, Y, Z) with everything free enumerates forever.
        let out = run(APPEND, "append(X, Y, Z)");
        assert!(!out.terminated() || out.solution_count() >= 1000);
    }

    #[test]
    fn direct_loop_exhausts_budget() {
        let out = run("p(X) :- p(X).", "p(a)");
        assert_eq!(out.solution_count(), 0);
        assert!(!out.terminated());
    }

    #[test]
    fn backtracking_across_clauses() {
        let out = run("color(r).\ncolor(g).\ncolor(b).", "color(C)");
        match out {
            Outcome::Completed { solutions, .. } => {
                let got: Vec<String> = solutions.iter().map(|s| s["C"].to_string()).collect();
                assert_eq!(got, ["r", "g", "b"], "textual clause order");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_comparison() {
        let out = run("len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.", "len([a, b, c], N)");
        match out {
            Outcome::Completed { solutions, .. } => {
                assert_eq!(solutions[0]["N"].to_string(), "3");
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmp = run("", "3 < 5, 5 >= 5, 2 =< 1");
        assert_eq!(cmp.solution_count(), 0, "2 =< 1 fails");
        let ok = run("", "3 < 5, 5 >= 5, 1 =< 2");
        assert_eq!(ok.solution_count(), 1);
    }

    #[test]
    fn cyclic_equation_without_occurs_check() {
        // X = f(X) succeeds without the occurs check (the Prolog default);
        // extracting the solution must not diverge on the cyclic binding —
        // the cycle is unfolded once and then cut.
        let out = run("", "X = f(X)");
        match out {
            Outcome::Completed { solutions, .. } => {
                assert_eq!(solutions.len(), 1);
                assert_eq!(solutions[0]["X"].to_string(), "f(X)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cyclic_equation_with_occurs_check() {
        // With the occurs check on, X = f(X) simply fails.
        let p = parse_program("").unwrap();
        let goals = parse_query("X = f(X)").unwrap();
        let opts = InterpOptions { occurs_check: true, ..InterpOptions::default() };
        let out = solve(&p, &goals, &opts);
        assert!(out.terminated());
        assert_eq!(out.solution_count(), 0);
    }

    #[test]
    fn cyclic_binding_through_clause_head() {
        // The cycle forms through a clause head rather than `=` directly.
        let out = run("eq(X, X).", "eq(Y, g(Y))");
        match out {
            Outcome::Completed { solutions, .. } => {
                assert_eq!(solutions.len(), 1);
                assert!(!solutions[0]["Y"].is_var());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negation_as_failure() {
        let out = run("p(a).\nq(X) :- \\+ p(X).", "q(b)");
        assert_eq!(out.solution_count(), 1);
        let out2 = run("p(a).\nq(X) :- \\+ p(X).", "q(a)");
        assert_eq!(out2.solution_count(), 0);
    }

    #[test]
    fn merge_runs() {
        let out = run(
            "merge([], Ys, Ys).\n\
             merge(Xs, [], Xs).\n\
             merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
             merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).",
            "merge([1, 3, 5], [2, 4], Z)",
        );
        match out {
            Outcome::Completed { solutions, .. } => {
                assert_eq!(solutions[0]["Z"].to_string(), "[1, 2, 3, 4, 5]");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn perm_enumerates_permutations() {
        let out = run(
            "perm([], []).\n\
             perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
             append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
            "perm([a, b, c], Q)",
        );
        assert!(out.terminated(), "perm with bound first arg terminates");
        assert_eq!(out.solution_count(), 6, "3! permutations");
    }

    #[test]
    fn unbound_comparison_fails_not_errors() {
        let out = run("", "X < 5");
        assert_eq!(out.solution_count(), 0);
        assert!(out.terminated());
    }

    #[test]
    fn equality_builtin() {
        let out = run("", "X = f(Y), Y = a");
        match out {
            Outcome::Completed { solutions, .. } => {
                assert_eq!(solutions[0]["X"].to_string(), "f(a)");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn disequality_builtin() {
        assert_eq!(run("", "a \\= b").solution_count(), 1);
        assert_eq!(run("", "a \\= a").solution_count(), 0);
        assert_eq!(run("", "f(a) == f(a)").solution_count(), 1);
        assert_eq!(run("", "f(a) \\== f(a)").solution_count(), 0);
    }

    #[test]
    fn solution_limit_truncates_gracefully() {
        let p = parse_program("nat(z).\nnat(s(N)) :- nat(N).").unwrap();
        let goals = parse_query("nat(X)").unwrap();
        let out =
            solve(&p, &goals, &InterpOptions { max_solutions: 5, ..InterpOptions::default() });
        assert_eq!(out.solution_count(), 5);
    }
}
