//! E7d — ablations of the design choices DESIGN.md calls out.
//!
//! * δ selection: the paper's fixed §6.1 procedure vs Appendix C path
//!   constraints (more general, more variables to eliminate);
//! * imported-constraint power: full polyhedral relations vs the
//!   Appendix B binary-order restriction (cheaper, loses `perm`);
//! * preprocessing: transformations as lazy fallback vs always-on.

use argus_core::{analyze, AnalysisOptions, DeltaMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn corpus_subjects(
) -> Vec<(&'static str, argus_logic::Program, argus_logic::PredKey, argus_logic::Adornment)> {
    ["perm", "merge", "expr_parser"]
        .into_iter()
        .map(|name| {
            let e = argus_corpus::find(name).expect("entry");
            let program = e.program().expect("parse");
            let (q, a) = e.query_key();
            (name, program, q, a)
        })
        .collect()
}

fn bench_delta_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/delta-mode");
    group.sample_size(10);
    for (name, program, query, adornment) in corpus_subjects() {
        for (label, mode) in
            [("paper-6.1", DeltaMode::Paper), ("appendix-c", DeltaMode::PathConstraints)]
        {
            let options = AnalysisOptions { delta_mode: mode, ..AnalysisOptions::default() };
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    black_box(analyze(black_box(&program), &query, adornment.clone(), &options))
                })
            });
        }
    }
    group.finish();
}

fn bench_import_power(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/imports");
    group.sample_size(10);
    for (name, program, query, adornment) in corpus_subjects() {
        for (label, binary) in [("polyhedral", false), ("binary-orders", true)] {
            let options = AnalysisOptions {
                restrict_imports_to_binary_orders: binary,
                ..AnalysisOptions::default()
            };
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    black_box(analyze(black_box(&program), &query, adornment.clone(), &options))
                })
            });
        }
    }
    group.finish();
}

fn bench_transform_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/transform");
    group.sample_size(10);
    // appendix_a1 NEEDS the transformations; merge must not pay for them.
    for name in ["appendix_a1", "merge"] {
        let e = argus_corpus::find(name).expect("entry");
        let program = e.program().expect("parse");
        let (query, adornment) = e.query_key();
        for (label, phases) in [("no-transform", 0usize), ("lazy-3-phases", 3)] {
            let options =
                AnalysisOptions { transform_phases: phases, ..AnalysisOptions::default() };
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    black_box(analyze(black_box(&program), &query, adornment.clone(), &options))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_delta_modes, bench_import_power, bench_transform_policy);
criterion_main!(benches);
