//! # argus-bench — experiment harness
//!
//! The binaries (`src/bin/exp_*.rs`) regenerate every experiment recorded
//! in `EXPERIMENTS.md`; the plain timing benches (`benches/`) measure
//! analysis cost (experiment E7), and `bench_report` snapshots the same
//! workloads into `BENCH_argus.json`. This library holds shared harness
//! utilities: workload generation, fixed-iteration timing, and report
//! formatting.

#![warn(missing_docs)]

pub mod harness;
pub mod json;
pub mod suites;
pub mod timing;
pub mod workload;

pub use harness::{markdown_table, ExperimentLog};
