//! # argus-prng — a tiny deterministic PRNG
//!
//! The bench workloads and the randomized differential tests need a
//! reproducible source of pseudo-random numbers but nothing resembling
//! cryptographic quality, so this crate hand-rolls an xorshift64* generator
//! (Vigna, "An experimental exploration of Marsaglia's xorshift
//! generators") instead of pulling in an external dependency. Identical
//! seeds produce identical streams on every platform: workload generation
//! and test cases are stable across runs and machines.

#![warn(missing_docs)]

/// A deterministic xorshift64* generator.
///
/// State is a single nonzero 64-bit word; the output is the state scrambled
/// by a 64-bit multiply, which fixes the weak low bits of the raw xorshift
/// sequence.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a seed. Any seed is accepted; zero (the one
    /// invalid xorshift state) is remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Rng64 {
        // SplitMix64-style scrambling of the seed so that consecutive seeds
        // (0, 1, 2, …) do not produce visibly correlated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng64 { state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z } }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses the widening-multiply technique (Lemire); the bias for any `n`
    /// that fits our workloads (tiny ranges) is far below anything a test
    /// could observe, so no rejection loop is needed.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "bad range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let off = (((self.next_u64() as u128).wrapping_mul(span)) >> 64) as i128;
        (lo as i128 + off) as i64
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "bad range {lo}..={hi}");
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick a uniformly random element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden stream vectors: the first 16 outputs for three fixed seeds.
    /// Fuzz-case generation is keyed on these streams, so any change to the
    /// seed scrambler or the step function would silently re-map every
    /// recorded fuzz seed; this test turns that drift into a hard failure.
    #[test]
    fn golden_stream_vectors() {
        const VECTORS: &[(u64, [u64; 16])] = &[
            (
                0,
                [
                    0x7BBC_B40D_5506_82D0,
                    0xDE7F_E413_D00C_C9FD,
                    0xB3C6_3835_3C66_8C91,
                    0xE073_AFC0_9491_95FC,
                    0x7F2F_9E2E_B349_37F6,
                    0x6EF8_6054_C473_1F4F,
                    0x4109_26D7_BB41_0255,
                    0x0CF7_5540_849D_9C3B,
                    0xCC4A_D468_F162_27ED,
                    0x88ED_B150_7743_1C06,
                    0xFB81_CA62_52A1_8BAE,
                    0x9F12_70C9_24F4_7B7C,
                    0x791B_A7AD_8831_6662,
                    0x768A_3190_675F_DD8B,
                    0xFA11_F514_E87E_86F9,
                    0xCE4E_C4ED_19FB_FFBF,
                ],
            ),
            (
                1,
                [
                    0x4B46_A55D_F361_1B9B,
                    0xD7E1_F141_0E76_3EF4,
                    0x5F14_EC66_975F_9B06,
                    0x3B2C_74FA_D44D_6CDB,
                    0xDBEA_40D6_0760_F050,
                    0x0086_45CA_872E_0CD2,
                    0x203E_7E0C_16E8_A44F,
                    0x966D_F4A8_11C5_3476,
                    0xE61D_536A_9ABB_6927,
                    0x1299_CECD_BDFA_0CB2,
                    0x2D65_AE7F_E0CD_C91D,
                    0x0B28_DBDF_54EA_0CDE,
                    0xB9D2_FBF2_02FC_4E8F,
                    0x7D75_7C9C_BD13_117A,
                    0x7BBD_2F80_2F9C_9C3A,
                    0x112D_EEBB_173F_9062,
                ],
            ),
            (
                0xDEAD,
                [
                    0x6A37_B064_E4CD_2DDD,
                    0xED14_C53C_B879_7D5D,
                    0xDD2A_2669_B881_1AAB,
                    0xD07A_DC64_5007_5FD5,
                    0x01B9_0910_B8DA_46AD,
                    0x49F4_BD72_589F_A9F5,
                    0xAA48_5ADF_D1E5_5272,
                    0x332D_7463_389F_5F73,
                    0x36BD_F404_9D5A_853B,
                    0x77D5_5F57_2FC9_1875,
                    0xD823_85B0_9AB6_2938,
                    0x0489_B844_DCFA_2C86,
                    0x40E5_B442_D1A8_8269,
                    0xFF4E_B112_4462_7BCC,
                    0x0B3B_506E_EAD6_4275,
                    0xCBB3_3010_78E0_AA4C,
                ],
            ),
        ];
        for (seed, expect) in VECTORS {
            let mut r = Rng64::new(*seed);
            let got: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
            assert_eq!(&got[..], &expect[..], "stream drifted for seed {seed:#x}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> =
            (0..8).map(|_| 0).scan(Rng64::new(7), |r, _| Some(r.next_u64())).collect();
        let b: Vec<u64> =
            (0..8).map(|_| 0).scan(Rng64::new(7), |r, _| Some(r.next_u64())).collect();
        assert_eq!(a, b);
        let c: Vec<u64> =
            (0..8).map(|_| 0).scan(Rng64::new(8), |r, _| Some(r.next_u64())).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::new(123);
        for _ in 0..10_000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            let u = r.range_usize(2, 5);
            assert!((2..=5).contains(&u));
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = Rng64::new(99);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[(r.range_i64(-3, 3) + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn pick_covers_slice() {
        let mut r = Rng64::new(5);
        let xs = ["a", "b", "c"];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let p = r.pick(&xs);
            seen[xs.iter().position(|x| x == p).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
