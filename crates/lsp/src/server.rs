//! The language server: dispatch loop, debounced analysis pipeline,
//! diagnostics publication, and hover.
//!
//! ## Architecture
//!
//! A reader thread turns the transport into a channel of framed
//! payloads; the main loop owns all state (documents, the per-SCC memo,
//! the writer) so no handler ever takes a lock. When documents are dirty
//! the loop waits on the channel with a `--debounce-ms` timeout instead
//! of blocking — a burst of `didChange` notifications (keystroke rate)
//! coalesces into one re-analysis when the burst pauses, and the timeout
//! path is the *only* place analysis runs, so message handling itself
//! stays at parse-and-splice cost.
//!
//! ## Analysis
//!
//! Every re-analysis goes through [`argus_diag::lint_source_memo`] with
//! the server-lifetime [`SccCache`]: the full lint battery (L000–L011)
//! plus the termination blame passes run with per-SCC memoization, so an
//! edit recomputes only the dirty SCC cone. Diagnostics are converted by
//! `argus_diag::lsp` (UTF-16 ranges, notes as `relatedInformation`, raw
//! byte offsets under `data`) and published with the document version;
//! each publish is followed by a `$/argus/stats` notification carrying
//! the memo counters and elapsed time, which the bench suite, CI gate,
//! and tests read.
//!
//! ## Queries
//!
//! The moded lints (L007–L011) need a query predicate + adornment. Two
//! sources, in precedence order: a directive comment anywhere in the
//! document —
//!
//! ```text
//! % argus query: append/3 bbf
//! ```
//!
//! (the last one wins; comments lex away, so the directive never
//! perturbs spans or parse results) — else the session default from
//! `initializationOptions` (`{"query": "append/3", "mode": "bbf"}`) or
//! the CLI's `--query`/`--mode`.

use crate::docs::{DocStore, LspRange};
use crate::framing::{read_frame, write_frame, FrameError, FrameLimits};
use crate::rpc::{
    error_response, notification, parse_message, render_id, response, Incoming, INVALID_PARAMS,
    INVALID_REQUEST, METHOD_NOT_FOUND, PARSE_ERROR,
};
use argus_core::incremental::SccCache;
use argus_core::{infer_conditions_for, AnalysisOptions, BackwardsOptions};
use argus_diag::lsp::render_lsp_diagnostics;
use argus_diag::moded::parse_query_spec;
use argus_diag::{lint_source_memo, LintOptions};
use argus_logic::modes::Adornment;
use argus_logic::parser::parse_program;
use argus_logic::span::{LineIndex, Span};
use argus_logic::{PredKey, Program};
use argus_serve::jsonval::{json_str, Json};
use std::collections::BTreeSet;
use std::io::{BufReader, Read, Write};
use std::path::PathBuf;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Condition-inference arity cap for hover, matching the L011 lint cap:
/// 2⁴ probes with the raw-first pipeline stays interactive.
const HOVER_MAX_ARITY: usize = 4;

/// Server configuration.
#[derive(Debug, Clone, Default)]
pub struct LspOptions {
    /// Worker threads for analysis (`0` = one per core).
    pub jobs: usize,
    /// Debounce window for coalescing `didChange` bursts, in
    /// milliseconds. `0` re-analyzes as soon as the message queue drains.
    pub debounce_ms: u64,
    /// Spill directory for the per-SCC memo (shared with
    /// `argus analyze --cache-dir` and the serve layer); `None` keeps the
    /// memo in memory only.
    pub cache_dir: Option<PathBuf>,
    /// Framing limits for hostile-input containment.
    pub limits: FrameLimits,
    /// Session-default query predicate + adornment for the moded lints;
    /// overridable per document by a `% argus query:` directive and per
    /// session by `initializationOptions`.
    pub query: Option<(PredKey, Adornment)>,
}

/// Run the server over the given transport until `exit` (or EOF / a
/// fatal framing error), returning the process exit code: `0` for an
/// orderly `shutdown` → `exit` sequence, `1` otherwise.
pub fn run_server(
    reader: impl Read + Send + 'static,
    writer: impl Write,
    options: LspOptions,
) -> i32 {
    let limits = options.limits.clone();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut r = BufReader::new(reader);
        loop {
            let msg = read_frame(&mut r, &limits);
            let fatal = matches!(&msg, Err(e) if !e.recoverable());
            if tx.send(msg).is_err() || fatal {
                return;
            }
        }
    });

    let memo = Arc::new(match &options.cache_dir {
        Some(dir) => SccCache::with_disk(usize::MAX, dir.clone()),
        None => SccCache::unbounded(),
    });
    let mut server = Server {
        out: writer,
        docs: DocStore::default(),
        dirty: BTreeSet::new(),
        memo,
        default_query: options.query.clone(),
        shutdown_requested: false,
        broken_pipe: false,
        options,
    };

    loop {
        let msg = if server.dirty.is_empty() {
            match rx.recv() {
                Ok(m) => m,
                Err(_) => return server.eof_code(),
            }
        } else {
            match rx.recv_timeout(Duration::from_millis(server.options.debounce_ms)) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    server.flush_dirty();
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    server.flush_dirty();
                    return server.eof_code();
                }
            }
        };
        match msg {
            Ok(payload) => {
                if let Some(code) = server.handle_payload(&payload) {
                    return code;
                }
            }
            Err(FrameError::Eof) => return server.eof_code(),
            Err(e @ FrameError::TooLarge { .. }) => {
                server.send(&error_response("null", INVALID_REQUEST, &e.to_string()));
            }
            Err(e @ FrameError::BadPayload(_)) => {
                server.send(&error_response("null", PARSE_ERROR, &e.to_string()));
            }
            Err(_) => return 1, // desynchronized or dead transport
        }
        if server.broken_pipe {
            return 1;
        }
    }
}

struct Server<W: Write> {
    out: W,
    docs: DocStore,
    dirty: BTreeSet<String>,
    memo: Arc<SccCache>,
    default_query: Option<(PredKey, Adornment)>,
    shutdown_requested: bool,
    broken_pipe: bool,
    options: LspOptions,
}

/// The last `% argus query: name/arity adornment` directive in `src`.
fn directive_query(src: &str) -> Option<(PredKey, Adornment)> {
    let mut found = None;
    for line in src.lines() {
        let Some(rest) = line.trim_start().strip_prefix('%') else { continue };
        let Some(spec) = rest.trim_start().strip_prefix("argus query:") else { continue };
        let mut words = spec.split_whitespace();
        let (Some(pred), Some(adn)) = (words.next(), words.next()) else { continue };
        if words.next().is_some() {
            continue;
        }
        if let Ok(q) = parse_query_spec(pred, adn) {
            found = Some(q);
        }
    }
    found
}

/// Parse an LSP `Position` object into `(line, character)`.
fn parse_position(v: &Json) -> Option<(usize, usize)> {
    Some((
        v.get("line").and_then(Json::as_u64)? as usize,
        v.get("character").and_then(Json::as_u64)? as usize,
    ))
}

/// Parse an LSP `Range` object.
fn parse_range(v: &Json) -> Option<LspRange> {
    Some((parse_position(v.get("start")?)?, parse_position(v.get("end")?)?))
}

/// The predicate whose atom most tightly encloses byte `offset`, with
/// that atom's span. Heads and body literals both count.
fn atom_at(program: &Program, offset: usize) -> Option<(PredKey, Span)> {
    let mut best: Option<(PredKey, Span)> = None;
    let mut consider = |key: PredKey, span: Option<Span>| {
        let Some(span) = span else { return };
        if span.start <= offset
            && offset < span.end
            && best.as_ref().is_none_or(|(_, b)| span.len() < b.len())
        {
            best = Some((key, span));
        }
    };
    for rule in &program.rules {
        consider(rule.head.key(), rule.head.span.get());
        for lit in &rule.body {
            consider(lit.atom.key(), lit.atom.span.get());
        }
    }
    best
}

impl<W: Write> Server<W> {
    fn send(&mut self, payload: &str) {
        if write_frame(&mut self.out, payload).is_err() {
            self.broken_pipe = true;
        }
    }

    fn eof_code(&self) -> i32 {
        if self.shutdown_requested {
            0
        } else {
            1
        }
    }

    /// Handle one parsed frame. `Some(code)` means exit.
    fn handle_payload(&mut self, payload: &str) -> Option<i32> {
        let msg = match parse_message(payload) {
            Ok(m) => m,
            Err(e) => {
                self.send(&error_response("null", PARSE_ERROR, &e));
                return None;
            }
        };
        match (msg.method.as_str(), msg.id.is_some()) {
            ("initialize", true) => self.on_initialize(&msg),
            ("initialized", _) => {}
            ("shutdown", true) => {
                self.shutdown_requested = true;
                let id = render_id(msg.id.as_ref());
                self.send(&response(&id, "null"));
            }
            ("exit", _) => return Some(self.eof_code()),
            ("textDocument/didOpen", _) => self.on_did_open(&msg.params),
            ("textDocument/didChange", _) => self.on_did_change(&msg.params),
            ("textDocument/didClose", _) => self.on_did_close(&msg.params),
            ("textDocument/didSave", _) => self.on_did_save(&msg.params),
            ("textDocument/hover", true) => self.on_hover(&msg),
            (method, true) => {
                let id = render_id(msg.id.as_ref());
                self.send(&error_response(
                    &id,
                    METHOD_NOT_FOUND,
                    &format!("unknown method {method}"),
                ));
            }
            // Unknown notifications ($/cancelRequest, $/setTrace, …) are
            // ignored, per the spec.
            (_, false) => {}
        }
        None
    }

    fn on_initialize(&mut self, msg: &Incoming) {
        let id = render_id(msg.id.as_ref());
        if let Some(init) = msg.params.get("initializationOptions") {
            let query = init.get("query").and_then(Json::as_str);
            let mode = init.get("mode").and_then(Json::as_str);
            match (query, mode) {
                (Some(q), Some(m)) => match parse_query_spec(q, m) {
                    Ok(parsed) => self.default_query = Some(parsed),
                    Err(e) => {
                        self.send(&error_response(&id, INVALID_PARAMS, &e));
                        return;
                    }
                },
                (None, None) => {}
                _ => {
                    self.send(&error_response(
                        &id,
                        INVALID_PARAMS,
                        "initializationOptions wants both `query` and `mode` (or neither)",
                    ));
                    return;
                }
            }
        }
        self.send(&response(
            &id,
            "{\"capabilities\":{\
               \"textDocumentSync\":{\"openClose\":true,\"change\":2,\"save\":true},\
               \"hoverProvider\":true},\
             \"serverInfo\":{\"name\":\"argus-lsp\"}}",
        ));
    }

    fn on_did_open(&mut self, params: &Json) {
        let doc = params.get("textDocument");
        let (Some(uri), Some(text)) = (
            doc.and_then(|d| d.get("uri")).and_then(Json::as_str),
            doc.and_then(|d| d.get("text")).and_then(Json::as_str),
        ) else {
            return;
        };
        let version = doc.and_then(|d| d.get("version")).and_then(Json::as_u64).unwrap_or(0) as i64;
        self.docs.open(uri, version, text.to_string());
        self.dirty.insert(uri.to_string());
    }

    fn on_did_change(&mut self, params: &Json) {
        let doc = params.get("textDocument");
        let Some(uri) = doc.and_then(|d| d.get("uri")).and_then(Json::as_str) else { return };
        let version = doc.and_then(|d| d.get("version")).and_then(Json::as_u64);
        let Some(open) = self.docs.get_mut(uri) else { return };
        let Some(changes) = params.get("contentChanges").and_then(Json::as_array) else {
            return;
        };
        for change in changes {
            let Some(text) = change.get("text").and_then(Json::as_str) else { continue };
            let range = change.get("range").and_then(parse_range);
            open.apply_change(range, text);
        }
        if let Some(v) = version {
            open.version = v as i64;
        }
        self.dirty.insert(uri.to_string());
    }

    fn on_did_close(&mut self, params: &Json) {
        let Some(uri) =
            params.get("textDocument").and_then(|d| d.get("uri")).and_then(Json::as_str)
        else {
            return;
        };
        if self.docs.close(uri).is_some() {
            self.dirty.remove(uri);
            // Clear the client's stale diagnostics for the closed buffer.
            let params = format!("{{\"uri\":{},\"diagnostics\":[]}}", json_str(uri));
            self.send(&notification("textDocument/publishDiagnostics", &params));
        }
    }

    fn on_did_save(&mut self, params: &Json) {
        let Some(uri) =
            params.get("textDocument").and_then(|d| d.get("uri")).and_then(Json::as_str)
        else {
            return;
        };
        if self.docs.get(uri).is_some() {
            self.dirty.insert(uri.to_string());
        }
    }

    fn on_hover(&mut self, msg: &Incoming) {
        let id = render_id(msg.id.as_ref());
        let uri = msg.params.get("textDocument").and_then(|d| d.get("uri")).and_then(Json::as_str);
        let position = msg.params.get("position").and_then(parse_position);
        let (Some(uri), Some((line, character))) = (uri, position) else {
            self.send(&error_response(&id, INVALID_PARAMS, "hover wants textDocument + position"));
            return;
        };
        let Some(doc) = self.docs.get(uri) else {
            self.send(&response(&id, "null"));
            return;
        };
        let text = doc.text.clone();
        let index = LineIndex::new(&text);
        let offset = index.position_to_offset(&text, line, character);
        let Ok(program) = parse_program(&text) else {
            self.send(&response(&id, "null"));
            return;
        };
        let Some((pred, span)) = atom_at(&program, offset) else {
            self.send(&response(&id, "null"));
            return;
        };
        if !program.idb_predicates().contains(&pred) {
            self.send(&response(&id, "null"));
            return;
        }
        let markdown = self.condition_markdown(&program, &pred);
        let ((sl, sc), (el, ec)) =
            (index.utf16_position(&text, span.start), index.utf16_position(&text, span.end));
        let result = format!(
            "{{\"contents\":{{\"kind\":\"markdown\",\"value\":{}}},\
             \"range\":{{\"start\":{{\"line\":{sl},\"character\":{sc}}},\
             \"end\":{{\"line\":{el},\"character\":{ec}}}}}}}",
            json_str(&markdown)
        );
        self.send(&response(&id, &result));
    }

    /// Hover text: the inferred minimal-DNF termination condition of
    /// `pred`, computed through the backwards analysis with the server's
    /// memo threaded into every probe.
    fn condition_markdown(&self, program: &Program, pred: &PredKey) -> String {
        let options = BackwardsOptions {
            max_arity: HOVER_MAX_ARITY,
            analysis: AnalysisOptions {
                parallelism: self.options.jobs,
                ..AnalysisOptions::default()
            },
            scc_memo: Some(self.memo.clone()),
            ..BackwardsOptions::default()
        };
        let targets: BTreeSet<PredKey> = [pred.clone()].into_iter().collect();
        let inferred = infer_conditions_for(program, &targets, &options);
        let Some(cond) = inferred.conditions.iter().find(|c| c.pred == *pred) else {
            return format!("`{pred}` — no termination condition inferred");
        };
        let mut text = if cond.condition.is_true() {
            format!("`{pred}` terminates for every call mode")
        } else if cond.condition.is_false() {
            format!(
                "`{pred}` — termination is unproven for every call mode \
                 (within the argument-size method)"
            )
        } else {
            format!("`{pred}` terminates if **{}**", cond.condition)
        };
        if cond.capped {
            text.push_str(&format!(
                "\n\n*(arity exceeds the inference cap of {HOVER_MAX_ARITY}: only the \
                 all-bound mode was probed, so a weaker condition may exist)*"
            ));
        }
        text
    }

    /// Re-analyze and re-publish every dirty document.
    fn flush_dirty(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for uri in dirty {
            self.analyze_and_publish(&uri);
        }
    }

    fn analyze_and_publish(&mut self, uri: &str) {
        let Some(doc) = self.docs.get(uri) else { return };
        let (text, version) = (doc.text.clone(), doc.version);
        let started = Instant::now();
        let query = directive_query(&text).or_else(|| self.default_query.clone());
        let run = lint_source_memo(
            &text,
            &LintOptions { query },
            Some(self.memo.clone()),
            self.options.jobs,
        );
        let diagnostics = render_lsp_diagnostics(&run.diagnostics, &text, uri);
        let elapsed_us = started.elapsed().as_micros();
        let params = format!(
            "{{\"uri\":{},\"version\":{version},\"diagnostics\":{diagnostics}}}",
            json_str(uri)
        );
        self.send(&notification("textDocument/publishDiagnostics", &params));
        let stats = run.incremental.unwrap_or_default();
        let stats_params = format!(
            "{{\"uri\":{},\"version\":{version},\"dirty\":{},\"total\":{},\
             \"size_hits\":{},\"size_misses\":{},\"theta_hits\":{},\"theta_misses\":{},\
             \"elapsed_us\":{elapsed_us}}}",
            json_str(uri),
            stats.dirty(),
            stats.total(),
            stats.size_hits,
            stats.size_misses,
            stats.theta_hits,
            stats.theta_misses,
        );
        self.send(&notification("$/argus/stats", &stats_params));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_queries_parse_and_last_one_wins() {
        let src = "p(a).\n% argus query: p/1 b\nq(b).\n  %  argus query: q/1 f\n";
        let (pred, adn) = directive_query(src).expect("directive");
        assert_eq!(pred.to_string(), "q/1");
        assert_eq!(adn.to_string(), "f");
        assert!(directive_query("p(a). % no directive\n").is_none());
        // Malformed directives are ignored, not errors.
        assert!(directive_query("% argus query: p/one b\n").is_none());
        assert!(directive_query("% argus query: p/1 b extra\n").is_none());
    }

    #[test]
    fn atom_lookup_finds_the_tightest_enclosing_span() {
        let src = "path(X, Z) :- edge(X, Y), path(Y, Z).\n";
        let program = parse_program(src).unwrap();
        let edge_off = src.find("edge").unwrap() + 1;
        let (pred, span) = atom_at(&program, edge_off).expect("atom");
        assert_eq!(pred.to_string(), "edge/2");
        assert_eq!(span.slice(src), Some("edge(X, Y)"));
        let head_off = 2;
        let (pred, _) = atom_at(&program, head_off).expect("atom");
        assert_eq!(pred.to_string(), "path/2");
        assert!(atom_at(&program, src.len() - 1).is_none(), "the final newline is no atom");
    }
}
