//! `lsp_session` — the CI lane's scripted end-to-end LSP session.
//!
//! Spawns the **real** `argus lsp` binary (not the in-process harness)
//! and drives a full editor session over its stdio: `initialize` →
//! `didOpen` a corpus program → three one-clause incremental edits →
//! `shutdown`/`exit`. Succeeds (exit 0) only if every edit produced a
//! `publishDiagnostics` round trip and the server exited with status 0 —
//! proving the production transport, not just the library, survives a
//! realistic session.
//!
//! Usage: `lsp_session [ARGUS_BINARY]` (default `target/release/argus`).

use argus_lsp::LspClient;
use argus_serve::jsonval::Json;
use std::process::{Command, Stdio};

fn main() {
    let binary = std::env::args().nth(1).unwrap_or_else(|| "target/release/argus".to_string());
    let entry = argus_corpus::find("append_bff").expect("corpus entry append_bff");
    let mut text = entry.source.trim_end().to_string();
    text.push('\n');
    text.push_str(&format!("% argus query: {} {}\n", entry.query, entry.adornment));

    let mut child = match Command::new(&binary)
        .args(["lsp", "--debounce-ms", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lsp_session: cannot spawn {binary}: {e}");
            std::process::exit(1);
        }
    };
    let mut client = LspClient::over_child(&mut child);

    client.initialize(None);
    let uri = "file:///ci/session.pl";
    client.did_open(uri, 1, &text);
    client.wait_publish(uri, 1);

    // Three one-clause edits, each appended at the end of the document.
    let edits = [
        "last([X], X).",
        "last([Y|Ys], X) :- last(Ys, X).",
        "main :- last([a, b], X), append([X], [], [X]).",
    ];
    let first_line = text.lines().count();
    let mut diags = 0usize;
    for (k, clause) in edits.iter().enumerate() {
        let line = first_line + k;
        let version = k as i64 + 2;
        client.did_change_range(uri, version, ((line, 0), (line, 0)), &format!("{clause}\n"));
        let publish = client.wait_publish(uri, version);
        diags = publish.get("diagnostics").and_then(Json::as_array).map_or(0, <[Json]>::len);
    }

    client.shutdown_exit();
    drop(client);
    let status = child.wait().expect("wait for argus lsp");
    if !status.success() {
        eprintln!("lsp_session: server exited with {status}");
        std::process::exit(1);
    }
    eprintln!(
        "lsp_session: ok — {} edits published diagnostics ({diags} on the final version), \
         server exited 0",
        edits.len()
    );
}
