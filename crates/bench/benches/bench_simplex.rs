//! E7c — simplex vs Fourier–Motzkin as the feasibility decision procedure.
//!
//! The paper's final θ systems can be decided either way ("the final
//! constraints represent a feasibility problem in linear programming";
//! "in practice Fourier-Motzkin elimination is simple and adequate").
//! This bench locates the crossover on random systems of growing size.
//! Plain fixed-iteration harness; pass `--smoke` for CI-sized systems.

use argus_bench::suites::{simplex_suite, Scale};
use argus_bench::timing::render_line;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") { Scale::Smoke } else { Scale::Full };
    for s in simplex_suite(scale) {
        println!("{}", render_line(&s));
    }
}
