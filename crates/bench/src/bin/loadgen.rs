//! `loadgen` — replay the corpus against a running `argus serve` over
//! real sockets and verify every response byte-for-byte.
//!
//! ```text
//! loadgen --addr HOST:PORT [--connections N] [--requests N]
//!         [--wait-healthz SECS] [--no-verify] [--prime-infer]
//!         [--edit-stream]
//! ```
//!
//! * `--addr` — the server address (required).
//! * `--connections` — concurrent keep-alive connections (default 64;
//!   `0` skips the load phase, useful with `--wait-healthz` alone).
//! * `--requests` — requests per connection (default 10). Each
//!   connection walks the corpus round-robin from its own offset, so the
//!   full corpus is covered and the server sees a mixed hot/cold stream.
//! * `--wait-healthz` — poll `GET /healthz` for up to this many seconds
//!   before starting (exit 2 on timeout); lets scripts boot the server
//!   and loadgen back to back without races.
//! * `--no-verify` — skip the byte comparison against locally computed
//!   reports (pure throughput mode).
//! * `--prime-infer` — before the load phase, POST `/v1/infer` once per
//!   distinct corpus program; the server's condition inference deposits
//!   every probed report into the analyze cache, so the load phase
//!   measures the primed-cache path instead of cold analyses.
//! * `--edit-stream` — instead of the round-robin load phase, replay
//!   corpus-derived one-clause edits (delete a clause, restore it, next
//!   clause) sequentially over one connection — the request pattern
//!   `argus watch` generates — and report p50/p99 re-analysis latency.
//!   Every edited variant misses the whole-report cache, so the numbers
//!   measure the server's per-SCC incremental path, not the body-bytes
//!   hit path.
//!
//! Exit code 0 only when **every** response was 200 with the exact bytes
//! `argus analyze --json` produces. Prints total/failed counts, p50/p99
//! latency, and throughput.

use argus_serve::client::HttpClient;
use argus_serve::jsonval::json_str;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Options {
    addr: String,
    connections: usize,
    requests: usize,
    wait_healthz: Option<u64>,
    verify: bool,
    prime_infer: bool,
    edit_stream: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: String::new(),
        connections: 64,
        requests: 10,
        wait_healthz: None,
        verify: true,
        prime_infer: false,
        edit_stream: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut want = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--addr" => opts.addr = want("--addr")?,
            "--connections" => {
                opts.connections =
                    want("--connections")?.parse().map_err(|_| "bad --connections")?;
            }
            "--requests" => {
                opts.requests = want("--requests")?.parse().map_err(|_| "bad --requests")?;
            }
            "--wait-healthz" => {
                opts.wait_healthz =
                    Some(want("--wait-healthz")?.parse().map_err(|_| "bad --wait-healthz")?);
            }
            "--no-verify" => opts.verify = false,
            "--prime-infer" => opts.prime_infer = true,
            "--edit-stream" => opts.edit_stream = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    Ok(opts)
}

/// One precomputed corpus request with its expected response bytes.
struct Case {
    name: &'static str,
    body: Vec<u8>,
    expected: Option<Vec<u8>>,
}

fn build_cases(verify: bool) -> Vec<Case> {
    argus_corpus::corpus()
        .into_iter()
        .map(|entry| {
            let body = format!(
                "{{\"program\":{},\"query\":{},\"adornment\":{}}}",
                json_str(entry.source),
                json_str(entry.query),
                json_str(entry.adornment)
            )
            .into_bytes();
            let expected = verify.then(|| {
                let program = entry.program().expect("corpus entry parses");
                let (query, adornment) = entry.query_key();
                let options = argus_core::AnalysisOptions::default();
                let report = argus_core::analyze(&program, &query, adornment, &options);
                format!("{}\n", report.to_json()).into_bytes()
            });
            Case { name: entry.name, body, expected }
        })
        .collect()
}

/// POST `/v1/infer` once per distinct corpus program over one keep-alive
/// connection, so the server's analyze cache is hot before the load phase.
fn prime_infer(addr: &str) -> Result<(), String> {
    let mut sources: Vec<&'static str> = Vec::new();
    for entry in argus_corpus::corpus() {
        if !sources.contains(&entry.source) {
            sources.push(entry.source);
        }
    }
    let started = Instant::now();
    let mut client =
        HttpClient::connect(addr, Duration::from_secs(300)).map_err(|e| e.to_string())?;
    for src in &sources {
        let body = format!("{{\"program\":{}}}", json_str(src));
        let resp =
            client.request("POST", "/v1/infer", body.as_bytes()).map_err(|e| e.to_string())?;
        if resp.status != 200 {
            return Err(format!("/v1/infer answered {}", resp.status));
        }
    }
    println!(
        "loadgen: primed {} programs via /v1/infer in {}ms",
        sources.len(),
        started.elapsed().as_millis()
    );
    Ok(())
}

/// `--edit-stream`: replay corpus-derived one-clause edits sequentially
/// over one keep-alive connection — for each entry, the base program,
/// then for each clause a deletion followed by a restore — and report
/// p50/p99 latency over the post-prime requests. Deleted variants that
/// leave the query predicate undefined are skipped (the server would
/// correctly reject them). The FM-stress entry is skipped: its per-edit
/// recomputes are benchmark material (`incremental` suite), not a
/// latency smoke.
fn edit_stream(addr: &str) -> Result<(), String> {
    use argus_logic::Program;
    let mut client =
        HttpClient::connect(addr, Duration::from_secs(300)).map_err(|e| e.to_string())?;
    let mut latencies: Vec<u64> = Vec::new();
    let mut primes = 0usize;
    let started = Instant::now();
    for entry in argus_corpus::corpus() {
        if entry.name == "mutual_fib_ring" {
            continue;
        }
        let program = entry.program().expect("corpus entry parses");
        // Variants are shipped as printed text; entries whose programs
        // don't survive the Display -> parse round-trip (infix comparison
        // builtins print prefix-style) can't be edited this way.
        if argus_logic::parser::parse_program(&program.to_string()).is_err() {
            continue;
        }
        let (query, _) = entry.query_key();
        let mut variants: Vec<Program> = vec![program.clone()];
        for i in 0..program.rules.len() {
            let mut rules = program.rules.clone();
            rules.remove(i);
            let edited = Program::from_rules(rules);
            if !edited.idb_predicates().contains(&query) {
                continue;
            }
            variants.push(edited);
            variants.push(program.clone());
        }
        for (vi, variant) in variants.iter().enumerate() {
            let src = variant.to_string();
            let body = format!(
                "{{\"program\":{},\"query\":{},\"adornment\":{}}}",
                json_str(&src),
                json_str(entry.query),
                json_str(entry.adornment)
            );
            let t = Instant::now();
            let resp = client
                .request("POST", "/v1/analyze", body.as_bytes())
                .map_err(|e| format!("{}: edit {vi}: {e}", entry.name))?;
            let us = t.elapsed().as_micros().min(u64::MAX as u128) as u64;
            if resp.status != 200 {
                return Err(format!("{}: edit {vi}: status {}", entry.name, resp.status));
            }
            if vi == 0 {
                primes += 1;
            } else {
                latencies.push(us);
            }
        }
    }
    latencies.sort_unstable();
    println!(
        "loadgen: edit-stream {} re-analyses over {primes} programs in {:.2}s, \
         p50 {}us p99 {}us",
        latencies.len(),
        started.elapsed().as_secs_f64(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    );
    Ok(())
}

fn wait_healthz(addr: &str, secs: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if let Ok(resp) =
            argus_serve::client::request_once(addr, "GET", "/healthz", b"", Duration::from_secs(1))
        {
            if resp.status == 200 {
                return true;
            }
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(1);
        }
    };
    if let Some(secs) = opts.wait_healthz {
        if !wait_healthz(&opts.addr, secs) {
            eprintln!("loadgen: /healthz did not come up within {secs}s");
            std::process::exit(2);
        }
    }
    if opts.prime_infer {
        if let Err(e) = prime_infer(&opts.addr) {
            eprintln!("loadgen: prime-infer failed: {e}");
            std::process::exit(1);
        }
    }
    if opts.edit_stream {
        if let Err(e) = edit_stream(&opts.addr) {
            eprintln!("loadgen: edit-stream failed: {e}");
            std::process::exit(1);
        }
        return;
    }
    if opts.connections == 0 || opts.requests == 0 {
        println!("loadgen: healthz ok, no load requested");
        return;
    }

    let cases = build_cases(opts.verify);
    let failures = AtomicU64::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let first_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let started = Instant::now();

    std::thread::scope(|scope| {
        for conn in 0..opts.connections {
            let cases = &cases;
            let failures = &failures;
            let latencies = &latencies;
            let first_errors = &first_errors;
            let addr = opts.addr.as_str();
            scope.spawn(move || {
                let fail = |msg: String| {
                    failures.fetch_add(1, Ordering::Relaxed);
                    let mut errs = first_errors.lock().unwrap();
                    if errs.len() < 5 {
                        errs.push(msg);
                    }
                };
                let mut client = match HttpClient::connect(addr, Duration::from_secs(30)) {
                    Ok(c) => c,
                    Err(e) => {
                        for _ in 0..opts.requests {
                            fail(format!("conn {conn}: connect failed: {e}"));
                        }
                        return;
                    }
                };
                let mut local = Vec::with_capacity(opts.requests);
                for i in 0..opts.requests {
                    let case = &cases[(conn + i) % cases.len()];
                    let t = Instant::now();
                    match client.request("POST", "/v1/analyze", &case.body) {
                        Ok(resp) => {
                            local.push(t.elapsed().as_micros().min(u64::MAX as u128) as u64);
                            if resp.status != 200 {
                                fail(format!("conn {conn} {}: status {}", case.name, resp.status));
                            } else if let Some(expected) = &case.expected {
                                if &resp.body != expected {
                                    fail(format!(
                                        "conn {conn} {}: body diverges from the CLI report \
                                         ({} vs {} bytes)",
                                        case.name,
                                        resp.body.len(),
                                        expected.len()
                                    ));
                                }
                            }
                        }
                        Err(e) => fail(format!("conn {conn} {}: {e}", case.name)),
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });

    let elapsed = started.elapsed();
    let mut lat = latencies.into_inner().unwrap();
    lat.sort_unstable();
    let total = opts.connections * opts.requests;
    let failed = failures.load(Ordering::Relaxed);
    for e in first_errors.into_inner().unwrap() {
        eprintln!("loadgen: {e}");
    }
    println!(
        "loadgen: {total} requests over {} connections, {failed} failures, \
         p50 {}us p99 {}us, {:.0} req/s",
        opts.connections,
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        total as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
