//! E7b — Fourier–Motzkin elimination scaling.
//!
//! FM's output can grow quadratically per eliminated variable; the paper
//! leans on it anyway because termination systems are small. This bench
//! measures projection cost against (a) the number of variables
//! eliminated and (b) the row count, on random feasible systems.
//! Plain fixed-iteration harness; pass `--smoke` for CI-sized systems.

use argus_bench::suites::{fm_suite, Scale};
use argus_bench::timing::render_line;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") { Scale::Smoke } else { Scale::Full };
    for s in fm_suite(scale) {
        println!("{}", render_line(&s));
    }
}
