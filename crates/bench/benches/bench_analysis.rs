//! E7a — end-to-end analysis cost per corpus program.
//!
//! The paper claims a theoretical polynomial bound but notes that "in
//! practice, Fourier-Motzkin elimination is simple and adequate"; this
//! bench quantifies "adequate": whole-pipeline wall time (adorn → size
//! relations → dual → feasibility) for each representative program, plus
//! scaling over the synthetic chained-append family.
//! Plain fixed-iteration harness; pass `--smoke` for CI-sized systems.

use argus_bench::suites::{analysis_suite, Scale};
use argus_bench::timing::render_line;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") { Scale::Smoke } else { Scale::Full };
    for s in analysis_suite(scale) {
        println!("{}", render_line(&s));
    }
}
