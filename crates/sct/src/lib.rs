//! # argus-sct — size-change termination beside the θ-method
//!
//! A second, independent termination engine in the style of Lee, Jones &
//! Ben-Amram's *size-change termination* (POPL 2001), built on the same
//! substrate as the paper's θ-method: the adornment pass, the inferred
//! inter-argument size relations of `argus-sizerel`, and the Eq. (1)
//! rule × recursive-subgoal systems of `argus-core`.
//!
//! Where the θ-method searches for one global linear combination of bound
//! argument sizes that decreases on every recursive call, SCT keeps a
//! *local* graph per call site — which caller arguments bound which callee
//! arguments, strictly or not — and decides termination on the composition
//! closure: every idempotent graph must carry a strict self-edge. The two
//! engines are incomparable: SCT proves lexicographic descents that no
//! single linear combination captures (Ackermann, reset patterns), while
//! the θ-method proves combined measures (`x₁ + x₂` decreasing) that SCT's
//! per-argument edges cannot express.
//!
//! Edge extraction is itself an exact LP over the Eq. (1) primal system:
//! the edge `i → j` (strict) exists iff the minimum of `xᵢ − yⱼ` over all
//! reachable call instances is positive. Sizes are integers, so a positive
//! rational minimum already implies a decrease of at least 1 — the LP
//! relaxation is sound without integrality reasoning. Pairs whose primal
//! system is infeasible describe calls the size relations prove can never
//! happen; they contribute no graph.

#![warn(missing_docs)]

pub mod graph;

pub use graph::{
    closure, criterion, criterion_by_powers, ArenaStats, Edge, Graph, GraphArena, GraphId,
};

use argus_core::pairs::{build_pair_with_norm, primal_system};
use argus_core::AnalysisOptions;
use argus_linear::simplex::{LpOutcome, LpProblem};
use argus_linear::LinExpr;
use argus_logic::modes::{Adornment, ModeMap};
use argus_logic::{DepGraph, PredKey, Program};
use argus_sizerel::{infer_size_relations, InferOptions};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

/// Deterministic work counters for one SCT analysis (totals over SCCs).
/// Safe to pin in goldens: every count is independent of parallelism and
/// wall clock.
#[derive(Debug, Clone, Copy, Default)]
pub struct SctStats {
    /// Rule × recursive-subgoal pairs examined.
    pub pairs: u64,
    /// Pairs skipped because their primal system is infeasible (the call
    /// provably never happens).
    pub infeasible_pairs: u64,
    /// Edge-extraction LP solves.
    pub edge_lps: u64,
    /// Distinct graphs interned across all SCC arenas.
    pub graphs: u64,
    /// Graph compositions computed (memo misses).
    pub compositions: u64,
    /// Compositions answered from the memo.
    pub memo_hits: u64,
    /// Total closure size across SCCs.
    pub closure_size: u64,
    /// Idempotent graphs examined by the criterion.
    pub idempotents: u64,
}

impl SctStats {
    fn absorb_arena(&mut self, a: &ArenaStats) {
        self.graphs += a.graphs;
        self.compositions += a.compositions;
        self.memo_hits += a.memo_hits;
    }

    /// The counters as stable `(name, value)` pairs, in render order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("pairs", self.pairs),
            ("infeasible_pairs", self.infeasible_pairs),
            ("edge_lps", self.edge_lps),
            ("graphs", self.graphs),
            ("compositions", self.compositions),
            ("memo_hits", self.memo_hits),
            ("closure_size", self.closure_size),
            ("idempotents", self.idempotents),
        ]
    }
}

/// Outcome of one SCC under the size-change criterion.
#[derive(Debug, Clone)]
pub enum SctSccOutcome {
    /// Not recursive: nothing to prove.
    NonRecursive,
    /// Every idempotent graph in the closure has a strict self-edge.
    Proved {
        /// Call-site graphs extracted.
        initial_graphs: usize,
        /// Size of the composition closure.
        closure_size: usize,
    },
    /// Some idempotent graph lacks a strict self-edge (or no information
    /// at all could be extracted): SCT cannot certify this SCC.
    Unproved {
        /// Human-readable description of the offending idempotent graph.
        witness: String,
    },
}

impl SctSccOutcome {
    /// Does this outcome certify the SCC?
    pub fn is_proved(&self) -> bool {
        matches!(self, SctSccOutcome::NonRecursive | SctSccOutcome::Proved { .. })
    }
}

/// Analysis record of one SCC.
#[derive(Debug, Clone)]
pub struct SctSccAnalysis {
    /// Predicates of the SCC.
    pub members: Vec<PredKey>,
    /// Result.
    pub outcome: SctSccOutcome,
}

/// Full report of a size-change termination analysis.
#[derive(Debug, Clone)]
pub struct SctReport {
    /// The (adorned) query predicate.
    pub query: PredKey,
    /// Per-SCC analyses, bottom-up.
    pub sccs: Vec<SctSccAnalysis>,
    /// Every reachable recursive SCC certified?
    pub proved: bool,
    /// The analysis was abandoned on a cancellation signal (racing
    /// portfolio); `proved` is then necessarily `false`.
    pub cancelled: bool,
    /// Work counters (totals).
    pub stats: SctStats,
}

impl SctReport {
    /// One-line summary for engine attribution.
    pub fn detail(&self) -> String {
        if self.cancelled {
            return "cancelled".to_string();
        }
        let recursive =
            self.sccs.iter().filter(|s| !matches!(s.outcome, SctSccOutcome::NonRecursive)).count();
        if self.proved {
            format!(
                "{recursive} recursive SCC(s) certified; {} graph(s), closure {}, {} idempotent(s)",
                self.stats.graphs, self.stats.closure_size, self.stats.idempotents
            )
        } else {
            match self.sccs.iter().find_map(|s| match &s.outcome {
                SctSccOutcome::Unproved { witness } => Some(witness.clone()),
                _ => None,
            }) {
                Some(w) => w,
                None => "no recursive SCC certified".to_string(),
            }
        }
    }
}

impl fmt::Display for SctReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "query: {} — size-change termination: {}",
            self.query,
            if self.cancelled {
                "CANCELLED"
            } else if self.proved {
                "PROVED"
            } else {
                "not proved"
            }
        )?;
        for scc in &self.sccs {
            let names: Vec<String> = scc.members.iter().map(|p| p.to_string()).collect();
            write!(f, "  SCC {{{}}}: ", names.join(", "))?;
            match &scc.outcome {
                SctSccOutcome::NonRecursive => writeln!(f, "nonrecursive")?,
                SctSccOutcome::Proved { initial_graphs, closure_size } => writeln!(
                    f,
                    "PROVED ({initial_graphs} call-site graph(s), closure {closure_size})"
                )?,
                SctSccOutcome::Unproved { witness } => writeln!(f, "not proved: {witness}")?,
            }
        }
        Ok(())
    }
}

/// Has a cancellation been signalled?
fn cancelled(cancel: Option<&AtomicBool>) -> bool {
    cancel.is_some_and(|c| c.load(Ordering::Relaxed))
}

/// Analyze `program` for top-down termination of `query` under `adornment`
/// with the size-change criterion.
///
/// The pipeline mirrors the θ-method analyzer through its first three
/// stages — adornment, size-relation inference, bottom-up SCCs — then
/// diverges at the decision procedure. The Appendix A transformations are
/// *not* applied: they exist to massage programs into the θ-form, and the
/// size-change criterion reads the raw recursive structure directly.
pub fn analyze_sct(
    program: &Program,
    query: &PredKey,
    adornment: Adornment,
    options: &AnalysisOptions,
    cancel: Option<&AtomicBool>,
) -> SctReport {
    let adorned = argus_logic::adorn_program(program, query, adornment);
    let program = adorned.program;
    let query = adorned.query;
    let modes = adorned.modes;

    let infer_options = InferOptions { norm: options.norm, ..options.infer.clone() };
    let rels = infer_size_relations(&program, &infer_options);

    let graph = DepGraph::build(&program);
    let proc_index = argus_logic::program::ProcIndex::build(&program);

    let mut report = SctReport {
        query,
        sccs: Vec::new(),
        proved: true,
        cancelled: false,
        stats: SctStats::default(),
    };
    for scc_id in graph.sccs_bottom_up() {
        if cancelled(cancel) {
            report.cancelled = true;
            report.proved = false;
            return report;
        }
        let members = graph.scc(scc_id);
        let reachable = members.iter().any(|p| modes.get(p).is_some());
        let has_rules = members.iter().any(|p| !proc_index.rule_indices(p).is_empty());
        if !reachable || !has_rules {
            continue;
        }
        let recursive = members.iter().any(|p| graph.is_recursive(p));
        if !recursive {
            report.sccs.push(SctSccAnalysis { members, outcome: SctSccOutcome::NonRecursive });
            continue;
        }
        let analysis = analyze_scc(
            &graph,
            &program,
            scc_id,
            members,
            &modes,
            &rels,
            options,
            &mut report.stats,
            cancel,
        );
        let Some(analysis) = analysis else {
            report.cancelled = true;
            report.proved = false;
            return report;
        };
        if !analysis.outcome.is_proved() {
            report.proved = false;
        }
        report.sccs.push(analysis);
    }
    report
}

/// Convenience: parse, analyze with default options.
pub fn analyze_sct_source(
    src: &str,
    query_spec: &str,
    adornment: &str,
) -> Result<SctReport, String> {
    let program = argus_logic::parser::parse_program(src).map_err(|e| e.to_string())?;
    let (name, arity) = query_spec
        .rsplit_once('/')
        .ok_or_else(|| format!("bad query spec {query_spec:?} (want name/arity)"))?;
    let arity: usize = arity.parse().map_err(|_| format!("bad arity in {query_spec:?}"))?;
    let query = PredKey::new(name, arity);
    let adornment = Adornment::parse(adornment)
        .ok_or_else(|| format!("bad adornment {adornment:?} (want e.g. \"bf\")"))?;
    Ok(analyze_sct(&program, &query, adornment, &AnalysisOptions::default(), None))
}

/// Analyze one recursive SCC: extract a size-change graph per rule ×
/// recursive-subgoal pair, close under composition, test the idempotent
/// criterion. `None` means a cancellation was observed mid-SCC.
#[allow(clippy::too_many_arguments)] // shared immutable analysis context, one slot each
fn analyze_scc(
    graph: &DepGraph,
    program: &Program,
    scc_id: usize,
    members: Vec<PredKey>,
    modes: &ModeMap,
    rels: &argus_sizerel::SizeRelations,
    options: &AnalysisOptions,
    stats: &mut SctStats,
    cancel: Option<&AtomicBool>,
) -> Option<SctSccAnalysis> {
    let index_of =
        |p: &PredKey| -> u32 { members.iter().position(|m| m == p).expect("SCC member") as u32 };

    let mut arena = GraphArena::new();
    let mut initial: Vec<GraphId> = Vec::new();
    let rules = graph.scc_rules(program, scc_id);
    for (ri, rule) in rules.iter().enumerate() {
        for si in graph.recursive_subgoals(rule) {
            if cancelled(cancel) {
                return None;
            }
            stats.pairs += 1;
            let pair = build_pair_with_norm(rule, ri, si, modes, rels, options.norm);
            let (sys, x_vars, y_vars, _a_vars) = primal_system(&pair);
            let lp = LpProblem::feasibility(sys, BTreeSet::new());
            // An infeasible primal means the size relations refute every
            // instance of this call: it cannot occur in a derivation, so
            // it constrains nothing.
            if matches!(lp.solve(), LpOutcome::Infeasible) {
                stats.infeasible_pairs += 1;
                continue;
            }
            let mut edges = Vec::new();
            for (i, &xv) in x_vars.iter().enumerate() {
                for (j, &yv) in y_vars.iter().enumerate() {
                    stats.edge_lps += 1;
                    let obj = LinExpr::var(xv) - LinExpr::var(yv);
                    if let LpOutcome::Optimal { value, .. } = lp.minimize(obj) {
                        // Sizes are integers, so a positive rational lower
                        // bound on xᵢ − yⱼ already implies xᵢ ≥ yⱼ + 1.
                        if value.is_positive() {
                            edges.push(Edge { from: i as u16, to: j as u16, strict: true });
                        } else if !value.is_negative() {
                            edges.push(Edge { from: i as u16, to: j as u16, strict: false });
                        }
                    }
                }
            }
            let g = Graph::new(index_of(&pair.head_pred), index_of(&pair.sub_pred), edges);
            let id = arena.intern(g);
            if !initial.contains(&id) {
                initial.push(id);
            }
        }
    }

    let closed = closure(&mut arena, &initial);
    stats.closure_size += closed.len() as u64;
    let offender = criterion(&mut arena, &closed, &mut stats.idempotents);
    stats.absorb_arena(&arena.stats);

    let outcome = match offender {
        None => SctSccOutcome::Proved { initial_graphs: initial.len(), closure_size: closed.len() },
        Some(id) => {
            let g = arena.get(id);
            let p = &members[g.source as usize];
            let bound =
                modes.get(p).map(|a| a.bound_positions()).unwrap_or_else(|| (0..p.arity).collect());
            let shown: Vec<String> = g
                .edges
                .iter()
                .map(|e| {
                    let from = bound.get(e.from as usize).map(|i| i + 1).unwrap_or(0);
                    let to = bound.get(e.to as usize).map(|i| i + 1).unwrap_or(0);
                    format!("{from}{}{to}'", if e.strict { ">" } else { "≥" })
                })
                .collect();
            let edges = if shown.is_empty() { "no edges".to_string() } else { shown.join(", ") };
            SctSccOutcome::Unproved {
                witness: format!(
                    "idempotent size-change graph {p} → {p} has no strict self-edge ({edges})"
                ),
            }
        }
    };
    Some(SctSccAnalysis { members, outcome })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_is_sct_provable() {
        let r = analyze_sct_source(
            "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
            "append/3",
            "bff",
        )
        .unwrap();
        assert!(r.proved, "{r}");
    }

    #[test]
    fn ackermann_is_sct_provable() {
        // Lexicographic descent on (arg1, arg2): the textbook program the
        // single-linear-combination θ-method cannot certify.
        let r = analyze_sct_source(
            "ack(z, N, s(N)).\n\
             ack(s(M), z, R) :- ack(M, s(z), R).\n\
             ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).",
            "ack/3",
            "bbf",
        )
        .unwrap();
        assert!(r.proved, "{r}");
    }

    #[test]
    fn plain_loop_is_not_sct_provable() {
        let r = analyze_sct_source("loop(X) :- loop(X).", "loop/1", "b").unwrap();
        assert!(!r.proved, "{r}");
    }

    #[test]
    fn growing_call_is_not_sct_provable() {
        let r = analyze_sct_source("up(X) :- up(s(X)).", "up/1", "b").unwrap();
        assert!(!r.proved, "{r}");
    }

    #[test]
    fn cancellation_short_circuits() {
        let flag = AtomicBool::new(true);
        let program = argus_logic::parser::parse_program(
            "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        )
        .unwrap();
        let r = analyze_sct(
            &program,
            &PredKey::new("append", 3),
            Adornment::parse("bff").unwrap(),
            &AnalysisOptions::default(),
            Some(&flag),
        );
        assert!(r.cancelled);
        assert!(!r.proved);
    }
}
