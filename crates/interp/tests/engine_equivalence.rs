//! The two SLD engines — the cloning reference interpreter and the
//! trail-based machine — must agree on every query: same termination
//! behaviour, same number of solutions, same solution order. The former
//! proptest strategies are replaced by exhaustive enumeration of the same
//! (small) input spaces plus seeded random draws.

use argus_interp::machine::solve_iterative;
use argus_interp::sld::{solve, InterpOptions};
use argus_logic::parser::{parse_program, parse_query};
use argus_logic::program::{Atom, Literal};
use argus_logic::Term;
use argus_prng::Rng64;

fn opts() -> InterpOptions {
    InterpOptions { max_steps: 30_000, ..InterpOptions::default() }
}

/// Compare outcomes: termination flag, solution count, and the resolved
/// solution terms in order (internal fresh-variable names normalized).
fn agree(program: &argus_logic::Program, goals: &[Literal]) -> Result<(), String> {
    let a = solve(program, goals, &opts());
    let b = solve_iterative(program, goals, &opts());
    if a.terminated() != b.terminated() {
        return Err(format!(
            "termination disagrees: reference={} machine={}",
            a.terminated(),
            b.terminated()
        ));
    }
    if !a.terminated() {
        return Ok(());
    }
    if a.solution_count() != b.solution_count() {
        return Err(format!(
            "solution counts disagree: reference={} machine={}",
            a.solution_count(),
            b.solution_count()
        ));
    }
    let norm = |out: &argus_interp::Outcome| -> Vec<String> {
        match out {
            argus_interp::Outcome::Completed { solutions, .. } => solutions
                .iter()
                .map(|m| {
                    let mut s =
                        m.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(",");
                    for marker in ["_r", "_m"] {
                        while let Some(pos) = s.find(marker) {
                            let end = s[pos + marker.len()..]
                                .find(|c: char| !c.is_ascii_digit())
                                .map(|e| pos + marker.len() + e)
                                .unwrap_or(s.len());
                            s.replace_range(pos..end, "_v");
                        }
                    }
                    s
                })
                .collect(),
            _ => unreachable!(),
        }
    };
    if norm(&a) != norm(&b) {
        return Err(format!("solutions disagree:\n{:?}\nvs\n{:?}", norm(&a), norm(&b)));
    }
    Ok(())
}

fn list_of(atoms: &[&str]) -> Term {
    Term::list(atoms.iter().map(|a| Term::atom(*a)))
}

/// append with every instantiation pattern × list-length combination (the
/// whole space the old strategy sampled from).
#[test]
fn append_equivalence() {
    let program =
        parse_program("append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).")
            .unwrap();
    let atoms = ["a", "b", "c", "d", "e"];
    for n1 in 0usize..5 {
        for n2 in 0usize..5 {
            for pattern in 0u8..4 {
                let l1 = list_of(&atoms[..n1]);
                let l2 = list_of(&atoms[..n2]);
                let goal = match pattern {
                    0 => Atom::new("append", vec![l1, l2, Term::var("Z")]),
                    1 => Atom::new("append", vec![Term::var("X"), Term::var("Y"), l1]),
                    2 => Atom::new("append", vec![l1, Term::var("Y"), Term::var("Z")]),
                    _ => Atom::new("append", vec![Term::var("X"), l2, l1]),
                };
                agree(&program, &[Literal::pos(goal)])
                    .unwrap_or_else(|e| panic!("n1={n1} n2={n2} pattern={pattern}: {e}"));
            }
        }
    }
}

/// Nondeterministic select/member queries (heavy backtracking).
#[test]
fn select_equivalence() {
    let program =
        parse_program("select(X, [X|Xs], Xs).\nselect(X, [Y|Ys], [Y|Zs]) :- select(X, Ys, Zs).")
            .unwrap();
    let atoms = ["a", "b", "c", "d", "e"];
    for n in 1usize..6 {
        let goal = Atom::new("select", vec![Term::var("X"), list_of(&atoms[..n]), Term::var("R")]);
        agree(&program, &[Literal::pos(goal)]).unwrap_or_else(|e| panic!("n={n}: {e}"));
    }
}

/// Arithmetic folds over random small integer lists.
#[test]
fn sum_equivalence() {
    let program =
        parse_program("sum([], 0).\nsum([X|Xs], S) :- sum(Xs, S1), S is S1 + X.").unwrap();
    let mut r = Rng64::new(0x5D3);
    for _ in 0..48 {
        let len = r.range_usize(0, 5);
        let values: Vec<i64> = (0..len).map(|_| r.range_i64(0, 49)).collect();
        let list = Term::list(values.iter().map(|v| Term::int(*v)));
        let goal = Atom::new("sum", vec![list, Term::var("S")]);
        agree(&program, &[Literal::pos(goal)]).unwrap_or_else(|e| panic!("{values:?}: {e}"));
    }
}

#[test]
fn equivalence_on_corpus_samples() {
    for entry in argus_corpus_like_samples() {
        let (src, queries) = entry;
        let program = parse_program(src).unwrap();
        for q in queries {
            let goals = parse_query(q).unwrap();
            agree(&program, &goals).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }
}

/// A hand-picked sample in lieu of a corpus dependency (argus-interp sits
/// below argus-corpus in the crate graph).
fn argus_corpus_like_samples() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "perm([], []).\n\
             perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
             append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
            vec!["perm([a, b, c], Q)", "perm([], Q)"],
        ),
        (
            "merge([], Ys, Ys).\n\
             merge(Xs, [], Xs).\n\
             merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
             merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).",
            vec!["merge([1, 3, 5], [2, 4], Z)", "merge([], [], Z)"],
        ),
        (
            "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
             e(L, T) :- t(L, T).\n\
             t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
             t(L, T) :- n(L, T).\n\
             n(['('|A], T) :- e(A, [')'|T]).\n\
             n([L|T], T) :- z(L).\n\
             z(7). z(8). z(9).",
            vec!["e([7, '+', 8], T)", "e(['(', 7, '+', 8, ')', '*', 9], T)"],
        ),
        ("p(a).\nq(X) :- \\+ p(X).\nr(X) :- q(X).", vec!["q(a)", "q(b)", "r(b)"]),
    ]
}
