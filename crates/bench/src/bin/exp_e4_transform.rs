//! E4 — Appendix A, Example A.1: syntactic transformations.
//!
//! Reproduces: the raw rules (argument size constant across the apparent
//! p/q mutual recursion) defeat the analyzer; the automatic sequence of
//! safe unfolding and predicate splitting exposes that p is not genuinely
//! recursive, after which termination is detected.

use argus_bench::ExperimentLog;
use argus_core::{analyze, AnalysisOptions, Verdict};
use argus_logic::{DepGraph, PredKey};
use argus_transform::transform_fixed_phases;
use std::collections::BTreeSet;

fn main() {
    let entry = argus_corpus::find("appendix_a1").expect("corpus");
    let program = entry.program().expect("parse");
    let (query, adornment) = entry.query_key();

    let mut log = ExperimentLog::new(
        "E4",
        "Example A.1 before and after the Appendix A transformations",
        "Appendix A, Example A.1",
        &["configuration", "paper", "measured"],
    );

    // Raw analysis (transformations disabled).
    let raw_opts = AnalysisOptions { transform_phases: 0, ..AnalysisOptions::default() };
    let raw = analyze(&program, &query, adornment.clone(), &raw_opts);
    log.row(&["raw rules".into(), "not detected".into(), format!("{:?}", raw.verdict)]);

    // Transformation trace.
    let roots: BTreeSet<PredKey> = [query.clone()].into_iter().collect();
    let (transformed, tx_report) = transform_fixed_phases(&program, &roots, 3);
    let graph = DepGraph::build(&transformed);
    log.row(&[
        "p recursive after transforms".into(),
        "no (exposed as nonrecursive)".into(),
        if graph.is_recursive(&query) { "yes".into() } else { "no".into() },
    ]);
    log.row(&[
        "transform phases used".into(),
        "unfold, split, unfold".into(),
        format!(
            "{} unfold step(s), {} split phase(s)",
            tx_report.unfold_phases, tx_report.split_phases
        ),
    ]);
    log.row(&[
        "rule count raw -> transformed".into(),
        "4 -> 6-ish".into(),
        format!("{} -> {}", program.rules.len(), transformed.rules.len()),
    ]);

    // Default (lazy-transform) analysis.
    let cooked = analyze(&program, &query, adornment, &AnalysisOptions::default());
    log.row(&[
        "with transformations".into(),
        "termination detected".into(),
        format!("{:?}", cooked.verdict),
    ]);

    log.note(
        "Paper: \"Our algorithm does not detect termination of these rules in \
         their present form. … a sequence of automatic syntactic transformations \
         puts the rules into a form in which termination is easily detected.\"",
    );
    assert_ne!(raw.verdict, Verdict::Terminates, "E4 raw regression");
    assert_eq!(cooked.verdict, Verdict::Terminates, "E4 cooked regression");
    log.emit();
}
