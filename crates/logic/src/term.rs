//! Logical terms and the structural term-size measure.
//!
//! A term is a logical variable, or a function symbol applied to terms;
//! constants are zero-arity applications (paper §2.1). The paper's
//! *structural term size* of a ground term is the number of edges of its
//! tree — equivalently, the sum of the arities of its function symbol
//! occurrences (§2.2). For non-ground terms the size is a linear polynomial
//! over size variables, one per logical variable; see [`SizePolynomial`].

use crate::intern::Sym;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::OnceLock;

/// The interned cons functor `'.'`.
pub fn sym_cons() -> Sym {
    static S: OnceLock<Sym> = OnceLock::new();
    *S.get_or_init(|| Sym::new("."))
}

/// The interned empty-list constant `[]`.
pub fn sym_nil() -> Sym {
    static S: OnceLock<Sym> = OnceLock::new();
    *S.get_or_init(|| Sym::new("[]"))
}

/// A logical term over interned symbols: equality and hashing are O(1)
/// per node, and ordering (via [`Sym`]'s string ordering) matches the
/// pre-interning lexicographic behavior byte for byte.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A logical variable, by name (e.g. `Xs`).
    Var(Sym),
    /// A function symbol applied to arguments; constants have no arguments.
    App(Sym, Vec<Term>),
}

impl Term {
    /// A variable.
    pub fn var(name: impl Into<Sym>) -> Term {
        Term::Var(name.into())
    }

    /// A constant (zero-arity function symbol).
    pub fn atom(name: impl Into<Sym>) -> Term {
        Term::App(name.into(), Vec::new())
    }

    /// A compound term.
    pub fn app(functor: impl Into<Sym>, args: Vec<Term>) -> Term {
        Term::App(functor.into(), args)
    }

    /// An integer constant, encoded as a constant symbol (the analyzer
    /// treats distinct integers as distinct constants of size 0).
    pub fn int(v: i64) -> Term {
        Term::atom(v.to_string())
    }

    /// The empty list `[]`.
    pub fn nil() -> Term {
        Term::App(sym_nil(), Vec::new())
    }

    /// The list cell `'.'(head, tail)` — the paper's infix cons `H • T`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::App(sym_cons(), vec![head, tail])
    }

    /// A proper list from an iterator of elements.
    pub fn list(items: impl IntoIterator<Item = Term>) -> Term {
        let items: Vec<Term> = items.into_iter().collect();
        items.into_iter().rev().fold(Term::nil(), |acc, t| Term::cons(t, acc))
    }

    /// True iff the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// True iff the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// The functor name and arity, if a compound/constant.
    pub fn functor(&self) -> Option<(&str, usize)> {
        match self {
            Term::Var(_) => None,
            Term::App(f, args) => Some((f.as_str(), args.len())),
        }
    }

    /// Collect variable symbols (in depth-first order, with duplicates)
    /// into a caller-owned buffer, so fixpoint loops can reuse one
    /// allocation across calls.
    pub fn var_occurrences(&self, out: &mut Vec<Sym>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::App(_, args) => {
                for a in args {
                    a.var_occurrences(out);
                }
            }
        }
    }

    /// The set of distinct variables, in first-occurrence order.
    pub fn vars(&self) -> Vec<Sym> {
        let mut occ = Vec::new();
        self.vars_into(&mut occ);
        occ
    }

    /// [`Term::vars`] into a caller-owned buffer (appended; the buffer is
    /// deduplicated against its existing contents, so a caller can fold
    /// several terms into one first-occurrence-ordered variable list).
    pub fn vars_into(&self, out: &mut Vec<Sym>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::App(_, args) => {
                for a in args {
                    a.vars_into(out);
                }
            }
        }
    }

    /// True iff every variable of the term is in `set` (allocation-free;
    /// the groundness/mode fixpoints call this once per argument per
    /// iteration).
    pub fn vars_subset_of(&self, set: &HashSet<Sym>) -> bool {
        match self {
            Term::Var(v) => set.contains(v),
            Term::App(_, args) => args.iter().all(|a| a.vars_subset_of(set)),
        }
    }

    /// Insert every variable of the term into `set` (allocation-free).
    pub fn add_vars_to(&self, set: &mut HashSet<Sym>) {
        match self {
            Term::Var(v) => {
                set.insert(*v);
            }
            Term::App(_, args) => {
                for a in args {
                    a.add_vars_to(set);
                }
            }
        }
    }

    /// True iff the variable occurs in the term.
    pub fn mentions(&self, name: Sym) -> bool {
        match self {
            Term::Var(v) => *v == name,
            Term::App(_, args) => args.iter().any(|a| a.mentions(name)),
        }
    }

    /// Structural term size of a ground term: the sum of the arities of its
    /// function symbols (paper §2.2). `None` if the term is not ground.
    pub fn ground_size(&self) -> Option<u64> {
        match self {
            Term::Var(_) => None,
            Term::App(_, args) => {
                let mut total = args.len() as u64;
                for a in args {
                    total += a.ground_size()?;
                }
                Some(total)
            }
        }
    }

    /// The size polynomial of a (possibly non-ground) term: a constant plus
    /// one nonnegative integer coefficient per variable (the number of
    /// occurrences). E.g. `f(v1, g(v2), v2)` has polynomial `4 + v1 + 2·v2`.
    pub fn size_polynomial(&self) -> SizePolynomial {
        let mut p = SizePolynomial::default();
        self.accumulate_size(&mut p);
        p
    }

    fn accumulate_size(&self, p: &mut SizePolynomial) {
        match self {
            Term::Var(v) => {
                *p.coeffs.entry(*v).or_insert(0) += 1;
            }
            Term::App(_, args) => {
                p.constant += args.len() as u64;
                for a in args {
                    a.accumulate_size(p);
                }
            }
        }
    }

    /// Rename every variable with the given suffix (used to rename clauses
    /// apart before unification).
    pub fn rename_suffix(&self, suffix: &str) -> Term {
        match self {
            Term::Var(v) => Term::var(format!("{v}{suffix}")),
            Term::App(f, args) => {
                Term::App(*f, args.iter().map(|a| a.rename_suffix(suffix)).collect())
            }
        }
    }

    /// Depth of the term tree (a variable or constant has depth 0).
    pub fn depth(&self) -> u64 {
        match self {
            Term::Var(_) => 0,
            Term::App(_, args) => match args.iter().map(Term::depth).max() {
                Some(d) => 1 + d,
                None => 0,
            },
        }
    }

    /// If the term is a proper list, its elements.
    pub fn as_proper_list(&self) -> Option<Vec<&Term>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Term::App(f, args) if *f == sym_nil() && args.is_empty() => return Some(out),
                Term::App(f, args) if *f == sym_cons() && args.len() == 2 => {
                    out.push(&args[0]);
                    cur = &args[1];
                }
                _ => return None,
            }
        }
    }
}

/// A linear polynomial `constant + Σ coeff(v)·v` with nonnegative integer
/// coefficients, representing the structural size of a term (paper §2.2).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SizePolynomial {
    /// Constant part (total arity of the term's function symbols).
    pub constant: u64,
    /// Occurrence count per variable.
    pub coeffs: BTreeMap<Sym, u64>,
}

impl fmt::Display for SizePolynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.constant)?;
        for (v, c) in &self.coeffs {
            if *c == 1 {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}*{v}")?;
            }
        }
        Ok(())
    }
}

/// Is the name a lowercase identifier that the lexer reads back as a plain
/// atom token? `is` is excluded: the lexer turns it into an operator.
fn plain_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_') && name != "is"
        }
        _ => false,
    }
}

/// Is an identifier a syntactically valid unquoted atom name (zero arity)?
fn plain_atom(name: &str) -> bool {
    if plain_identifier(name) || name == "[]" {
        return true;
    }
    // Integers render unquoted, but only in canonical form: "03" or "-0"
    // would reparse as a different atom ("3" / "0").
    name.parse::<i64>().map(|v| v.to_string() == name).unwrap_or(false)
}

/// Is an identifier a syntactically valid unquoted *functor* name (applied
/// to arguments)? Stricter than [`plain_atom`]: `[](a)` and `3(a)` do not
/// parse, so bracket and integer names must be quoted when they have args.
fn plain_functor(name: &str) -> bool {
    plain_identifier(name)
}

/// Write an atom/functor name, quoting and escaping (`'` → `''`) as needed.
fn write_name(f: &mut fmt::Formatter<'_>, name: &str, plain: bool) -> fmt::Result {
    if plain {
        write!(f, "{name}")
    } else {
        write!(f, "'")?;
        for c in name.chars() {
            if c == '\'' {
                write!(f, "''")?;
            } else {
                write!(f, "{c}")?;
            }
        }
        write!(f, "'")
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::App(name, args) if args.is_empty() => {
                let name = name.as_str();
                write_name(f, name, plain_atom(name))
            }
            Term::App(name, args) if *name == sym_cons() && args.len() == 2 => {
                // List sugar: [a, b | T] or [a, b].
                write!(f, "[{}", args[0])?;
                let mut tail = &args[1];
                loop {
                    match tail {
                        Term::App(n2, a2) if *n2 == sym_cons() && a2.len() == 2 => {
                            write!(f, ", {}", a2[0])?;
                            tail = &a2[1];
                        }
                        Term::App(n2, a2) if *n2 == sym_nil() && a2.is_empty() => {
                            return write!(f, "]");
                        }
                        other => return write!(f, " | {other}]"),
                    }
                }
            }
            Term::App(name, args) => {
                let name = name.as_str();
                write_name(f, name, plain_functor(name))?;
                write!(f, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_size_matches_paper_example() {
        // a • b • c • [] has structural term size 6 (paper §2.2).
        let t = Term::list([Term::atom("a"), Term::atom("b"), Term::atom("c")]);
        assert_eq!(t.ground_size(), Some(6));
    }

    #[test]
    fn ground_size_of_constant_is_zero() {
        assert_eq!(Term::atom("a").ground_size(), Some(0));
        assert_eq!(Term::nil().ground_size(), Some(0));
    }

    #[test]
    fn size_polynomial_matches_paper_example() {
        // f(u, v, a): size 3 + u + v (paper §2.2).
        let t = Term::app("f", vec![Term::var("u"), Term::var("v"), Term::atom("a")]);
        let p = t.size_polynomial();
        assert_eq!(p.constant, 3);
        assert_eq!(p.coeffs.get(&Sym::new("u")).copied(), Some(1));
        assert_eq!(p.coeffs.get(&Sym::new("v")).copied(), Some(1));
    }

    #[test]
    fn size_polynomial_counts_repeated_vars() {
        // f(v1, g(v2), v2): size 4 + v1 + 2 v2 (paper §2.2 example for x(1)).
        let t = Term::app(
            "f",
            vec![Term::var("v1"), Term::app("g", vec![Term::var("v2")]), Term::var("v2")],
        );
        let p = t.size_polynomial();
        assert_eq!(p.constant, 4);
        assert_eq!(p.coeffs.get(&Sym::new("v1")).copied(), Some(1));
        assert_eq!(p.coeffs.get(&Sym::new("v2")).copied(), Some(2));
    }

    #[test]
    fn nonground_has_no_ground_size() {
        assert_eq!(Term::var("X").ground_size(), None);
        assert_eq!(Term::cons(Term::var("H"), Term::nil()).ground_size(), None);
    }

    #[test]
    fn vars_dedup_preserves_order() {
        let t = Term::app("f", vec![Term::var("B"), Term::var("A"), Term::var("B")]);
        let vs = t.vars();
        assert_eq!(vs.len(), 2);
        assert_eq!(&*vs[0], "B");
        assert_eq!(&*vs[1], "A");
    }

    #[test]
    fn display_list_sugar() {
        let t = Term::list([Term::atom("a"), Term::atom("b")]);
        assert_eq!(t.to_string(), "[a, b]");
        let open = Term::cons(Term::var("H"), Term::var("T"));
        assert_eq!(open.to_string(), "[H | T]");
        assert_eq!(Term::nil().to_string(), "[]");
    }

    #[test]
    fn display_compound_and_quoting() {
        let t = Term::app("foo", vec![Term::var("X"), Term::atom("Bar is odd")]);
        assert_eq!(t.to_string(), "foo(X, 'Bar is odd')");
        assert_eq!(Term::int(-3).to_string(), "-3");
    }

    #[test]
    fn display_escapes_embedded_quotes() {
        assert_eq!(Term::atom("it's").to_string(), "'it''s'");
        assert_eq!(Term::app("don't", vec![Term::atom("a")]).to_string(), "'don''t'(a)");
    }

    #[test]
    fn display_quotes_operator_atoms() {
        // `is` lexes as an operator, so the atom must be quoted to reparse.
        assert_eq!(Term::atom("is").to_string(), "'is'");
        assert_eq!(Term::app("is", vec![Term::atom("a")]).to_string(), "'is'(a)");
    }

    #[test]
    fn display_quotes_noncanonical_integers() {
        // "03" parses back as the integer 3, a different atom.
        assert_eq!(Term::atom("03").to_string(), "'03'");
        assert_eq!(Term::atom("-0").to_string(), "'-0'");
        assert_eq!(Term::atom("0").to_string(), "0");
    }

    #[test]
    fn display_quotes_exotic_functors() {
        // `[](a)` and `3(a)` do not parse; the functor must be quoted.
        assert_eq!(Term::app("[]", vec![Term::atom("a")]).to_string(), "'[]'(a)");
        assert_eq!(Term::app("3", vec![Term::atom("a")]).to_string(), "'3'(a)");
        assert_eq!(Term::nil().to_string(), "[]");
        assert_eq!(Term::int(3).to_string(), "3");
    }

    #[test]
    fn as_proper_list() {
        let t = Term::list([Term::int(1), Term::int(2)]);
        assert_eq!(t.as_proper_list().map(|v| v.len()), Some(2));
        let open = Term::cons(Term::int(1), Term::var("T"));
        assert!(open.as_proper_list().is_none());
    }

    #[test]
    fn depth() {
        assert_eq!(Term::atom("a").depth(), 0);
        assert_eq!(Term::var("X").depth(), 0);
        assert_eq!(Term::list([Term::atom("a"), Term::atom("b")]).depth(), 2);
    }

    #[test]
    fn rename_suffix() {
        let t = Term::app("f", vec![Term::var("X"), Term::atom("c")]);
        let r = t.rename_suffix("_1");
        assert_eq!(r.to_string(), "f(X_1, c)");
    }

    #[test]
    fn mentions() {
        let t = Term::app("f", vec![Term::var("X")]);
        assert!(t.mentions(Sym::new("X")));
        assert!(!t.mentions(Sym::new("Y")));
    }
}
