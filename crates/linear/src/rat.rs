//! Exact rational numbers built on [`BigInt`].
//!
//! Every value is kept in canonical form: the denominator is strictly
//! positive and `gcd(|numerator|, denominator) = 1`, so structural equality
//! and hashing coincide with numeric equality.

use crate::bigint::{BigInt, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// # Examples
///
/// ```
/// use argus_linear::Rat;
/// let half = Rat::new(1.into(), 2.into());
/// let third = Rat::new(1.into(), 3.into());
/// assert_eq!((&half + &third).to_string(), "5/6");
/// assert!(half > third);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: BigInt,
    /// Strictly positive, coprime with `num`.
    den: BigInt,
}

impl Rat {
    /// Construct `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Rat {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.gcd(&den);
        let mut num = &num / &g;
        let mut den = &den / &g;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// The rational 0.
    pub fn zero() -> Rat {
        Rat { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The rational 1.
    pub fn one() -> Rat {
        Rat { num: BigInt::one(), den: BigInt::one() }
    }

    /// Construct from an integer.
    pub fn from_int(v: impl Into<BigInt>) -> Rat {
        Rat { num: v.into(), den: BigInt::one() }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff this is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// Approximate as `f64` (for reporting only; analysis never uses floats).
    pub fn to_f64(&self) -> f64 {
        // Scale to keep both parts in f64 range for the common small case;
        // fall back to string parsing for huge values.
        match (self.num.to_i128(), self.den.to_i128()) {
            (Some(n), Some(d)) => n as f64 / d as f64,
            _ => {
                let n: f64 = self.num.to_string().parse().unwrap_or(f64::NAN);
                let d: f64 = self.den.to_string().parse().unwrap_or(f64::NAN);
                n / d
            }
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.divmod(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.divmod(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from_int(v)
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat::from_int(v)
    }
}

impl From<BigInt> for Rat {
    fn from(v: BigInt) -> Rat {
        Rat { num: v, den: BigInt::one() }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -&self.num, den: self.den.clone() }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(mut self) -> Rat {
        self.num = -self.num;
        self
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, other: &Rat) -> Rat {
        Rat::new(&(&self.num * &other.den) + &(&other.num * &self.den), &self.den * &other.den)
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, other: &Rat) -> Rat {
        Rat::new(&(&self.num * &other.den) - &(&other.num * &self.den), &self.den * &other.den)
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, other: &Rat) -> Rat {
        Rat::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "division by zero rational");
        Rat::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, other: &Rat) -> Rat {
                (&self).$method(other)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                self.$method(&other)
            }
        }
    };
}

forward_rat_binop!(Add, add);
forward_rat_binop!(Sub, sub);
forward_rat_binop!(Mul, mul);
forward_rat_binop!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, other: &Rat) {
        *self = &*self + other;
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, other: &Rat) {
        *self = &*self - other;
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, other: &Rat) {
        *self = &*self * other;
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error parsing a [`Rat`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.message)
    }
}

impl std::error::Error for ParseRatError {}

impl FromStr for Rat {
    type Err = ParseRatError;

    /// Parses `"a"` or `"a/b"` with optional leading sign on `a`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let n: BigInt = s.parse().map_err(|e| ParseRatError { message: format!("{e}") })?;
                Ok(Rat::from(n))
            }
            Some((ns, ds)) => {
                let n: BigInt =
                    ns.parse().map_err(|e| ParseRatError { message: format!("{e}") })?;
                let d: BigInt =
                    ds.parse().map_err(|e| ParseRatError { message: format!("{e}") })?;
                if d.is_zero() {
                    return Err(ParseRatError { message: "zero denominator".into() });
                }
                Ok(Rat::new(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rat::zero());
        assert!(r(1, -2).denom().is_positive());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1.into(), 0.into());
    }

    #[test]
    fn field_ops() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(r(3, 7).recip(), r(7, 3));
        assert_eq!(-r(3, 7), r(-3, 7));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < Rat::zero());
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), 3.into());
        assert_eq!(r(7, 2).ceil(), 4.into());
        assert_eq!(r(-7, 2).floor(), (-4).into());
        assert_eq!(r(-7, 2).ceil(), (-3).into());
        assert_eq!(r(4, 2).floor(), 2.into());
        assert_eq!(r(4, 2).ceil(), 2.into());
    }

    #[test]
    fn parse_display() {
        assert_eq!("1/2".parse::<Rat>().unwrap(), r(1, 2));
        assert_eq!("-3/6".parse::<Rat>().unwrap(), r(-1, 2));
        assert_eq!("5".parse::<Rat>().unwrap(), r(5, 1));
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(4, 2).to_string(), "2");
        assert!("1/0".parse::<Rat>().is_err());
        assert!("x/2".parse::<Rat>().is_err());
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 2).min(r(1, 3)), r(1, 3));
        assert_eq!(r(1, 2).max(r(1, 3)), r(1, 2));
    }
}
