#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, tests.
#
# Usage: ./ci.sh [--offline]
#
# --offline skips dependency resolution against the network (useful in
# sandboxed environments with a primed cargo cache).
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
    CARGO_FLAGS+=(--offline)
fi

echo "==> fast lane: argus-linear unit tests"
# The exact-arithmetic substrate underpins every soundness claim; run its
# (cheap, seconds-long) suite first so number bugs fail the gate before
# the full build/test cycle spends minutes.
cargo test -q -p argus-linear "${CARGO_FLAGS[@]}"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace "${CARGO_FLAGS[@]}"

echo "==> cargo test"
cargo test --workspace --release -q "${CARGO_FLAGS[@]}"

echo "==> fuzz smoke"
# Differential/metamorphic soundness harness over a fixed seed set, at two
# parallelism settings; the reports must match byte for byte. Any
# violation exits nonzero (and writes a reproducer under
# tests/golden/fuzz-repros/ for the regression suite to replay).
for seed in 1 42; do
    ./target/release/argus fuzz --seed "$seed" --cases 500 --jobs 0 --json \
        > "/tmp/argus-fuzz-$seed-j0.json"
    ./target/release/argus fuzz --seed "$seed" --cases 500 --jobs 1 --json \
        > "/tmp/argus-fuzz-$seed-j1.json"
    cmp "/tmp/argus-fuzz-$seed-j0.json" "/tmp/argus-fuzz-$seed-j1.json"
done

echo "==> infer smoke"
# Backwards condition inference over the whole corpus with certificate
# re-checking: every disjunct of every inferred condition must reproduce
# Terminates under a fresh forward analysis and pass the certificate
# verifier. Then the fuzz harness with the infer-soundness oracle armed:
# inferred conditions on generated programs are confirmed against both the
# forward analyzer and the SLD interpreter.
./target/release/argus infer --corpus --certify > /dev/null
./target/release/argus fuzz --infer --seed 7 --cases 200 --jobs 0

echo "==> portfolio smoke"
# The engine portfolio: sweep the corpus through the SCT engine and the
# full five-engine race (exit 0 = proved, 2 = unknown — both fine here;
# anything else is a crash), pinning the corpus-wide win counts so an
# engine that silently stops proving its separators fails the gate. Then
# the cross-engine fuzz oracle: every engine's claimed proof on 200
# generated programs must survive the SLD interpreter and θ's
# zero-weight-cycle evidence.
SCT_WINS=0; THETA_WINS=0
while read -r name query mode; do
    ./target/release/argus corpus "$name" > /tmp/argus-portfolio-prog.pl
    ./target/release/argus analyze /tmp/argus-portfolio-prog.pl "$query" "$mode" \
        --engine sct > /dev/null || [[ $? -eq 2 ]]
    out=$(./target/release/argus analyze /tmp/argus-portfolio-prog.pl "$query" "$mode" \
        --engine portfolio --json --jobs 0) || [[ $? -eq 2 ]]
    case "$out" in
        *'"winner":"sct"'*) SCT_WINS=$((SCT_WINS + 1)) ;;
        *'"winner":"theta"'*) THETA_WINS=$((THETA_WINS + 1)) ;;
    esac
done < <(./target/release/argus corpus | tail -n +2 | awk '{print $1, $2, $3}')
[[ "$SCT_WINS" -ge 4 ]] || { echo "portfolio: expected >=4 sct wins, got $SCT_WINS"; exit 1; }
[[ "$THETA_WINS" -ge 28 ]] || { echo "portfolio: expected >=28 theta wins, got $THETA_WINS"; exit 1; }
./target/release/argus fuzz --portfolio --seed 5 --cases 200 --jobs 0

echo "==> serve smoke"
# Boot the analysis server on an ephemeral port and drive it over real
# sockets: loadgen primes the caches through /v1/infer then replays the
# corpus on 64 keep-alive connections and byte-compares every response
# against the CLI report, the fuzz serve oracle round-trips 200 generated
# programs, and a SIGTERM must drain cleanly (exit 0, "drained cleanly"
# on stdout). The generous deadline keeps the whole-corpus /v1/infer
# requests (FM-heavy entries run seconds each) off the 504 path on slow
# runners.
SERVE_LOG=/tmp/argus-serve-ci.log
./target/release/argus serve --addr 127.0.0.1:0 --jobs 0 --deadline-ms 120000 \
    > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do
    SERVE_ADDR=$(sed -n 's/.*listening on //p' "$SERVE_LOG" | head -n 1)
    [[ -n "$SERVE_ADDR" ]] && break
    sleep 0.1
done
[[ -n "$SERVE_ADDR" ]] || { echo "serve never printed its address"; cat "$SERVE_LOG"; exit 1; }
./target/release/loadgen --addr "$SERVE_ADDR" --wait-healthz 10 \
    --connections 64 --requests 10 --prime-infer
# Edit-stream lane: one-clause edits (delete, restore, next clause)
# replayed sequentially — the `argus watch` request pattern. Every edited
# variant misses the whole-report cache, so this drives the server's
# per-SCC incremental path and prints warm re-analysis p50/p99.
./target/release/loadgen --addr "$SERVE_ADDR" --edit-stream
./target/release/argus fuzz --serve "$SERVE_ADDR" --seed 1 --cases 200 --jobs 0
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "drained cleanly" "$SERVE_LOG" || { echo "serve did not drain"; cat "$SERVE_LOG"; exit 1; }

echo "==> bench smoke"
# CI-sized pass over every bench suite: catches workloads that rot (panic,
# hang, or stop compiling) without paying for full-scale numbers. The
# fm_redundancy suite is written to a scratch report so the regression
# gate below can read its counters; the committed BENCH_argus.json is
# untouched either way.
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin bench_report -- --smoke --suite fm_redundancy \
    --out /tmp/argus-fm-smoke.json
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin bench_report -- --smoke --out - > /dev/null

echo "==> bench regression gate (FM row-reduction floors)"
# Deterministic counters from the fm_redundancy suite must stay above the
# pinned floors (≥5× peak-row reduction on the FM-heavy corpus entry,
# subsumption/Chernikov/cache machinery actually firing). Wall time is
# not gated — only work done.
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin fm_gate -- /tmp/argus-fm-smoke.json

echo "==> incremental smoke + gate (dirty-cone floors)"
# Incremental re-analysis lane: prime a per-SCC memo on a generated
# 2k-clause program, apply a one-clause edit, re-analyze. incr_gate pins
# the structural floors — the warm edit must recompute < 10% of the SCC
# computations and a no-op resubmission exactly 0 — plus the ≥10× 50k
# warm-vs-cold speedup whenever a full-scale report is given. The fuzz
# incremental oracle then asserts byte-identity of memoized re-analysis
# against from-scratch runs across 150 generated programs, one clause
# mutation at a time.
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin bench_report -- --smoke --suite incremental \
    --out /tmp/argus-incr-smoke.json
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin incr_gate -- /tmp/argus-incr-smoke.json
./target/release/argus fuzz --incremental --seed 3 --cases 150 --jobs 0 \
    --no-metamorphic --no-theta-search

echo "==> lsp smoke + gate (editor-session floors)"
# LSP lane: a scripted stdio session against the real `argus lsp` binary
# (initialize → didOpen a corpus program → three one-clause incremental
# edits → shutdown/exit, which must exit 0), then the in-process
# edit-session bench and lsp_gate's structural floors — the worst warm
# edit of the session must recompute < 10% of the document's SCC
# computations and an edit that leaves the text unchanged exactly 0.
./target/release/lsp_session ./target/release/argus
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin bench_report -- --smoke --suite lsp \
    --out /tmp/argus-lsp-smoke.json
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin lsp_gate -- /tmp/argus-lsp-smoke.json

echo "==> scaling smoke (50k-clause substrate gate)"
# Million-clause substrate lane: generate and analyze a 50k-clause program
# end to end (full scale suite restricted to the 50k size; the smoke tier
# only exercises 2k and proves nothing about scale). scale_gate then pins
# floors on the deterministic workload counters — so the generator can't
# silently shrink — and a wall-clock ceiling (480 s, ~4× the reference
# 111 s) that fails if the interning/arena/small-row wins regress to
# pre-substrate speed (514 s on the same runner).
ARGUS_SCALE_ONLY=50k cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin bench_report -- --suite scale \
    --out /tmp/argus-scale-smoke.json
cargo run --release -q -p argus-bench "${CARGO_FLAGS[@]}" \
    --bin scale_gate -- /tmp/argus-scale-smoke.json

echo "==> OK"
