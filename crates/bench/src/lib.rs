//! # argus-bench — experiment harness
//!
//! The binaries (`src/bin/exp_*.rs`) regenerate every experiment recorded
//! in `EXPERIMENTS.md`; the Criterion benches (`benches/`) measure analysis
//! cost (experiment E7). This library holds shared harness utilities:
//! workload generation and report formatting.

#![warn(missing_docs)]

pub mod harness;
pub mod workload;

pub use harness::{markdown_table, ExperimentLog};
