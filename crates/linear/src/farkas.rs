//! Farkas refutation certificates.
//!
//! By Farkas' lemma, a system of linear constraints is unsatisfiable over
//! ℚ exactly when some nonnegative combination of its inequalities (plus an
//! arbitrary-sign combination of its equalities) reduces to an absurd
//! constant row `c ≤ 0` with `c > 0`. Fourier–Motzkin elimination produces
//! such a combination naturally: every derived row is a combination of
//! input rows, so tracking provenance through the elimination yields the
//! multipliers the moment a contradictory row appears.
//!
//! This gives the analyzer *refutation* certificates to match its
//! termination certificates ([`crate::simplex`] decides, this module
//! explains): a claimed-infeasible θ system can be re-checked by summing
//! the input rows with the returned multipliers and observing the absurd
//! constant — no trust in the solver required.

use crate::expr::{Constraint, ConstraintSystem, LinExpr, Rel, Var};
use crate::rat::Rat;
use std::collections::BTreeMap;

/// A Farkas certificate: multipliers over the input rows whose combination
/// is a contradictory constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarkasCertificate {
    /// `(row index, multiplier)` pairs. Multipliers on `≤` rows are
    /// nonnegative; multipliers on `=` rows may have either sign.
    pub multipliers: Vec<(usize, Rat)>,
}

impl FarkasCertificate {
    /// Re-derive the combined row and check it is an absurd constant:
    /// `Σ λᵢ·exprᵢ` must have no variable terms and a strictly positive
    /// constant (i.e. the combination asserts `positive ≤ 0`), with
    /// `λᵢ ≥ 0` wherever row `i` is an inequality.
    pub fn verify(&self, sys: &ConstraintSystem) -> bool {
        let rows = sys.constraints();
        let mut combined = LinExpr::zero();
        for (idx, lambda) in &self.multipliers {
            let Some(row) = rows.get(*idx) else { return false };
            if row.rel == Rel::Le && lambda.is_negative() {
                return false;
            }
            combined = combined.add_scaled(&row.expr, lambda);
        }
        combined.is_constant() && combined.constant_term().is_positive()
    }
}

/// A row paired with its provenance over the original system.
#[derive(Debug, Clone)]
struct TrackedRow {
    constraint: Constraint,
    /// Combination of original rows this row equals.
    provenance: BTreeMap<usize, Rat>,
}

impl TrackedRow {
    fn scaled(&self, k: &Rat) -> TrackedRow {
        let mut expr = self.constraint.expr.clone();
        expr.scale(k);
        let provenance = self.provenance.iter().map(|(i, c)| (*i, c * k)).collect();
        TrackedRow { constraint: Constraint { expr, rel: self.constraint.rel }, provenance }
    }

    fn plus(&self, other: &TrackedRow, rel: Rel) -> TrackedRow {
        let expr = &self.constraint.expr + &other.constraint.expr;
        let mut provenance = self.provenance.clone();
        for (i, c) in &other.provenance {
            let entry = provenance.entry(*i).or_insert_with(Rat::zero);
            *entry += c;
            if entry.is_zero() {
                provenance.remove(i);
            }
        }
        TrackedRow { constraint: Constraint { expr, rel }, provenance }
    }
}

/// Search for a Farkas refutation of `sys` by provenance-tracking
/// Fourier–Motzkin elimination over all variables, within `max_rows`
/// intermediate rows.
///
/// Returns `Some(certificate)` iff the system is detected unsatisfiable
/// within the budget; `None` means satisfiable OR budget exceeded (use
/// [`crate::simplex`] to decide, then this to explain).
pub fn refute(sys: &ConstraintSystem, max_rows: usize) -> Option<FarkasCertificate> {
    let mut rows: Vec<TrackedRow> = sys
        .constraints()
        .iter()
        .enumerate()
        .map(|(i, c)| TrackedRow {
            constraint: c.clone(),
            provenance: [(i, Rat::one())].into_iter().collect(),
        })
        .collect();

    // Immediate constant contradictions.
    if let Some(cert) = find_contradiction(&rows) {
        return Some(cert);
    }

    loop {
        // Pick a variable still present (smallest pos*neg footprint).
        let vars: Vec<Var> = {
            let mut out = std::collections::BTreeSet::new();
            for r in &rows {
                out.extend(r.constraint.expr.vars());
            }
            out.into_iter().collect()
        };
        if vars.is_empty() {
            return None; // nothing left; no contradiction surfaced
        }
        let v = *vars.iter().min_by_key(|&&v| occurrence_cost(&rows, v)).expect("nonempty");

        rows = eliminate_tracked(rows, v)?;
        if rows.len() > max_rows {
            return None;
        }
        if let Some(cert) = find_contradiction(&rows) {
            return Some(cert);
        }
        // Drop constant-true rows.
        rows.retain(|r| !r.constraint.expr.is_constant());
    }
}

fn occurrence_cost(rows: &[TrackedRow], v: Var) -> usize {
    let mut pos = 0usize;
    let mut neg = 0usize;
    let mut has_eq = false;
    for r in rows {
        let Some(a) = r.constraint.expr.coeff_ref(v) else {
            continue;
        };
        if r.constraint.rel == Rel::Eq {
            has_eq = true;
        } else if a.is_positive() {
            pos += 1;
        } else {
            neg += 1;
        }
    }
    if has_eq {
        0
    } else {
        pos * neg + 1
    }
}

/// One tracked elimination round; `None` on internal overflow (never in
/// practice — combination counts are bounded by the caller's `max_rows`).
fn eliminate_tracked(rows: Vec<TrackedRow>, v: Var) -> Option<Vec<TrackedRow>> {
    // Gaussian step on an equality mentioning v.
    if let Some(pos) = rows
        .iter()
        .position(|r| r.constraint.rel == Rel::Eq && r.constraint.expr.coeff_ref(v).is_some())
    {
        let pivot = rows[pos].clone();
        let a = pivot.constraint.expr.coeff(v);
        let mut out = Vec::with_capacity(rows.len() - 1);
        for (i, r) in rows.into_iter().enumerate() {
            if i == pos {
                continue;
            }
            let Some(b) = r.constraint.expr.coeff_ref(v).cloned() else {
                out.push(r);
                continue;
            };
            // r - (b/a)·pivot eliminates v; the pivot is an equality, so
            // any sign of multiplier is legal.
            let k = -(&b / &a);
            let combined = r.plus(&pivot.scaled(&k), r.constraint.rel);
            out.push(combined);
        }
        return Some(out);
    }

    // Inequality combination.
    let mut uppers: Vec<TrackedRow> = Vec::new(); // coeff(v) > 0
    let mut lowers: Vec<TrackedRow> = Vec::new(); // coeff(v) < 0
    let mut kept: Vec<TrackedRow> = Vec::new();
    for r in rows {
        let Some(a) = r.constraint.expr.coeff_ref(v) else {
            kept.push(r);
            continue;
        };
        if a.is_positive() {
            uppers.push(r);
        } else {
            lowers.push(r);
        }
    }
    let mut out = kept;
    for lo in &lowers {
        let la = lo.constraint.expr.coeff(v); // < 0
        for up in &uppers {
            let ua = up.constraint.expr.coeff(v); // > 0
                                                  // (1/ua)·up + (1/(-la))·lo has zero coefficient on v; both
                                                  // multipliers positive, so Le-ness is preserved.
            let combined = up.scaled(&ua.recip()).plus(&lo.scaled(&(-la.clone()).recip()), Rel::Le);
            out.push(combined);
        }
    }
    Some(out)
}

fn find_contradiction(rows: &[TrackedRow]) -> Option<FarkasCertificate> {
    for r in rows {
        if r.constraint.expr.is_constant() {
            let c = r.constraint.expr.constant_term();
            let absurd = match r.constraint.rel {
                Rel::Le => c.is_positive(),
                Rel::Eq => !c.is_zero(),
            };
            if absurd {
                // Normalize an Eq contradiction to Le orientation: if the
                // constant is negative, flip the combination's sign (legal:
                // it only involves equalities... or does it? An Eq-rel
                // tracked row can only arise from Eq inputs, whose
                // multipliers are unrestricted).
                let mut multipliers: Vec<(usize, Rat)> =
                    r.provenance.iter().map(|(i, c)| (*i, c.clone())).collect();
                if r.constraint.rel == Rel::Eq && c.is_negative() {
                    for (_, m) in multipliers.iter_mut() {
                        *m = -&*m;
                    }
                }
                return Some(FarkasCertificate { multipliers });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(e: LinExpr) -> Constraint {
        Constraint { expr: e, rel: Rel::Le }
    }

    fn r(n: i64) -> Rat {
        Rat::from_int(n)
    }

    #[test]
    fn simple_interval_contradiction() {
        // x >= 2  (2 - x <= 0)  and  x <= 1  (x - 1 <= 0).
        let mut sys = ConstraintSystem::new();
        let mut a = LinExpr::constant(r(2));
        a.add_term(0, -Rat::one());
        sys.push(le(a));
        let mut b = LinExpr::var(0);
        b.add_constant(&r(-1));
        sys.push(le(b));
        let cert = refute(&sys, 1000).expect("infeasible");
        assert!(cert.verify(&sys), "{cert:?}");
        // The combination is row0 + row1 = 1 <= 0 … wait, 2 - x + x - 1 = 1.
        assert_eq!(cert.multipliers.len(), 2);
    }

    #[test]
    fn equality_contradiction() {
        // x + y = 1  and  x + y = 2.
        let mut sys = ConstraintSystem::new();
        let mut a = LinExpr::var(0);
        a.add_term(1, Rat::one());
        a.add_constant(&r(-1));
        sys.push(Constraint { expr: a, rel: Rel::Eq });
        let mut b = LinExpr::var(0);
        b.add_term(1, Rat::one());
        b.add_constant(&r(-2));
        sys.push(Constraint { expr: b, rel: Rel::Eq });
        let cert = refute(&sys, 1000).expect("infeasible");
        assert!(cert.verify(&sys), "{cert:?}");
    }

    #[test]
    fn satisfiable_system_has_no_refutation() {
        let mut sys = ConstraintSystem::new();
        let mut a = LinExpr::var(0);
        a.add_constant(&r(-5));
        sys.push(le(a)); // x <= 5
        sys.push(Constraint::nonneg(0));
        assert!(refute(&sys, 1000).is_none());
    }

    #[test]
    fn three_way_cycle_contradiction() {
        // x < y, y < z, z < x  encoded non-strictly with gaps:
        // y - x >= 1, z - y >= 1, x - z >= 1.
        let mut sys = ConstraintSystem::new();
        for (p, q) in [(0, 1), (1, 2), (2, 0)] {
            let mut e = LinExpr::constant(r(1));
            e.add_term(p, Rat::one());
            e.add_term(q, -Rat::one());
            sys.push(le(e)); // 1 + p - q <= 0
        }
        let cert = refute(&sys, 1000).expect("infeasible");
        assert!(cert.verify(&sys));
        assert_eq!(cert.multipliers.len(), 3, "sums all three rows");
    }

    #[test]
    fn tampered_certificate_fails_verification() {
        let mut sys = ConstraintSystem::new();
        let mut a = LinExpr::constant(r(2));
        a.add_term(0, -Rat::one());
        sys.push(le(a));
        let mut b = LinExpr::var(0);
        b.add_constant(&r(-1));
        sys.push(le(b));
        let mut cert = refute(&sys, 1000).unwrap();
        // Negate a multiplier on a Le row: must be rejected.
        cert.multipliers[0].1 = -cert.multipliers[0].1.clone();
        assert!(!cert.verify(&sys));
        // Out-of-range index: rejected.
        let bad = FarkasCertificate { multipliers: vec![(99, Rat::one())] };
        assert!(!bad.verify(&sys));
        // Empty combination: not a contradiction.
        let empty = FarkasCertificate { multipliers: vec![] };
        assert!(!empty.verify(&sys));
    }

    #[test]
    fn agrees_with_simplex_on_random_systems() {
        let mut rng = argus_prng::Rng64::new(99);
        let mut refuted = 0;
        for _ in 0..60 {
            let mut sys = ConstraintSystem::new();
            for _ in 0..5 {
                let mut e = LinExpr::constant(r(rng.range_i64(-4, 4)));
                for v in 0..3 {
                    e.add_term(v, r(rng.range_i64(-3, 3)));
                }
                if rng.below(10) < 3 {
                    sys.push(Constraint { expr: e, rel: Rel::Eq });
                } else {
                    sys.push(le(e));
                }
            }
            let sat =
                crate::simplex::feasible_point(&sys, &std::collections::BTreeSet::new()).is_some();
            match refute(&sys, 20_000) {
                Some(cert) => {
                    assert!(!sat, "refuted a satisfiable system:\n{sys}");
                    assert!(cert.verify(&sys), "bad certificate for:\n{sys}");
                    refuted += 1;
                }
                None => {
                    assert!(sat, "failed to refute an infeasible system:\n{sys}");
                }
            }
        }
        assert!(refuted > 3, "sample should contain infeasible systems");
    }
}
