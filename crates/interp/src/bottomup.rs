//! Bottom-up (forward-chaining) evaluation with semi-naive iteration.
//!
//! The paper's motivation (§1) is Ullman's *capture rules*: "typically, one
//! [of top-down and bottom-up] converges naturally and the other does not on
//! a given set of interdependent rules", and a top-down capture rule
//! requires a termination proof. This module supplies the bottom-up side of
//! that story: naive/semi-naive saturation of the IDB over ground facts,
//! metered by a fact budget so divergence (e.g. on function symbols that
//! build ever-larger terms) is detected rather than looped on.

use argus_logic::program::{Atom, Program};
use argus_logic::term::Term;
use argus_logic::unify::{unify, unify_atoms, Subst};
use std::collections::BTreeSet;

/// Budget for saturation.
#[derive(Debug, Clone)]
pub struct BottomUpOptions {
    /// Maximum number of derived facts before giving up.
    pub max_facts: usize,
    /// Maximum number of semi-naive iterations.
    pub max_iterations: usize,
}

impl Default for BottomUpOptions {
    fn default() -> BottomUpOptions {
        BottomUpOptions { max_facts: 50_000, max_iterations: 10_000 }
    }
}

/// Result of bottom-up evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Saturation {
    /// A fixpoint was reached: the returned set is the least model
    /// (restricted to derivable ground facts).
    Fixpoint {
        /// All derived ground facts.
        facts: BTreeSet<Atom>,
        /// Iterations used.
        iterations: usize,
    },
    /// The fact or iteration budget ran out — bottom-up evaluation diverges
    /// (or is simply too large).
    Diverged {
        /// Facts derived before cutoff.
        fact_count: usize,
    },
}

impl Saturation {
    /// True iff a fixpoint was reached.
    pub fn converged(&self) -> bool {
        matches!(self, Saturation::Fixpoint { .. })
    }
}

/// Evaluate `program` bottom-up by semi-naive iteration, seeding with the
/// program's ground facts (rules with empty bodies and ground heads).
/// Negative literals are evaluated against the *current* fact set
/// (stratification is the caller's responsibility; the corpus programs used
/// with this evaluator are positive).
pub fn saturate(program: &Program, options: &BottomUpOptions) -> Saturation {
    let mut all: BTreeSet<Atom> = BTreeSet::new();
    let mut delta: BTreeSet<Atom> = BTreeSet::new();

    // Seed: ground facts.
    for rule in &program.rules {
        if rule.body.is_empty()
            && rule.head.args.iter().all(Term::is_ground)
            && all.insert(rule.head.clone())
        {
            delta.insert(rule.head.clone());
        }
    }

    for iteration in 0..options.max_iterations {
        if all.len() > options.max_facts {
            return Saturation::Diverged { fact_count: all.len() };
        }
        let mut new_delta: BTreeSet<Atom> = BTreeSet::new();
        for rule in &program.rules {
            if rule.body.is_empty() {
                continue;
            }
            // Semi-naive: require at least one body literal matched in the
            // delta. We enumerate which literal is the "delta position".
            for delta_pos in 0..rule.body.len() {
                if !rule.body[delta_pos].positive {
                    continue;
                }
                join_rule(rule, delta_pos, &all, &delta, &mut new_delta, options.max_facts);
                if all.len() + new_delta.len() > options.max_facts {
                    return Saturation::Diverged { fact_count: all.len() + new_delta.len() };
                }
            }
        }
        new_delta.retain(|f| !all.contains(f));
        if new_delta.is_empty() {
            return Saturation::Fixpoint { facts: all, iterations: iteration + 1 };
        }
        for f in &new_delta {
            all.insert(f.clone());
        }
        delta = new_delta;
    }
    Saturation::Diverged { fact_count: all.len() }
}

/// Join the body of `rule` against the fact sets, with literal `delta_pos`
/// restricted to `delta`, emitting ground heads into `out`.
fn join_rule(
    rule: &argus_logic::Rule,
    delta_pos: usize,
    all: &BTreeSet<Atom>,
    delta: &BTreeSet<Atom>,
    out: &mut BTreeSet<Atom>,
    max_facts: usize,
) {
    // Rename the rule apart from fact constants (facts are ground, so only
    // rule vars matter; no renaming needed).
    #[allow(clippy::too_many_arguments)] // recursive helper over one join's context
    fn descend(
        rule: &argus_logic::Rule,
        delta_pos: usize,
        idx: usize,
        s: &Subst,
        all: &BTreeSet<Atom>,
        delta: &BTreeSet<Atom>,
        out: &mut BTreeSet<Atom>,
        max_facts: usize,
    ) {
        if out.len() > max_facts {
            return;
        }
        if idx == rule.body.len() {
            let head = s.resolve_atom(&rule.head);
            if head.args.iter().all(Term::is_ground) {
                out.insert(head);
            }
            return;
        }
        let lit = &rule.body[idx];
        let key = lit.atom.key();
        if !lit.positive {
            // Negation against the current total set (requires ground).
            let resolved = s.resolve_atom(&lit.atom);
            if resolved.args.iter().all(Term::is_ground) && !all.contains(&resolved) {
                descend(rule, delta_pos, idx + 1, s, all, delta, out, max_facts);
            }
            return;
        }
        // Builtin comparisons on ground integer terms.
        if key.arity == 2
            && matches!(&*key.name, "=" | "<" | ">" | "=<" | ">=" | "==" | "\\==" | "\\=")
        {
            let a = s.resolve(&lit.atom.args[0]);
            let b = s.resolve(&lit.atom.args[1]);
            let pass = match &*key.name {
                "=" => {
                    let mut s2 = s.clone();
                    if unify(&mut s2, &a, &b, false) {
                        descend(rule, delta_pos, idx + 1, &s2, all, delta, out, max_facts);
                    }
                    return;
                }
                "==" => a == b,
                "\\==" | "\\=" => a != b,
                op => match (as_int(&a), as_int(&b)) {
                    (Some(x), Some(y)) => match op {
                        "<" => x < y,
                        ">" => x > y,
                        "=<" => x <= y,
                        _ => x >= y,
                    },
                    _ => false,
                },
            };
            if pass {
                descend(rule, delta_pos, idx + 1, s, all, delta, out, max_facts);
            }
            return;
        }
        let source: &BTreeSet<Atom> = if idx == delta_pos { delta } else { all };
        for fact in source {
            if fact.name != lit.atom.name || fact.args.len() != lit.atom.args.len() {
                continue;
            }
            let mut s2 = s.clone();
            if unify_atoms(&mut s2, &lit.atom, fact, false) {
                descend(rule, delta_pos, idx + 1, &s2, all, delta, out, max_facts);
            }
        }
    }
    descend(rule, delta_pos, 0, &Subst::new(), all, delta, out, max_facts);
}

fn as_int(t: &Term) -> Option<i64> {
    match t {
        Term::App(f, args) if args.is_empty() => f.parse().ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_logic::parser::parse_program;

    #[test]
    fn transitive_closure_converges() {
        let p = parse_program(
            "edge(a, b).\nedge(b, c).\nedge(c, d).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        )
        .unwrap();
        match saturate(&p, &BottomUpOptions::default()) {
            Saturation::Fixpoint { facts, .. } => {
                let paths = facts.iter().filter(|a| &*a.name == "path").count();
                assert_eq!(paths, 6, "a->b,c,d; b->c,d; c->d");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_symbols_diverge() {
        // nat(s(N)) keeps building bigger terms: bottom-up diverges —
        // exactly the capture-rule scenario where top-down (with a bound
        // goal) is the right strategy.
        let p = parse_program("nat(z).\nnat(s(N)) :- nat(N).").unwrap();
        let out = saturate(&p, &BottomUpOptions { max_facts: 500, max_iterations: 10_000 });
        assert!(!out.converged());
    }

    #[test]
    fn comparison_builtins_filter() {
        let p = parse_program("n(1). n(2). n(3).\nbig(X) :- n(X), X >= 2.").unwrap();
        match saturate(&p, &BottomUpOptions::default()) {
            Saturation::Fixpoint { facts, .. } => {
                let bigs: Vec<String> = facts
                    .iter()
                    .filter(|a| &*a.name == "big")
                    .map(|a| a.args[0].to_string())
                    .collect();
                assert_eq!(bigs, ["2", "3"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negation_on_ground_atoms() {
        let p = parse_program("n(a). n(b).\nm(a).\nonly_n(X) :- n(X), \\+ m(X).").unwrap();
        match saturate(&p, &BottomUpOptions::default()) {
            Saturation::Fixpoint { facts, .. } => {
                let only: Vec<String> = facts
                    .iter()
                    .filter(|a| &*a.name == "only_n")
                    .map(|a| a.args[0].to_string())
                    .collect();
                assert_eq!(only, ["b"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_program() {
        let p = parse_program("").unwrap();
        assert!(saturate(&p, &BottomUpOptions::default()).converged());
    }

    #[test]
    fn semi_naive_matches_naive_closure() {
        // Cross-check: the fixpoint contains exactly the facts derivable by
        // repeated rule application (computed here by brute force).
        let p = parse_program(
            "e(1, 2). e(2, 3). e(3, 1).\n\
             tc(X, Y) :- e(X, Y).\n\
             tc(X, Z) :- tc(X, Y), tc(Y, Z).",
        )
        .unwrap();
        match saturate(&p, &BottomUpOptions::default()) {
            Saturation::Fixpoint { facts, .. } => {
                let tc = facts.iter().filter(|a| &*a.name == "tc").count();
                assert_eq!(tc, 9, "full 3x3 closure on a cycle");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
