//! `lsp_gate` — regression gate for the LSP edit-session pipeline.
//!
//! Reads a bench report containing the `lsp` suite and fails if the
//! server stops re-analyzing incrementally. Checks, per size label found
//! in the report:
//!
//! * **Dirty-cone floor** — the worst one-clause warm edit of the
//!   session must recompute fewer than 10% of the document's SCC
//!   computations (`dirty_sccs * 10 < total_sccs`). Same structural
//!   claim as `incr_gate`, but measured through the whole protocol
//!   stack (framing → dispatch → lint → memoized analysis).
//! * **No-op floor** — an edit that leaves the text unchanged must
//!   recompute nothing (`dirty_sccs == 0`).
//!
//! Latency percentiles (`p50_us` / `p99_us`) are recorded in the report
//! but not wall-clock-gated: CI machines are noisy, and the structural
//! counters are what guarantee the latencies stay flat as programs grow.
//!
//! Usage: `lsp_gate [PATH]` (default `BENCH_argus.json`).

use argus_bench::json::{scan_num_field, scan_str_field};
use std::collections::BTreeMap;

fn counter(samples: &BTreeMap<String, String>, id: &str, key: &str) -> Result<f64, String> {
    let line = samples.get(id).ok_or_else(|| format!("sample `{id}` missing from report"))?;
    scan_num_field(line, key).ok_or_else(|| format!("sample `{id}` has no field `{key}`"))
}

fn run(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut samples = BTreeMap::new();
    let mut labels: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(id) = scan_str_field(line, "id") {
            if let Some(label) = id.strip_prefix("lsp/warm-edit/") {
                labels.push(label.to_string());
            }
            samples.insert(id, line.to_string());
        }
    }
    if labels.is_empty() {
        return Err(format!("no lsp/warm-edit samples found in {path}"));
    }

    let mut failures = Vec::new();
    for label in &labels {
        let edit_id = format!("lsp/warm-edit/{label}");
        let dirty = counter(&samples, &edit_id, "dirty_sccs")?;
        let total = counter(&samples, &edit_id, "total_sccs")?;
        let p50 = counter(&samples, &edit_id, "p50_us").unwrap_or(f64::NAN);
        let p99 = counter(&samples, &edit_id, "p99_us").unwrap_or(f64::NAN);
        let ok = total > 0.0 && dirty * 10.0 < total;
        eprintln!(
            "lsp_gate: {} {edit_id} dirty cone = {dirty:.0} of {total:.0} (floor < 10%), \
             latency p50 = {p50:.0}us p99 = {p99:.0}us",
            if ok { "ok  " } else { "FAIL" }
        );
        if !ok {
            failures.push(format!("{edit_id} dirty cone {dirty:.0}/{total:.0} is not < 10%"));
        }

        let noop_id = format!("lsp/warm-noop/{label}");
        let noop_dirty = counter(&samples, &noop_id, "dirty_sccs")?;
        let ok = noop_dirty == 0.0;
        eprintln!(
            "lsp_gate: {} {noop_id} dirty cone = {noop_dirty:.0} (must be 0)",
            if ok { "ok  " } else { "FAIL" }
        );
        if !ok {
            failures.push(format!("{noop_id} recomputed {noop_dirty:.0} SCC computation(s)"));
        }
    }
    Ok(failures)
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_argus.json".to_string());
    match run(&path) {
        Ok(failures) if failures.is_empty() => {
            eprintln!("lsp_gate: dirty-cone floors hold ({path})");
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("lsp_gate: FAIL {f}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("lsp_gate: {e}");
            std::process::exit(1);
        }
    }
}
