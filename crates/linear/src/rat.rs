//! Exact rational numbers built on [`BigInt`].
//!
//! Every value is kept in canonical form: the denominator is strictly
//! positive and `gcd(|numerator|, denominator) = 1`, so structural equality
//! and hashing coincide with numeric equality.

use crate::bigint::{BigInt, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// # Examples
///
/// ```
/// use argus_linear::Rat;
/// let half = Rat::new(1.into(), 2.into());
/// let third = Rat::new(1.into(), 3.into());
/// assert_eq!((&half + &third).to_string(), "5/6");
/// assert!(half > third);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: BigInt,
    /// Strictly positive, coprime with `num`.
    den: BigInt,
}

impl Rat {
    /// Construct `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Rat {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rat::zero();
        }
        // Integer denominators need no reduction at all.
        if den.is_one() {
            return Rat::raw(num, den);
        }
        let g = num.gcd(&den);
        let mut num = &num / &g;
        let mut den = &den / &g;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// Construct from parts already known canonical (`den > 0`, coprime).
    /// Every arithmetic shortcut below funnels through here so canonicity
    /// arguments live next to the code they justify.
    #[inline]
    fn raw(num: BigInt, den: BigInt) -> Rat {
        debug_assert!(den.is_positive());
        Rat { num, den }
    }

    /// The rational 0.
    pub fn zero() -> Rat {
        Rat { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The rational 1.
    pub fn one() -> Rat {
        Rat { num: BigInt::one(), den: BigInt::one() }
    }

    /// Construct from an integer.
    pub fn from_int(v: impl Into<BigInt>) -> Rat {
        Rat { num: v.into(), den: BigInt::one() }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// True iff this is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        // Swapping an already-canonical pair needs no gcd; only the sign
        // has to migrate to the numerator.
        if self.num.is_negative() {
            Rat::raw(-&self.den, -&self.num)
        } else {
            Rat::raw(self.den.clone(), self.num.clone())
        }
    }

    /// Shared add/sub kernel: `self ± other` with minimal renormalization.
    ///
    /// Canonicity arguments (write `self = a/b`, `other = c/d`, both
    /// reduced, `b, d > 0`):
    /// * `d = 1`: the result is `(a ± cb)/b` and
    ///   `gcd(a ± cb, b) = gcd(a, b) = 1` — no gcd needed.
    /// * `b = d`: the result is `(a ± c)/b`, reduced by one
    ///   `gcd(a ± c, b)`.
    /// * `gcd(b, d) = 1`: `gcd(ad ± cb, bd) = 1` (any prime dividing `b`
    ///   divides `cb` but not `ad`, and symmetrically) — the single
    ///   `gcd(b, d)` probe is all the work there is.
    /// * otherwise the GMP "t-trick": with `g = gcd(b, d)` and
    ///   `t = a(d/g) ± c(b/g)`, the common factor of `t` and `(b/g)d` is
    ///   exactly `gcd(t, g)` — two word-sized gcds instead of one huge one
    ///   on the cross-multiplied products.
    fn add_impl(&self, other: &Rat, sub: bool) -> Rat {
        if other.is_zero() {
            return self.clone();
        }
        if self.is_zero() {
            let num = if sub { -&other.num } else { other.num.clone() };
            return Rat::raw(num, other.den.clone());
        }
        if self.den == other.den {
            let t = if sub { &self.num - &other.num } else { &self.num + &other.num };
            if t.is_zero() {
                return Rat::zero();
            }
            if self.den.is_one() {
                return Rat::raw(t, BigInt::one());
            }
            let g = t.gcd(&self.den);
            if g.is_one() {
                return Rat::raw(t, self.den.clone());
            }
            return Rat::raw(&t / &g, &self.den / &g);
        }
        if other.den.is_one() {
            let cb = &other.num * &self.den;
            let num = if sub { &self.num - &cb } else { &self.num + &cb };
            return Rat::raw(num, self.den.clone());
        }
        if self.den.is_one() {
            let ad = &self.num * &other.den;
            let num = if sub { &ad - &other.num } else { &ad + &other.num };
            return Rat::raw(num, other.den.clone());
        }
        let g = self.den.gcd(&other.den);
        if g.is_one() {
            let ad = &self.num * &other.den;
            let cb = &other.num * &self.den;
            let num = if sub { &ad - &cb } else { &ad + &cb };
            return Rat::raw(num, &self.den * &other.den);
        }
        let db = &self.den / &g; // b/g
        let dd = &other.den / &g; // d/g
        let ad = &self.num * &dd;
        let cb = &other.num * &db;
        let t = if sub { &ad - &cb } else { &ad + &cb };
        if t.is_zero() {
            return Rat::zero();
        }
        let g2 = t.gcd(&g);
        if g2.is_one() {
            return Rat::raw(t, &db * &other.den);
        }
        Rat::raw(&t / &g2, &db * &(&other.den / &g2))
    }

    /// Multiplication kernel with cross-reduction: reducing `a` against `d`
    /// and `c` against `b` *before* multiplying keeps intermediates small
    /// and makes the result canonical by construction (the factors that
    /// remain are pairwise coprime).
    fn mul_impl(&self, other: &Rat) -> Rat {
        if self.is_zero() || other.is_zero() {
            return Rat::zero();
        }
        match (self.den.is_one(), other.den.is_one()) {
            (true, true) => Rat::raw(&self.num * &other.num, BigInt::one()),
            (false, true) => {
                if other.num.is_one() {
                    return self.clone();
                }
                let g = other.num.gcd(&self.den);
                if g.is_one() {
                    Rat::raw(&self.num * &other.num, self.den.clone())
                } else {
                    Rat::raw(&self.num * &(&other.num / &g), &self.den / &g)
                }
            }
            (true, false) => {
                if self.num.is_one() {
                    return other.clone();
                }
                let g = self.num.gcd(&other.den);
                if g.is_one() {
                    Rat::raw(&self.num * &other.num, other.den.clone())
                } else {
                    Rat::raw(&(&self.num / &g) * &other.num, &other.den / &g)
                }
            }
            (false, false) => {
                let g1 = self.num.gcd(&other.den);
                let g2 = other.num.gcd(&self.den);
                let an = if g1.is_one() { self.num.clone() } else { &self.num / &g1 };
                let cn = if g2.is_one() { other.num.clone() } else { &other.num / &g2 };
                let bd = if g2.is_one() { self.den.clone() } else { &self.den / &g2 };
                let dd = if g1.is_one() { other.den.clone() } else { &other.den / &g1 };
                Rat::raw(&an * &cn, &bd * &dd)
            }
        }
    }

    /// Approximate as `f64` (for reporting only; analysis never uses floats).
    pub fn to_f64(&self) -> f64 {
        // Scale to keep both parts in f64 range for the common small case;
        // fall back to string parsing for huge values.
        match (self.num.to_i128(), self.den.to_i128()) {
            (Some(n), Some(d)) => n as f64 / d as f64,
            _ => {
                let n: f64 = self.num.to_string().parse().unwrap_or(f64::NAN);
                let d: f64 = self.den.to_string().parse().unwrap_or(f64::NAN);
                n / d
            }
        }
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.divmod(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.divmod(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat::from_int(v)
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat::from_int(v)
    }
}

impl From<BigInt> for Rat {
    fn from(v: BigInt) -> Rat {
        Rat { num: v, den: BigInt::one() }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat { num: -&self.num, den: self.den.clone() }
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(mut self) -> Rat {
        self.num = -self.num;
        self
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, other: &Rat) -> Rat {
        self.add_impl(other, false)
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, other: &Rat) -> Rat {
        self.add_impl(other, true)
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, other: &Rat) -> Rat {
        self.mul_impl(other)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, other: &Rat) -> Rat {
        assert!(!other.is_zero(), "division by zero rational");
        self.mul_impl(&other.recip())
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                (&self).$method(&other)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, other: &Rat) -> Rat {
                (&self).$method(other)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, other: Rat) -> Rat {
                self.$method(&other)
            }
        }
    };
}

forward_rat_binop!(Add, add);
forward_rat_binop!(Sub, sub);
forward_rat_binop!(Mul, mul);
forward_rat_binop!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, other: &Rat) {
        if other.is_zero() {
            return;
        }
        if other.den.is_one() {
            // a/b + c = (a + cb)/b stays canonical (gcd(a + cb, b) =
            // gcd(a, b) = 1), so update the numerator in place — no gcd,
            // no denominator churn. A zero result can only arise with
            // b = 1, which is already canonical zero form.
            self.num += &(&other.num * &self.den);
            return;
        }
        *self = self.add_impl(other, false);
    }
}

impl SubAssign<&Rat> for Rat {
    fn sub_assign(&mut self, other: &Rat) {
        if other.is_zero() {
            return;
        }
        if other.den.is_one() {
            self.num -= &(&other.num * &self.den);
            return;
        }
        *self = self.add_impl(other, true);
    }
}

impl MulAssign<&Rat> for Rat {
    fn mul_assign(&mut self, other: &Rat) {
        if self.is_zero() {
            return;
        }
        if other.is_zero() {
            *self = Rat::zero();
            return;
        }
        if other.den.is_one() && self.den.is_one() {
            // Integer times integer: no reduction can ever be needed.
            self.num *= &other.num;
            return;
        }
        *self = self.mul_impl(other);
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error parsing a [`Rat`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.message)
    }
}

impl std::error::Error for ParseRatError {}

impl FromStr for Rat {
    type Err = ParseRatError;

    /// Parses `"a"` or `"a/b"` with optional leading sign on `a`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let n: BigInt = s.parse().map_err(|e| ParseRatError { message: format!("{e}") })?;
                Ok(Rat::from(n))
            }
            Some((ns, ds)) => {
                let n: BigInt =
                    ns.parse().map_err(|e| ParseRatError { message: format!("{e}") })?;
                let d: BigInt =
                    ds.parse().map_err(|e| ParseRatError { message: format!("{e}") })?;
                if d.is_zero() {
                    return Err(ParseRatError { message: "zero denominator".into() });
                }
                Ok(Rat::new(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rat::zero());
        assert!(r(1, -2).denom().is_positive());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1.into(), 0.into());
    }

    #[test]
    fn field_ops() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(r(3, 7).recip(), r(7, 3));
        assert_eq!(-r(3, 7), r(-3, 7));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < Rat::zero());
        assert_eq!(r(2, 6).cmp(&r(1, 3)), Ordering::Equal);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), 3.into());
        assert_eq!(r(7, 2).ceil(), 4.into());
        assert_eq!(r(-7, 2).floor(), (-4).into());
        assert_eq!(r(-7, 2).ceil(), (-3).into());
        assert_eq!(r(4, 2).floor(), 2.into());
        assert_eq!(r(4, 2).ceil(), 2.into());
    }

    #[test]
    fn parse_display() {
        assert_eq!("1/2".parse::<Rat>().unwrap(), r(1, 2));
        assert_eq!("-3/6".parse::<Rat>().unwrap(), r(-1, 2));
        assert_eq!("5".parse::<Rat>().unwrap(), r(5, 1));
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(4, 2).to_string(), "2");
        assert!("1/0".parse::<Rat>().is_err());
        assert!("x/2".parse::<Rat>().is_err());
    }

    #[test]
    fn to_f64() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f64(), -0.75);
    }

    #[test]
    fn min_max() {
        assert_eq!(r(1, 2).min(r(1, 3)), r(1, 3));
        assert_eq!(r(1, 2).max(r(1, 3)), r(1, 2));
    }

    /// Pin the normalization shortcuts: these tests count calls into
    /// [`BigInt::gcd`] so a future refactor that quietly reintroduces
    /// full renormalization on the compound-assignment hot paths fails
    /// loudly rather than just slowing the solvers down.
    mod shortcuts {
        use super::*;
        use crate::bigint::GCD_CALLS;

        fn counting<T>(f: impl FnOnce() -> T) -> (T, usize) {
            let before = GCD_CALLS.with(|c| c.get());
            let out = f();
            let after = GCD_CALLS.with(|c| c.get());
            (out, after - before)
        }

        #[test]
        fn add_assign_zero_is_free() {
            let mut x = r(3, 7);
            let (_, gcds) = counting(|| x += &Rat::zero());
            assert_eq!(x, r(3, 7));
            assert_eq!(gcds, 0);
        }

        #[test]
        fn add_assign_integer_operand_skips_gcd() {
            let mut x = r(3, 7);
            let (_, gcds) = counting(|| x += &Rat::from_int(2));
            assert_eq!(x, r(17, 7));
            assert_eq!(gcds, 0, "a/b + c must not renormalize");

            let mut y = r(-5, 1);
            let (_, gcds) = counting(|| y += &Rat::from_int(5));
            assert_eq!(y, Rat::zero());
            assert!(y.denom().is_one(), "zero stays canonical");
            assert_eq!(gcds, 0);
        }

        #[test]
        fn sub_assign_integer_operand_skips_gcd() {
            let mut x = r(3, 7);
            let (_, gcds) = counting(|| x -= &Rat::from_int(1));
            assert_eq!(x, r(-4, 7));
            assert_eq!(gcds, 0);
        }

        #[test]
        fn mul_assign_zero_and_integers_skip_gcd() {
            let mut x = r(3, 7);
            let (_, gcds) = counting(|| x *= &Rat::zero());
            assert_eq!(x, Rat::zero());
            assert_eq!(gcds, 0);

            let mut y = Rat::from_int(6);
            let (_, gcds) = counting(|| y *= &Rat::from_int(-7));
            assert_eq!(y, Rat::from_int(-42));
            assert_eq!(gcds, 0, "integer * integer must not renormalize");
        }

        #[test]
        fn mul_by_one_is_free() {
            let x = r(3, 7);
            let one = Rat::one();
            let (p, gcds) = counting(|| &x * &one);
            assert_eq!(p, r(3, 7));
            assert_eq!(gcds, 0);
        }

        #[test]
        fn common_denominator_add_uses_one_gcd() {
            let (a, b) = (r(1, 6), r(1, 6));
            let (s, gcds) = counting(|| &a + &b);
            assert_eq!(s, r(1, 3));
            assert_eq!(gcds, 1, "b = d: one gcd(a + c, b), nothing else");
        }

        #[test]
        fn coprime_denominator_add_uses_one_gcd() {
            let (a, b) = (r(1, 4), r(1, 9));
            let (s, gcds) = counting(|| &a + &b);
            assert_eq!(s, r(13, 36));
            assert_eq!(gcds, 1, "gcd(b, d) = 1 certifies the result reduced");
        }

        #[test]
        fn general_add_uses_two_gcds() {
            let (a, b) = (r(1, 6), r(1, 4));
            let (s, gcds) = counting(|| &a + &b);
            assert_eq!(s, r(5, 12));
            assert_eq!(gcds, 2, "t-trick: gcd(b, d) then gcd(t, g)");
        }

        #[test]
        fn general_mul_uses_two_gcds() {
            let (a, b) = (r(2, 3), r(3, 4));
            let (p, gcds) = counting(|| &a * &b);
            assert_eq!(p, r(1, 2));
            assert_eq!(gcds, 2, "cross-reduction: gcd(|a|, d) and gcd(|c|, b)");
        }

        #[test]
        fn recip_skips_gcd() {
            let x = r(-3, 7);
            let (v, gcds) = counting(|| x.recip());
            assert_eq!(v, r(-7, 3));
            assert_eq!(gcds, 0);
        }

        #[test]
        fn integer_constructor_skips_gcd() {
            let (v, gcds) = counting(|| Rat::new(42.into(), 1.into()));
            assert_eq!(v, Rat::from_int(42));
            assert_eq!(gcds, 0);
        }
    }
}
