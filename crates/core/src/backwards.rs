//! Backwards termination-condition inference.
//!
//! The forward analysis (§3–§6) answers one adorned query at a time: the
//! wrong instantiation just yields `Unknown` with no guidance. Following
//! *Genaim & Codish, "Inferring Termination Conditions for Logic Programs
//! using Backwards Analysis"*, this module inverts the pipeline into a
//! whole-program static pass: for **every** predicate it computes the set
//! of adornments under which the forward analyzer proves termination,
//! reported as a minimized positive DNF over "argᵢ bound" — e.g.
//! `append/3` terminates if `arg1 bound or arg3 bound`.
//!
//! ## The domain
//!
//! Provability is monotone in boundness: binding more arguments can only
//! shrink term sizes that the decrease argument may use, never remove a
//! proof (a θ-vector over a subset of bound positions remains valid when
//! more positions are bound). The provable-adornment set of a predicate
//! is therefore *upward-closed* in the boundness lattice and is exactly
//! captured by its antichain of minimal elements — an
//! [`argus_logic::Dnf`].
//!
//! ## The fixpoint
//!
//! Conceptually the pass is a greatest fixpoint: every condition starts
//! at `true` and is refined downwards until stable. The implementation
//! runs the refinement in its canonical evaluation order — SCCs of the
//! predicate dependency graph in reverse topological (bottom-up) order,
//! each level's predicates fanned out over the deterministic `par`
//! worker pool — so one descending sweep reaches the fixpoint:
//!
//! * per predicate, candidates are probed cheapest-first: the all-bound
//!   adornment acts as a gate (monotonicity: if even all-bound is not
//!   provable, the condition is `false` after a single analysis);
//! * remaining masks are enumerated by ascending popcount, skipping any
//!   superset of an already-proven mask, so the surviving set is the
//!   minimal DNF by construction;
//! * **backwards propagation**: before discharging a candidate with the
//!   full FM/θ pipeline, the adornments it induces on already-summarized
//!   callees ([`adorn_program`]'s per-call-pattern copies) are checked
//!   against the callees' conditions — a candidate whose callee adornment
//!   is not covered is refuted without touching the simplex.
//!
//! Each surviving disjunct is discharged by the forward analyzer itself
//! (sharing one [`ProjectionCache`] across all probes), so the resulting
//! [`TerminationCondition`] is a *certificate*: re-running the forward
//! analysis on each disjunct — see [`check_condition`] — must reproduce
//! `Terminates`, witness included.

use crate::analyze::{analyze_with_caches, AnalysisOptions, Verdict};
use crate::certificate::verify_report;
use crate::incremental::SccCache;
use crate::json::json_str;
use crate::pairs::ProjectionCache;
use crate::par::{effective_workers, par_map_indexed};
use argus_logic::{adorn_program, Adornment, DepGraph, Dnf, PredKey, Program};
use std::collections::{BTreeMap, BTreeSet};

/// The signature of a pluggable probe: decide one (program, predicate,
/// adornment) instance under the given analysis options.
pub type ProbeFn =
    dyn Fn(&Program, &PredKey, &Adornment, &AnalysisOptions) -> Verdict + Send + Sync;

/// A cloneable, `Debug`-opaque wrapper around a probe closure, so
/// [`BackwardsOptions`] can keep deriving `Debug` and `Clone`. Used by the
/// CLI to run inference under a non-default engine (`infer --engine sct`)
/// without `argus-core` depending on the engine crates.
#[derive(Clone)]
pub struct ProbeHook(std::sync::Arc<ProbeFn>);

impl ProbeHook {
    /// Wrap a probe closure.
    pub fn new(
        f: impl Fn(&Program, &PredKey, &Adornment, &AnalysisOptions) -> Verdict + Send + Sync + 'static,
    ) -> ProbeHook {
        ProbeHook(std::sync::Arc::new(f))
    }

    /// Run the probe.
    pub fn call(
        &self,
        program: &Program,
        pred: &PredKey,
        adn: &Adornment,
        options: &AnalysisOptions,
    ) -> Verdict {
        (self.0)(program, pred, adn, options)
    }
}

impl std::fmt::Debug for ProbeHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProbeHook(..)")
    }
}

/// Options for [`infer_conditions`].
#[derive(Debug, Clone)]
pub struct BackwardsOptions {
    /// Semantic knobs forwarded to every forward-analysis probe
    /// (norm, δ mode, FM tier, deadline, …). `parallelism` controls the
    /// per-level predicate fan-out; each individual probe always runs
    /// sequentially so reports are byte-identical at any worker count.
    pub analysis: AnalysisOptions,
    /// Predicates with arity above this cap are probed with the all-bound
    /// adornment only (2ⁿ candidates is exact but exponential); their
    /// conditions are flagged [`TerminationCondition::capped`].
    pub max_arity: usize,
    /// Refute candidates from already-computed callee conditions before
    /// running the full analysis (the backwards propagation step).
    pub propagate: bool,
    /// Escalate candidates whose raw (preprocessing-free) analysis found a
    /// zero-weight cycle to the full transforming analyzer. A zero-weight
    /// cycle is a concrete witness that no bound argument ever shrinks
    /// along some recursion path — the Appendix A transformations almost
    /// never repair it, and such probes dominate inference cost on
    /// FM-heavy programs — so the default refutes them from the raw pass
    /// alone. Either way the result is a sound under-approximation; this
    /// knob only trades probe cost against condition completeness.
    pub escalate_zero_weight: bool,
    /// Keep the rendered forward report of every analyzed candidate, so a
    /// server can prime its analyze cache from one inference pass.
    pub collect_reports: bool,
    /// Replace the built-in θ-method probe with a custom decision
    /// procedure (e.g. the size-change engine, or a racing portfolio).
    /// Overridden probes skip the two-phase raw/escalated split and never
    /// collect priming reports; backwards propagation stays sound because
    /// every summarized callee condition in one sweep comes from the same
    /// probe, and provability is monotone in boundness for every engine.
    pub probe_override: Option<ProbeHook>,
    /// Shared per-SCC memo threaded into every built-in probe (the
    /// incremental-analysis layer). Probes under a memo render the same
    /// bytes as cold probes — the memo only skips recomputation — so the
    /// inference JSON stays byte-identical with or without it.
    pub scc_memo: Option<std::sync::Arc<SccCache>>,
}

impl Default for BackwardsOptions {
    fn default() -> BackwardsOptions {
        BackwardsOptions {
            analysis: AnalysisOptions::default(),
            max_arity: 6,
            propagate: true,
            escalate_zero_weight: false,
            collect_reports: false,
            probe_override: None,
            scc_memo: None,
        }
    }
}

/// One probed candidate adornment and how it was decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateOutcome {
    /// The adornment probed.
    pub adornment: Adornment,
    /// The forward verdict ([`Verdict::Unknown`] when pruned).
    pub verdict: Verdict,
    /// Refuted via callee conditions without running the analyzer.
    pub pruned: bool,
}

/// The per-predicate certificate: a minimized DNF of provable
/// bound-argument sets, plus the probe log that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminationCondition {
    /// The predicate summarized.
    pub pred: PredKey,
    /// Minimal provable boundness sets; `false` when no instantiation is
    /// provable, `true` when even the all-free query is.
    pub condition: Dnf,
    /// Arity exceeded [`BackwardsOptions::max_arity`]: only the all-bound
    /// adornment was probed, so the condition is sound but possibly
    /// stronger than necessary.
    pub capped: bool,
    /// Every candidate evaluated, in probe order.
    pub checked: Vec<CandidateOutcome>,
}

impl TerminationCondition {
    /// The disjuncts as adornments of the predicate's arity.
    pub fn disjunct_adornments(&self) -> Vec<Adornment> {
        self.condition.disjuncts().map(|d| adornment_for(self.pred.arity, d)).collect()
    }
}

/// A rendered forward report retained for cache priming.
#[derive(Debug, Clone)]
pub struct PrimedReport {
    /// Query predicate of the probe.
    pub query: PredKey,
    /// Adornment of the probe.
    pub adornment: Adornment,
    /// `TerminationReport::to_json()` of the probe (no trailing newline).
    pub json: String,
}

/// The whole-program inference result.
#[derive(Debug, Clone, Default)]
pub struct InferenceReport {
    /// Conditions in predicate order.
    pub conditions: Vec<TerminationCondition>,
    /// Forward analyses actually run.
    pub analyses: usize,
    /// Candidates refuted by backwards propagation alone.
    pub pruned: usize,
    /// A deadline fired before the sweep finished; the reported
    /// conditions are sound but possibly incomplete.
    pub partial: bool,
    /// Per-candidate reports (empty unless
    /// [`BackwardsOptions::collect_reports`]).
    pub reports: Vec<PrimedReport>,
}

/// Build the adornment with exactly `bound` positions bound.
pub fn adornment_for(arity: usize, bound: &BTreeSet<usize>) -> Adornment {
    let spec: String = (0..arity).map(|i| if bound.contains(&i) { 'b' } else { 'f' }).collect();
    Adornment::parse(&spec).expect("b/f spec always parses")
}

/// Infer termination conditions for every IDB predicate of `program`.
pub fn infer_conditions(program: &Program, options: &BackwardsOptions) -> InferenceReport {
    infer_conditions_for(program, &program.idb_predicates(), options)
}

/// Infer termination conditions for the requested predicates only.
///
/// Non-IDB members of `preds` (EDB predicates, builtins, unknown keys)
/// are ignored. Backwards propagation only consults conditions of
/// predicates in the requested set, so restricting the set trades
/// pruning power for fewer probes.
pub fn infer_conditions_for(
    program: &Program,
    preds: &BTreeSet<PredKey>,
    options: &BackwardsOptions,
) -> InferenceReport {
    let idb = program.idb_predicates();
    let wanted: BTreeSet<PredKey> = preds.intersection(&idb).cloned().collect();
    let graph = DepGraph::build(program);
    let shared = ProjectionCache::new();

    let mut table: BTreeMap<PredKey, Dnf> = BTreeMap::new();
    let mut out = InferenceReport::default();
    for level in graph.scc_levels() {
        let mut level_preds: Vec<PredKey> = Vec::new();
        for scc_id in level {
            for p in graph.scc(scc_id) {
                if wanted.contains(&p) {
                    level_preds.push(p);
                }
            }
        }
        if level_preds.is_empty() {
            continue;
        }
        level_preds.sort();
        let workers = effective_workers(options.analysis.parallelism, level_preds.len());
        let results = par_map_indexed(&level_preds, workers, |_, pred| {
            infer_pred(program, pred, &table, options, &shared)
        });
        // Merge in input order: the table, counters and report list are
        // identical for any worker count.
        for r in results {
            table.insert(r.condition.pred.clone(), r.condition.condition.clone());
            out.analyses += r.analyses;
            out.pruned += r.pruned;
            out.partial |= r.partial;
            out.conditions.push(r.condition);
            out.reports.extend(r.reports);
        }
    }
    out.conditions.sort_by(|a, b| a.pred.cmp(&b.pred));
    out
}

struct PredResult {
    condition: TerminationCondition,
    analyses: usize,
    pruned: usize,
    partial: bool,
    reports: Vec<PrimedReport>,
}

fn deadline_hit(options: &AnalysisOptions) -> bool {
    options.deadline.is_some_and(|d| std::time::Instant::now() >= d)
}

/// The lattice search for one predicate (sequential: determinism lives
/// here, parallelism lives one level up).
fn infer_pred(
    program: &Program,
    pred: &PredKey,
    table: &BTreeMap<PredKey, Dnf>,
    options: &BackwardsOptions,
    shared: &ProjectionCache,
) -> PredResult {
    // Probes run sequentially regardless of the requested fan-out; the
    // level scheduler above already saturates the workers.
    let probe_options = AnalysisOptions { parallelism: 1, ..options.analysis.clone() };
    let mut result = PredResult {
        condition: TerminationCondition {
            pred: pred.clone(),
            condition: Dnf::fls(),
            capped: pred.arity > options.max_arity,
            checked: Vec::new(),
        },
        analyses: 0,
        pruned: 0,
        partial: false,
        reports: Vec::new(),
    };
    if deadline_hit(&probe_options) {
        result.partial = true;
        return result;
    }

    // Gate: the all-bound adornment. By monotonicity nothing is provable
    // if it fails, so every non-terminating predicate costs one analysis.
    let all_bound = Adornment::all_bound(pred.arity);
    let gate = probe(program, pred, &all_bound, &probe_options, shared, options, &mut result);
    if gate != Verdict::Terminates {
        return result;
    }
    if result.condition.capped {
        let full: BTreeSet<usize> = (0..pred.arity).collect();
        result.condition.condition.insert(full);
        return result;
    }

    // Ascend the boundness lattice from below: masks by (popcount, value),
    // skipping supersets of proven masks, so the surviving antichain is
    // the minimal DNF. The full mask is the already-proved gate.
    for mask in masks_ascending(pred.arity) {
        let bound: BTreeSet<usize> = (0..pred.arity).filter(|i| mask & (1u32 << i) != 0).collect();
        if result.condition.condition.covers(&bound) {
            continue;
        }
        if deadline_hit(&probe_options) {
            result.partial = true;
            return result;
        }
        let adn = adornment_for(pred.arity, &bound);
        if options.propagate && refuted_by_callees(program, pred, &adn, table) {
            result.pruned += 1;
            result.condition.checked.push(CandidateOutcome {
                adornment: adn,
                verdict: Verdict::Unknown,
                pruned: true,
            });
            continue;
        }
        let verdict = probe(program, pred, &adn, &probe_options, shared, options, &mut result);
        if verdict == Verdict::Terminates {
            result.condition.condition.insert(bound);
        }
    }
    if result.condition.condition.is_false() {
        // No proper subset works; the gate itself is the minimal element.
        result.condition.condition.insert((0..pred.arity).collect());
    }
    result
}

/// Discharge one candidate adornment and log it.
///
/// Probes are two-phase: a preprocessing-free pass first, escalating to
/// the full transforming analyzer only when the raw pass is inconclusive.
/// A raw proof *is* the default analyzer's answer (it runs the raw pass
/// first and returns early on `Terminates`), so positives lose nothing;
/// the escalation is where failing probes would otherwise spend seconds
/// re-analyzing a transformed program that still fails.
fn probe(
    program: &Program,
    pred: &PredKey,
    adn: &Adornment,
    probe_options: &AnalysisOptions,
    shared: &ProjectionCache,
    options: &BackwardsOptions,
    result: &mut PredResult,
) -> Verdict {
    if let Some(hook) = &options.probe_override {
        result.analyses += 1;
        let verdict = hook.call(program, pred, adn, probe_options);
        result.condition.checked.push(CandidateOutcome {
            adornment: adn.clone(),
            verdict,
            pruned: false,
        });
        return verdict;
    }
    let memo = options.scc_memo.as_deref();
    let raw_options = AnalysisOptions { transform_phases: 0, ..probe_options.clone() };
    let raw = analyze_with_caches(program, pred, adn.clone(), &raw_options, Some(shared), memo);
    result.analyses += 1;
    let skip_escalation = raw.verdict == Verdict::Terminates
        || probe_options.transform_phases == 0
        || (raw.verdict == Verdict::ZeroWeightCycle && !options.escalate_zero_weight);
    // When a zero-weight-cycle probe is refuted from the raw pass alone,
    // the default analyzer was not consulted, so its report must not be
    // used to answer future default-analyze requests.
    let mut primable = raw.verdict == Verdict::Terminates;
    let report = if skip_escalation {
        raw
    } else {
        result.analyses += 1;
        primable = true;
        analyze_with_caches(program, pred, adn.clone(), probe_options, Some(shared), memo)
    };
    result.condition.checked.push(CandidateOutcome {
        adornment: adn.clone(),
        verdict: report.verdict,
        pruned: false,
    });
    if options.collect_reports && primable {
        result.reports.push(PrimedReport {
            query: pred.clone(),
            adornment: adn.clone(),
            json: report.to_json(),
        });
    }
    report.verdict
}

/// All proper-subset masks of `0..arity`, ascending by (popcount, value).
fn masks_ascending(arity: usize) -> Vec<u32> {
    let full: u32 = if arity >= 32 { u32::MAX } else { (1u32 << arity) - 1 };
    let mut masks: Vec<u32> = (0..full).collect();
    masks.sort_by_key(|m| (m.count_ones(), *m));
    masks
}

/// Backwards propagation: adorn the program for the candidate query and
/// check every induced callee adornment against the callee's condition.
/// A candidate whose call pattern falls outside a summarized callee's
/// provable set cannot be proved by the forward pass on the *unadorned*
/// program, so it is refuted without running FM. Only predicates already
/// in `table` (strictly lower levels) participate; same-SCC calls are
/// left to the full analysis.
fn refuted_by_callees(
    program: &Program,
    pred: &PredKey,
    adn: &Adornment,
    table: &BTreeMap<PredKey, Dnf>,
) -> bool {
    let adorned = adorn_program(program, pred, adn.clone());
    for (copy, orig) in &adorned.origin {
        if orig == pred {
            continue;
        }
        let Some(cond) = table.get(orig) else { continue };
        let Some(call_adn) = adorned.modes.get(copy) else { continue };
        if !cond.covers_adornment(call_adn) {
            return true;
        }
    }
    false
}

/// Re-check a condition certificate: every disjunct must independently
/// reproduce `Terminates` under a fresh forward analysis, and the
/// produced witness must pass [`verify_report`]. Returns the number of
/// disjuncts checked.
pub fn check_condition(
    program: &Program,
    cond: &TerminationCondition,
    options: &AnalysisOptions,
) -> Result<usize, String> {
    let mut checked = 0;
    for adn in cond.disjunct_adornments() {
        let report = crate::analyze::analyze(program, &cond.pred, adn.clone(), options);
        if report.verdict != Verdict::Terminates {
            return Err(format!(
                "{} disjunct {} not reproducible: forward verdict {:?}",
                cond.pred,
                render_adornment(&adn),
                report.verdict
            ));
        }
        verify_report(&report, options.norm).map_err(|e| {
            format!("{} disjunct {}: certificate rejected: {e}", cond.pred, render_adornment(&adn))
        })?;
        checked += 1;
    }
    Ok(checked)
}

/// Zero-arity adornments display as the empty string; spell them out so
/// messages never end in a dangling separator or blank token.
fn render_adornment(adn: &Adornment) -> String {
    if adn.arity() == 0 {
        "(no arguments)".to_string()
    } else {
        adn.to_string()
    }
}

fn verdict_str(v: Verdict) -> &'static str {
    match v {
        Verdict::Terminates => "Terminates",
        Verdict::Unknown => "Unknown",
        Verdict::ZeroWeightCycle => "ZeroWeightCycle",
    }
}

impl InferenceReport {
    /// Serialize as stable JSON (schema `argus-infer/v1`):
    ///
    /// ```json
    /// {
    ///   "schema": "argus-infer/v1",
    ///   "predicates": [
    ///     {
    ///       "predicate": "append/3",
    ///       "condition": "arg1 bound or arg3 bound",
    ///       "disjuncts": [[1],[3]],
    ///       "provable": true,
    ///       "capped": false,
    ///       "checked": [{"adornment":"bbb","verdict":"Terminates","pruned":false}]
    ///     }
    ///   ],
    ///   "analyses": 5,
    ///   "pruned": 0,
    ///   "partial": false
    /// }
    /// ```
    /// Disjunct positions are 1-based to match the `argN` rendering.
    /// Collected priming reports are intentionally not serialized.
    pub fn to_json(&self) -> String {
        let preds: Vec<String> = self
            .conditions
            .iter()
            .map(|c| {
                let checked: Vec<String> = c
                    .checked
                    .iter()
                    .map(|o| {
                        format!(
                            "{{\"adornment\":{},\"verdict\":{},\"pruned\":{}}}",
                            json_str(&o.adornment.to_string()),
                            json_str(verdict_str(o.verdict)),
                            o.pruned
                        )
                    })
                    .collect();
                format!(
                    "{{\"predicate\":{},\"condition\":{},\"disjuncts\":{},\"provable\":{},\"capped\":{},\"checked\":[{}]}}",
                    json_str(&c.pred.to_string()),
                    json_str(&c.condition.to_string()),
                    c.condition.to_json(),
                    !c.condition.is_false(),
                    c.capped,
                    checked.join(",")
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"argus-infer/v1\",\"predicates\":[{}],\"analyses\":{},\"pruned\":{},\"partial\":{}}}",
            preds.join(","),
            self.analyses,
            self.pruned,
            self.partial
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_logic::parser::parse_program;

    const APPEND: &str = "append([], Ys, Ys).\n\
                          append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";

    fn infer_one(src: &str, spec: &str) -> TerminationCondition {
        let program = parse_program(src).unwrap();
        let (name, arity) = spec.split_once('/').unwrap();
        let pred = PredKey::new(name, arity.parse().unwrap());
        let report = infer_conditions_for(
            &program,
            &[pred.clone()].into_iter().collect(),
            &BackwardsOptions::default(),
        );
        report.conditions.into_iter().find(|c| c.pred == pred).unwrap()
    }

    #[test]
    fn append_infers_first_or_third() {
        let cond = infer_one(APPEND, "append/3");
        assert_eq!(cond.condition.to_string(), "arg1 bound or arg3 bound");
        assert!(!cond.capped);
        // Gate first, then masks by ascending popcount.
        assert_eq!(cond.checked[0].adornment.to_string(), "bbb");
    }

    #[test]
    fn nonterminating_costs_one_analysis() {
        let cond = infer_one("p(X) :- p(X).", "p/1");
        assert!(cond.condition.is_false());
        assert_eq!(cond.checked.len(), 1, "the all-bound gate settles it");
    }

    #[test]
    fn zero_arity_condition_is_constant() {
        let cond = infer_one("go :- go.", "go/0");
        assert!(cond.condition.is_false());
        let cond = infer_one("go :- done.\ndone(1).", "go/0");
        assert!(cond.condition.is_true());
        assert_eq!(cond.condition.to_string(), "true");
    }

    #[test]
    fn whole_program_inference_covers_all_idb() {
        let program = parse_program(APPEND).unwrap();
        let report = infer_conditions(&program, &BackwardsOptions::default());
        assert_eq!(report.conditions.len(), 1);
        assert!(!report.partial);
        let json = report.to_json();
        assert!(json.contains("\"schema\":\"argus-infer/v1\""), "{json}");
        assert!(json.contains("\"disjuncts\":[[1],[3]]"), "{json}");
    }

    #[test]
    fn propagation_prunes_uncovered_callee_patterns() {
        // perm/2 with arg2 bound calls append with nothing useful bound;
        // once append/3 is summarized, the fb candidate dies without FM.
        let src = "perm([], []).\n\
                   perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
                   append([], Ys, Ys).\n\
                   append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";
        let program = parse_program(src).unwrap();
        let report = infer_conditions(&program, &BackwardsOptions::default());
        let perm = report.conditions.iter().find(|c| c.pred.name.as_ref() == "perm").unwrap();
        assert_eq!(perm.condition.to_string(), "arg1 bound");
        assert!(report.pruned > 0, "fb should be pruned via append's condition");
        // Pruning must not lose disjuncts: the unpruned sweep agrees.
        let unpruned = infer_conditions(
            &program,
            &BackwardsOptions { propagate: false, ..Default::default() },
        );
        for (a, b) in report.conditions.iter().zip(unpruned.conditions.iter()) {
            assert_eq!(a.pred, b.pred);
            assert_eq!(a.condition, b.condition, "{} diverges under pruning", a.pred);
        }
    }

    #[test]
    fn certificates_recheck() {
        let program = parse_program(APPEND).unwrap();
        let report = infer_conditions(&program, &BackwardsOptions::default());
        for cond in &report.conditions {
            let n = check_condition(&program, cond, &AnalysisOptions::default()).unwrap();
            assert_eq!(n, cond.condition.disjuncts().count());
        }
    }

    #[test]
    fn deadline_yields_partial() {
        let program = parse_program(APPEND).unwrap();
        let options = BackwardsOptions {
            analysis: AnalysisOptions {
                deadline: Some(std::time::Instant::now() - std::time::Duration::from_secs(1)),
                ..Default::default()
            },
            ..Default::default()
        };
        let report = infer_conditions(&program, &options);
        assert!(report.partial);
        assert_eq!(report.analyses, 0);
    }

    #[test]
    fn collected_reports_cover_every_analyzed_candidate() {
        let program = parse_program(APPEND).unwrap();
        let report = infer_conditions(
            &program,
            &BackwardsOptions { collect_reports: true, ..Default::default() },
        );
        // Every unpruned candidate of append/3 reaches a default-analyzer
        // verdict (proved raw or escalated), so each yields a primed body.
        let candidates: usize =
            report.conditions.iter().map(|c| c.checked.iter().filter(|o| !o.pruned).count()).sum();
        assert_eq!(report.reports.len(), candidates);
        for primed in &report.reports {
            assert!(primed.json.starts_with('{'), "{}", primed.json);
        }
    }
}
