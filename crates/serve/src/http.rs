//! Minimal HTTP/1.1 over `std::net`, reading side hardened.
//!
//! The server speaks the subset of HTTP/1.1 a JSON API needs: requests
//! with `Content-Length` bodies (chunked transfer encoding is politely
//! refused), keep-alive connections, and fixed-length responses. The
//! reader enforces three limits so hostile peers cannot pin a worker:
//!
//! * a **header cap** — request lines plus headers must fit
//!   [`Limits::max_head_bytes`];
//! * a **body cap** — declared `Content-Length` beyond
//!   [`Limits::max_body_bytes`] is rejected *before* reading the body
//!   (the 413 response echoes the limit);
//! * a **read deadline** — the whole request (head and body) must arrive
//!   within [`Limits::read_timeout`], measured from the first byte we
//!   wait for; a slow-loris peer trickling one byte per poll gets cut
//!   off with 408 instead of holding the worker forever.
//!
//! A tiny blocking client ([`client`]) rides along for the loadgen
//! binary, the fuzz round-trip oracle, and the integration tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Reading-side limits; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum declared body size.
    pub max_body_bytes: usize,
    /// Wall-clock budget for receiving one complete request.
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query strings are not split off; the API
    /// doesn't use them).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should be kept open after responding
    /// (HTTP/1.1 default unless `Connection: close`).
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed (or reset) the connection before a full request
    /// arrived. Clean closes between keep-alive requests land here too.
    Closed,
    /// The read deadline expired. `partial` says whether any bytes of a
    /// request had arrived (a slow-loris in progress) — idle keep-alive
    /// timeouts have `partial == false` and close silently.
    Timeout {
        /// Bytes of a request had started arriving.
        partial: bool,
    },
    /// Declared `Content-Length` exceeds the body cap.
    TooLarge {
        /// The configured cap, echoed in the 413 body.
        limit: usize,
        /// The declared length.
        declared: usize,
    },
    /// The bytes were not parseable HTTP (bad request line, bad header,
    /// unsupported transfer encoding, oversized head…).
    Malformed(String),
}

/// Read one request from `stream` under `limits`.
///
/// The caller must have set a read timeout on the stream (any value; this
/// function uses it as the poll quantum and enforces `limits.read_timeout`
/// itself, so the deadline is measured across polls).
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, ReadError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let started = Instant::now();
    let deadline = started + limits.read_timeout;

    // Accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(ReadError::Malformed(format!(
                "request head exceeds {} bytes",
                limits.max_head_bytes
            )));
        }
        read_some(stream, &mut buf, deadline)?;
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ReadError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() {
        return Err(ReadError::Malformed("bad request line".into()));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported version {version:?}")));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let header = |name: &str| headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str());
    if header("transfer-encoding").is_some_and(|v| !v.eq_ignore_ascii_case("identity")) {
        return Err(ReadError::Malformed("chunked transfer encoding is not supported".into()));
    }
    let content_length = match header("content-length") {
        None => 0,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(ReadError::TooLarge { limit: limits.max_body_bytes, declared: content_length });
    }
    let keep_alive = match header("connection") {
        Some(v) if v.eq_ignore_ascii_case("close") => false,
        _ => version != "HTTP/1.0",
    };

    // The body: whatever followed the head in the buffer, then the rest.
    let body_start = head_end + head_terminator_len(&buf, head_end);
    let mut body = buf.split_off(body_start);
    while body.len() < content_length {
        read_some(stream, &mut body, deadline)?;
    }
    body.truncate(content_length);

    Ok(Request { method, path, headers, body, keep_alive })
}

/// Read at least one byte into `out`, honoring `deadline`. Distinguishes
/// peer close from timeout.
fn read_some(
    stream: &mut TcpStream,
    out: &mut Vec<u8>,
    deadline: Instant,
) -> Result<(), ReadError> {
    let mut chunk = [0u8; 4096];
    loop {
        if Instant::now() >= deadline {
            return Err(ReadError::Timeout { partial: !out.is_empty() });
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(ReadError::Closed),
            Ok(n) => {
                out.extend_from_slice(&chunk[..n]);
                return Ok(());
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // poll quantum elapsed; re-check the deadline
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(ReadError::Closed),
        }
    }
}

/// Offset of the head/body separator, if the blank line has arrived.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n"))
}

/// Length of the separator at `head_end` (4 for CRLFCRLF, 2 for LFLF).
fn head_terminator_len(buf: &[u8], head_end: usize) -> usize {
    if buf[head_end..].starts_with(b"\r\n\r\n") {
        4
    } else {
        2
    }
}

/// One response to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Close the connection after this response.
    pub close: bool,
    /// Extra headers (name, value), already well-formed.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            body: body.into(),
            content_type: "application/json",
            close: false,
            extra_headers: Vec::new(),
        }
    }

    /// Append a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Mark the connection for closing after this response.
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }
}

/// Standard reason phrase for the status codes the server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        422 => "Unprocessable Content",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serialize `resp` onto `stream`.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len()
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if resp.close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// A blocking HTTP/1.1 client for tests, the fuzz oracle, and loadgen.
pub mod client {
    use super::*;

    /// A keep-alive connection to one server.
    pub struct HttpClient {
        stream: TcpStream,
    }

    /// A response as the client sees it.
    #[derive(Debug, Clone)]
    pub struct ClientResponse {
        /// HTTP status code.
        pub status: u16,
        /// Header name/value pairs, names lowercased.
        pub headers: Vec<(String, String)>,
        /// Body bytes.
        pub body: Vec<u8>,
    }

    impl ClientResponse {
        /// First header with the given (lowercase) name.
        pub fn header(&self, name: &str) -> Option<&str> {
            self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
        }
    }

    impl HttpClient {
        /// Connect to `addr` (e.g. `127.0.0.1:7177`).
        pub fn connect(addr: &str, timeout: Duration) -> std::io::Result<HttpClient> {
            let sockaddr = addr
                .parse::<std::net::SocketAddr>()
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
            let stream = TcpStream::connect_timeout(&sockaddr, timeout)?;
            stream.set_read_timeout(Some(timeout))?;
            stream.set_write_timeout(Some(timeout))?;
            stream.set_nodelay(true)?;
            Ok(HttpClient { stream })
        }

        /// Issue one request and read the full response.
        pub fn request(
            &mut self,
            method: &str,
            path: &str,
            body: &[u8],
        ) -> std::io::Result<ClientResponse> {
            let head = format!(
                "{method} {path} HTTP/1.1\r\nhost: argus\r\ncontent-length: {}\r\n\r\n",
                body.len()
            );
            self.stream.write_all(head.as_bytes())?;
            self.stream.write_all(body)?;
            self.stream.flush()?;
            self.read_response()
        }

        fn read_response(&mut self) -> std::io::Result<ClientResponse> {
            let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
            let mut buf: Vec<u8> = Vec::with_capacity(4096);
            let head_end = loop {
                if let Some(pos) = find_head_end(&buf) {
                    break pos;
                }
                let mut chunk = [0u8; 4096];
                match self.stream.read(&mut chunk)? {
                    0 => return Err(bad("connection closed mid-response")),
                    n => buf.extend_from_slice(&chunk[..n]),
                }
            };
            let head = std::str::from_utf8(&buf[..head_end])
                .map_err(|_| bad("response head is not UTF-8"))?
                .to_string();
            let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
            let status_line = lines.next().unwrap_or_default();
            let status: u16 = status_line
                .split_ascii_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("bad status line"))?;
            let mut headers = Vec::new();
            for line in lines {
                if line.is_empty() {
                    continue;
                }
                if let Some((name, value)) = line.split_once(':') {
                    headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
                }
            }
            let content_length: usize = headers
                .iter()
                .find(|(n, _)| n == "content-length")
                .and_then(|(_, v)| v.parse().ok())
                .ok_or_else(|| bad("missing content-length"))?;
            let body_start = head_end + head_terminator_len(&buf, head_end);
            let mut body = buf.split_off(body_start);
            while body.len() < content_length {
                let mut chunk = [0u8; 4096];
                match self.stream.read(&mut chunk)? {
                    0 => return Err(bad("connection closed mid-body")),
                    n => body.extend_from_slice(&chunk[..n]),
                }
            }
            body.truncate(content_length);
            Ok(ClientResponse { status, headers, body })
        }
    }

    /// One-shot convenience: connect, request, disconnect.
    pub fn request_once(
        addr: &str,
        method: &str,
        path: &str,
        body: &[u8],
        timeout: Duration,
    ) -> std::io::Result<ClientResponse> {
        HttpClient::connect(addr, timeout)?.request(method, path, body)
    }
}
