//! Workload generation: random ground queries and synthetic programs /
//! constraint systems for the scaling benchmarks.

use argus_linear::{Constraint, ConstraintSystem, LinExpr, Rat};
use argus_logic::term::Term;
use argus_prng::Rng64;

/// A deterministic RNG for reproducible workloads.
pub fn rng(seed: u64) -> Rng64 {
    Rng64::new(seed)
}

/// A random proper list of `len` small integer atoms.
pub fn random_int_list(r: &mut Rng64, len: usize) -> Term {
    Term::list((0..len).map(|_| Term::int(r.range_i64(0, 99))))
}

/// A random proper list of lowercase atoms.
pub fn random_atom_list(r: &mut Rng64, len: usize) -> Term {
    const ATOMS: &[&str] = &["a", "b", "c", "d", "e", "f", "g", "h"];
    Term::list((0..len).map(|_| Term::atom(*r.pick(ATOMS))))
}

/// A unary natural `s^n(z)`.
pub fn nat(n: usize) -> Term {
    (0..n).fold(Term::atom("z"), |acc, _| Term::app("s", vec![acc]))
}

/// A random binary tree with `n` internal nodes carrying integer labels.
pub fn random_tree(r: &mut Rng64, n: usize) -> Term {
    if n == 0 {
        return Term::atom("leaf");
    }
    let left = r.range_usize(0, n - 1);
    let right = n - 1 - left;
    Term::app(
        "node",
        vec![random_tree(r, left), Term::int(r.range_i64(0, 99)), random_tree(r, right)],
    )
}

/// A synthetic `append`-chain program with `depth` chained predicates:
/// `p0` calls `p1` twice, … — used to scale the number of SCCs and the
/// imported-constraint load for the analysis benchmarks.
pub fn chained_append_program(depth: usize) -> String {
    let mut out = String::new();
    out.push_str("app([], Ys, Ys).\napp([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n");
    for i in 0..depth {
        let callee = if i + 1 == depth {
            "app(Xs, [x], Ys)".to_string()
        } else {
            format!("p{}(Xs, Ys)", i + 1)
        };
        out.push_str(&format!(
            "p{i}([], []).\np{i}([X|Xs], [X|Ys]) :- {callee}, p{i}(Xs, Ws), app(Ws, [], Ys2), eat(Ys2).\n"
        ));
    }
    out.push_str("eat(_).\n");
    out
}

/// A *wide* synthetic program: `layers × width` independent predicates
/// arranged so that each layer's predicates only call predicates in the
/// next layer. All SCCs within a layer are mutually independent — the
/// workload the level-scheduled parallel analysis pipeline is built for.
pub fn wide_scc_program(layers: usize, width: usize) -> String {
    let mut out = String::new();
    out.push_str("app([], Ys, Ys).\napp([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n");
    for l in 0..layers {
        for w in 0..width {
            let callee = if l + 1 == layers {
                "app(Xs, [x], Ys)".to_string()
            } else {
                // Fan into the next layer (wrap around its width).
                format!("q{}_{}(Xs, Ys)", l + 1, w % width)
            };
            out.push_str(&format!(
                "q{l}_{w}([], []).\nq{l}_{w}([X|Xs], [X|Ys]) :- {callee}, q{l}_{w}(Xs, Zs), app(Zs, [], Ys).\n"
            ));
        }
    }
    out
}

/// A mutual-recursion ring of `preds` predicates where each recursive rule
/// makes `calls` staggered calls to the next ring member and sums the
/// results with chained `plus/3` subgoals (a generalized tetranacci). The
/// staggered call depths give every ring member a many-facet inferred size
/// relation, which makes the Fourier–Motzkin projections inside both the
/// size-relation inference and the pair analysis combinatorially dense —
/// the FM-redundancy stress workload. `preds = 3, calls = 4` reproduces
/// the `mutual_fib_ring` corpus entry.
pub fn mutual_fib_ring_program(preds: usize, calls: usize) -> String {
    assert!(preds >= 2 && calls >= 2);
    let mut out = String::new();
    out.push_str("plus(z, Y, Y).\nplus(s(X), Y, s(Z)) :- plus(X, Y, Z).\n");
    let wrap = |depth: usize, core: &str| {
        let mut t = core.to_string();
        for _ in 0..depth {
            t = format!("s({t})");
        }
        t
    };
    for p in 0..preds {
        // Base cases f(z,z), f(s(z),s(z)), then f(s^k(z), s(z)) up to the
        // recursion depth so the recursive rule is never underivable.
        out.push_str(&format!("f{p}(z, z).\nf{p}(s(z), s(z)).\n"));
        for k in 2..calls {
            out.push_str(&format!("f{p}({}, s(z)).\n", wrap(k, "z")));
        }
        let q = (p + 1) % preds;
        let mut body: Vec<String> =
            (0..calls).map(|i| format!("f{q}({}, A{i})", wrap(calls - 1 - i, "N"))).collect();
        let mut acc = "A0".to_string();
        for i in 1..calls {
            let next = if i + 1 == calls { "R".to_string() } else { format!("T{i}") };
            body.push(format!("plus({acc}, A{i}, {next})"));
            acc = next;
        }
        out.push_str(&format!("f{p}({}, R) :- {}.\n", wrap(calls, "N"), body.join(", ")));
    }
    out
}

/// A random dense constraint system over `nvars` variables with `nrows`
/// rows and coefficients in `[-bound, bound]` — the FM/simplex scaling
/// workload.
pub fn random_system(r: &mut Rng64, nvars: usize, nrows: usize, bound: i64) -> ConstraintSystem {
    let mut sys = ConstraintSystem::new();
    for _ in 0..nrows {
        let mut e = LinExpr::constant(Rat::from_int(r.range_i64(-bound, bound)));
        for v in 0..nvars {
            let c = r.range_i64(-bound, bound);
            e.add_term(v, Rat::from_int(c));
        }
        sys.push(Constraint { expr: e, rel: argus_linear::Rel::Le });
    }
    sys
}

/// A feasible random system (random rows all satisfied by a random point,
/// by correcting the constant) — useful to benchmark the *feasible* path
/// of the solvers, whose cost profile differs from infeasible inputs.
pub fn random_feasible_system(
    r: &mut Rng64,
    nvars: usize,
    nrows: usize,
    bound: i64,
) -> ConstraintSystem {
    let point: Vec<i64> = (0..nvars).map(|_| r.range_i64(0, bound)).collect();
    let mut sys = ConstraintSystem::new();
    for _ in 0..nrows {
        let mut e = LinExpr::zero();
        let mut lhs = 0i64;
        for (v, pv) in point.iter().enumerate() {
            let c = r.range_i64(-bound, bound);
            e.add_term(v, Rat::from_int(c));
            lhs += c * pv;
        }
        // lhs + const <= 0  =>  const <= -lhs; pick a slack of up to bound.
        let slack = r.range_i64(0, bound);
        e.add_constant(&Rat::from_int(-lhs - slack));
        sys.push(Constraint { expr: e, rel: argus_linear::Rel::Le });
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn lists_have_requested_length() {
        let mut r = rng(1);
        let l = random_int_list(&mut r, 5);
        assert_eq!(l.as_proper_list().unwrap().len(), 5);
        let a = random_atom_list(&mut r, 3);
        assert_eq!(a.as_proper_list().unwrap().len(), 3);
    }

    #[test]
    fn nats_have_requested_depth() {
        assert_eq!(nat(0).to_string(), "z");
        assert_eq!(nat(3).to_string(), "s(s(s(z)))");
    }

    #[test]
    fn trees_have_requested_size() {
        fn internal(t: &Term) -> usize {
            match t {
                Term::App(f, args) if &**f == "node" => 1 + internal(&args[0]) + internal(&args[2]),
                _ => 0,
            }
        }
        let mut r = rng(2);
        for n in [0, 1, 7, 20] {
            assert_eq!(internal(&random_tree(&mut r, n)), n);
        }
    }

    #[test]
    fn chained_program_parses_and_analyzes() {
        let src = chained_append_program(3);
        let p = argus_logic::parser::parse_program(&src).unwrap();
        assert!(p.rules.len() >= 8);
    }

    #[test]
    fn wide_program_parses() {
        let src = wide_scc_program(2, 3);
        let p = argus_logic::parser::parse_program(&src).unwrap();
        // 2 app rules + 2 per predicate × 6 predicates.
        assert_eq!(p.rules.len(), 2 + 2 * 6);
    }

    #[test]
    fn ring_program_matches_corpus_entry() {
        // preds = 3, calls = 4 must reproduce the committed corpus source
        // modulo whitespace, so the generator and the corpus entry cannot
        // drift apart.
        let generated = mutual_fib_ring_program(3, 4);
        let corpus = argus_corpus::find("mutual_fib_ring").unwrap().source;
        let canon = |s: &str| s.split_whitespace().collect::<String>();
        assert_eq!(canon(&generated), canon(corpus));
    }

    #[test]
    fn ring_program_parses_at_other_sizes() {
        for (preds, calls) in [(2, 2), (3, 3), (4, 5)] {
            let src = mutual_fib_ring_program(preds, calls);
            let p = argus_logic::parser::parse_program(&src).unwrap();
            // plus: 2 rules; per predicate: `calls` base cases + 1 recursive.
            assert_eq!(p.rules.len(), 2 + preds * (calls + 1), "{src}");
        }
    }

    #[test]
    fn feasible_system_is_feasible() {
        let mut r = rng(3);
        for _ in 0..10 {
            let sys = random_feasible_system(&mut r, 4, 6, 5);
            // Must be satisfiable with nonneg vars (the generating point is
            // nonnegative).
            let nn: BTreeSet<usize> = (0..4).collect();
            assert!(argus_linear::simplex::feasible_point(&sys, &nn).is_some());
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let a = random_int_list(&mut rng(42), 4);
        let b = random_int_list(&mut rng(42), 4);
        assert_eq!(a, b);
    }
}
