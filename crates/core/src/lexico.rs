//! Lexicographic extension of the linear-decrease method.
//!
//! The paper's §7 concedes that a *single* nonnegative linear combination
//! cannot capture every terminating recursion — Ackermann's function, with
//! its "first argument decreases OR stays equal while the second
//! decreases" shape, is the canonical miss. The standard follow-on (known
//! from later work on linear ranking functions) is a **lexicographic
//! tuple** of the paper's measures:
//!
//! 1. find θ-vectors (one per SCC predicate) under which *every* rule ×
//!    recursive-subgoal pair is non-increasing (`θᵀx ≥ βᵀy`) and at least
//!    one pair strictly decreases (`θᵀx ≥ βᵀy + 1`);
//! 2. discharge every pair that strictly decreases under the found level;
//! 3. repeat on the remaining pairs with a fresh level.
//!
//! If all pairs are discharged, the tuple `(θ¹, θ², …)` ranks every
//! recursive call lexicographically: the discharged level strictly drops
//! while all earlier levels are non-increasing, and each level is bounded
//! below by 0 — a well-founded descent. Every intermediate question is
//! the same dual construction as the base method, with δ = 1 for the
//! strict pair and δ = 0 for the rest, so the machinery of §4 is reused
//! verbatim.

use crate::dual::{eq9_system, feasibility_system, project_pair, DeltaTerm};
use crate::pairs::RuleSubgoalSystem;
use crate::theta::ThetaSpace;
use argus_linear::{LpOutcome, LpProblem, Rat, Var};
use argus_logic::modes::ModeMap;
use argus_logic::{Norm, PredKey};
use std::collections::BTreeMap;

/// One level of a lexicographic ranking: θ coefficients per predicate.
pub type Level = BTreeMap<PredKey, Vec<Rat>>;

/// A successful lexicographic proof.
#[derive(Debug, Clone)]
pub struct LexicographicProof {
    /// Ranking levels, outermost first.
    pub levels: Vec<Level>,
    /// For each rule × subgoal pair `(rule_index, subgoal_index)`, the
    /// level (0-based) at which it was discharged.
    pub discharged_at: BTreeMap<(usize, usize), usize>,
}

/// Attempt a lexicographic proof for the given pairs.
///
/// `space` must already contain every SCC member. Returns `None` when some
/// round can make no pair strictly decrease while keeping the rest
/// non-increasing.
pub fn prove_lexicographic(
    members: &[PredKey],
    pairs: &[RuleSubgoalSystem],
    space: &ThetaSpace,
) -> Option<LexicographicProof> {
    let mut remaining: Vec<&RuleSubgoalSystem> = pairs.iter().collect();
    let mut levels: Vec<Level> = Vec::new();
    let mut discharged_at: BTreeMap<(usize, usize), usize> = BTreeMap::new();

    while !remaining.is_empty() {
        let level_index = levels.len();
        // Safety valve: no ranking needs more levels than pairs.
        if level_index > pairs.len() {
            return None;
        }
        let mut found: Option<(Level, Vec<bool>)> = None;

        // Try each remaining pair as the designated strict one.
        'candidates: for strict_idx in 0..remaining.len() {
            let mut projected = Vec::new();
            let mut w_base: Var = space.len();
            for (i, pair) in remaining.iter().enumerate() {
                let delta = if i == strict_idx { 1 } else { 0 };
                let (sys, w) = eq9_system(pair, space, w_base, DeltaTerm::Constant(delta));
                w_base += w.len();
                match project_pair(&sys, &w) {
                    Some(p) => projected.push(p),
                    None => continue 'candidates,
                }
            }
            let (theta_sys, nonneg) = feasibility_system(&projected, space);
            let Some(point) = argus_linear::simplex::feasible_point(&theta_sys, &nonneg) else {
                continue 'candidates;
            };
            let level = space.extract_witness(&point);
            // Which pairs strictly decrease under this θ? (Check each by
            // primal LP so we can discharge them all at once.)
            let strict: Vec<bool> =
                remaining.iter().map(|pair| pair_strictly_decreases(pair, &level)).collect();
            debug_assert!(strict[strict_idx], "designated pair must be strict");
            found = Some((level, strict));
            break;
        }

        let (level, strict) = found?;
        let mut next_remaining = Vec::new();
        for (pair, is_strict) in remaining.into_iter().zip(strict) {
            if is_strict {
                discharged_at.insert((pair.rule_index, pair.subgoal_index), level_index);
            } else {
                next_remaining.push(pair);
            }
        }
        levels.push(level);
        remaining = next_remaining;
    }

    let _ = members;
    Some(LexicographicProof { levels, discharged_at })
}

/// Does `θᵀx − βᵀy ≥ 1` hold over the pair's Eq. (1) region for the given
/// level? Decided by primal LP (exact).
fn pair_strictly_decreases(pair: &RuleSubgoalSystem, level: &Level) -> bool {
    let Some(theta) = level.get(&pair.head_pred) else { return false };
    let Some(beta) = level.get(&pair.sub_pred) else { return false };
    let (primal, x_vars, y_vars, _) = crate::pairs::primal_system(pair);
    let mut objective = argus_linear::LinExpr::zero();
    for (i, &xv) in x_vars.iter().enumerate() {
        objective.add_term(xv, theta[i].clone());
    }
    for (j, &yv) in y_vars.iter().enumerate() {
        objective.add_term(yv, -beta[j].clone());
    }
    let nonneg = primal.vars().into_iter().collect();
    match (LpProblem { objective, constraints: primal, nonneg }).solve() {
        LpOutcome::Infeasible => true, // vacuous
        LpOutcome::Optimal { value, .. } => value >= Rat::one(),
        LpOutcome::Unbounded => false,
    }
}

/// Convenience driver: build pairs for one SCC of `program` and attempt a
/// lexicographic proof. Returns `None` for nonrecursive SCCs too (nothing
/// to prove).
pub fn prove_scc_lexicographic(
    program: &argus_logic::Program,
    graph: &argus_logic::DepGraph,
    scc_id: usize,
    modes: &ModeMap,
    rels: &argus_sizerel::SizeRelations,
    norm: Norm,
) -> Option<LexicographicProof> {
    let members: Vec<PredKey> = graph.scc(scc_id);
    let mut space = ThetaSpace::new();
    for p in &members {
        let bound = modes.get(p).map(|a| a.bound_positions().len()).unwrap_or(p.arity);
        space.add_pred(p, bound);
    }
    let mut pairs = Vec::new();
    for (ri, rule) in graph.scc_rules(program, scc_id).iter().enumerate() {
        for si in graph.recursive_subgoals(rule) {
            pairs.push(crate::pairs::build_pair_with_norm(rule, ri, si, modes, rels, norm));
        }
    }
    if pairs.is_empty() {
        return Some(LexicographicProof { levels: Vec::new(), discharged_at: BTreeMap::new() });
    }
    prove_lexicographic(&members, &pairs, &space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_logic::parser::parse_program;
    use argus_logic::{Adornment, DepGraph};
    use argus_sizerel::{infer_size_relations, InferOptions};

    /// Run the lexicographic prover on the SCC of `pred` in `src`.
    fn prove(src: &str, pred: &str, arity: usize, adn: &str) -> Option<LexicographicProof> {
        let program = parse_program(src).unwrap();
        let adorned = argus_logic::adorn_program(
            &program,
            &PredKey::new(pred, arity),
            Adornment::parse(adn).unwrap(),
        );
        let rels = infer_size_relations(&adorned.program, &InferOptions::default());
        let graph = DepGraph::build(&adorned.program);
        let scc_id = graph.scc_id(&adorned.query)?;
        prove_scc_lexicographic(
            &adorned.program,
            &graph,
            scc_id,
            &adorned.modes,
            &rels,
            Norm::StructuralSize,
        )
    }

    /// Ackermann — the paper's method fails (§7); the lexicographic
    /// extension proves it with two levels: arg1 outer, arg2 inner.
    #[test]
    fn ackermann_proved_lexicographically() {
        let proof = prove(
            "ack(z, N, s(N)).\n\
             ack(s(M), z, R) :- ack(M, s(z), R).\n\
             ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).",
            "ack",
            3,
            "bbf",
        )
        .expect("lexicographic proof exists");
        assert!(
            proof.levels.len() >= 2,
            "Ackermann needs at least two levels, got {}",
            proof.levels.len()
        );
        assert_eq!(proof.discharged_at.len(), 3, "three rule × subgoal pairs");
    }

    /// Single-level cases: programs the base method proves need exactly
    /// one lexicographic level.
    #[test]
    fn base_method_cases_take_one_level() {
        for (src, pred, arity, adn) in [
            (
                "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
                "append",
                3,
                "bff",
            ),
            (
                "merge([], Ys, Ys).\n\
                 merge(Xs, [], Xs).\n\
                 merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
                 merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).",
                "merge",
                3,
                "bbf",
            ),
        ] {
            let proof = prove(src, pred, arity, adn).expect("provable");
            assert_eq!(proof.levels.len(), 1, "{pred} takes one level");
        }
    }

    /// Loops still fail: no level can make any pair strict.
    #[test]
    fn loops_still_unprovable() {
        assert!(prove("p(X) :- p(X).", "p", 1, "b").is_none());
        assert!(prove("p([]).\np([X|Xs]) :- p([a, X|Xs]).", "p", 1, "b").is_none());
    }

    /// A hand-built two-level case: outer argument controls an inner
    /// restart (like Ackermann but first-order on lists).
    #[test]
    fn nested_restart_two_levels() {
        // outer list shrinks on rule 2 while the inner may grow back.
        let proof = prove(
            "w([], []).\n\
             w([_|Os], Is) :- w(Os, [a, a, a]).\n\
             w(Os, [_|Is]) :- w(Os, Is).",
            "w",
            2,
            "bb",
        )
        .expect("two-level ranking exists");
        assert_eq!(proof.levels.len(), 2);
    }

    /// The discharged levels really form a valid certificate: re-check the
    /// lexicographic conditions pairwise.
    #[test]
    fn levels_satisfy_lexicographic_conditions() {
        let src = "ack(z, N, s(N)).\n\
                   ack(s(M), z, R) :- ack(M, s(z), R).\n\
                   ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).";
        let program = parse_program(src).unwrap();
        let adorned = argus_logic::adorn_program(
            &program,
            &PredKey::new("ack", 3),
            Adornment::parse("bbf").unwrap(),
        );
        let rels = infer_size_relations(&adorned.program, &InferOptions::default());
        let graph = DepGraph::build(&adorned.program);
        let scc_id = graph.scc_id(&adorned.query).unwrap();
        let proof = prove_scc_lexicographic(
            &adorned.program,
            &graph,
            scc_id,
            &adorned.modes,
            &rels,
            Norm::StructuralSize,
        )
        .unwrap();

        // Recompute every pair and check: strict at its discharge level,
        // and non-increasing at all earlier levels.
        let mut pairs = Vec::new();
        for (ri, rule) in graph.scc_rules(&adorned.program, scc_id).iter().enumerate() {
            for si in graph.recursive_subgoals(rule) {
                pairs.push(crate::pairs::build_pair_with_norm(
                    rule,
                    ri,
                    si,
                    &adorned.modes,
                    &rels,
                    Norm::StructuralSize,
                ));
            }
        }
        for pair in &pairs {
            let lvl = proof.discharged_at[&(pair.rule_index, pair.subgoal_index)];
            assert!(pair_strictly_decreases(pair, &proof.levels[lvl]));
            for earlier in &proof.levels[..lvl] {
                // Non-increase: min(θᵀx − βᵀy) ≥ 0.
                let theta = &earlier[&pair.head_pred];
                let beta = &earlier[&pair.sub_pred];
                let (primal, x_vars, y_vars, _) = crate::pairs::primal_system(pair);
                let mut objective = argus_linear::LinExpr::zero();
                for (i, &xv) in x_vars.iter().enumerate() {
                    objective.add_term(xv, theta[i].clone());
                }
                for (j, &yv) in y_vars.iter().enumerate() {
                    objective.add_term(yv, -beta[j].clone());
                }
                let nonneg = primal.vars().into_iter().collect();
                match (LpProblem { objective, constraints: primal, nonneg }).solve() {
                    LpOutcome::Infeasible => {}
                    LpOutcome::Optimal { value, .. } => {
                        assert!(!value.is_negative(), "earlier level increased");
                    }
                    LpOutcome::Unbounded => panic!("earlier level unbounded below"),
                }
            }
        }
    }
}
