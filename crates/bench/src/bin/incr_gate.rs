//! `incr_gate` — regression gate for incremental re-analysis.
//!
//! Reads a bench report containing the `incremental` suite and fails if
//! the memo stops cutting the work down. Checks, per size label found in
//! the report:
//!
//! * **Dirty-cone floor** — a one-clause warm edit must recompute fewer
//!   than 10% of the program's SCC computations (`dirty_sccs * 10 <
//!   total_sccs`). This is the structural claim: invalidation stays a
//!   cone, not a flood.
//! * **No-op floor** — resubmitting the unchanged program must recompute
//!   nothing (`dirty_sccs == 0`).
//! * **Warm speedup** (50k lane only, when present) — the warm edit must
//!   re-analyze at least [`WARM_SPEEDUP_50K_FLOOR`]× faster than the
//!   from-scratch analysis of the same edited program. Smaller labels are
//!   not wall-clock-gated: at smoke sizes the non-memoized per-run work
//!   (parsing-adjacent setup, adornment, SCC condensation) is a larger
//!   share of the total, and CI machines are noisy.
//!
//! Usage: `incr_gate [PATH]` (default `BENCH_argus.json`).

use argus_bench::json::{scan_num_field, scan_str_field};
use std::collections::BTreeMap;

/// Required cold/warm ratio on the 50k-clause lane. Measured ~200× on the
/// reference runner; 10× is the committed claim.
const WARM_SPEEDUP_50K_FLOOR: f64 = 10.0;

fn counter(samples: &BTreeMap<String, String>, id: &str, key: &str) -> Result<f64, String> {
    let line = samples.get(id).ok_or_else(|| format!("sample `{id}` missing from report"))?;
    scan_num_field(line, key).ok_or_else(|| format!("sample `{id}` has no field `{key}`"))
}

fn run(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut samples = BTreeMap::new();
    let mut labels: Vec<String> = Vec::new();
    for line in text.lines() {
        if let Some(id) = scan_str_field(line, "id") {
            if let Some(label) = id.strip_prefix("incremental/warm-edit/") {
                labels.push(label.to_string());
            }
            samples.insert(id, line.to_string());
        }
    }
    if labels.is_empty() {
        return Err(format!("no incremental/warm-edit samples found in {path}"));
    }

    let mut failures = Vec::new();
    for label in &labels {
        let edit_id = format!("incremental/warm-edit/{label}");
        let dirty = counter(&samples, &edit_id, "dirty_sccs")?;
        let total = counter(&samples, &edit_id, "total_sccs")?;
        let ok = total > 0.0 && dirty * 10.0 < total;
        eprintln!(
            "incr_gate: {} {edit_id} dirty cone = {dirty:.0} of {total:.0} (floor < 10%)",
            if ok { "ok  " } else { "FAIL" }
        );
        if !ok {
            failures.push(format!("{edit_id} dirty cone {dirty:.0}/{total:.0} is not < 10%"));
        }

        let noop_id = format!("incremental/warm-noop/{label}");
        let noop_dirty = counter(&samples, &noop_id, "dirty_sccs")?;
        let ok = noop_dirty == 0.0;
        eprintln!(
            "incr_gate: {} {noop_id} dirty cone = {noop_dirty:.0} (must be 0)",
            if ok { "ok  " } else { "FAIL" }
        );
        if !ok {
            failures.push(format!("{noop_id} recomputed {noop_dirty:.0} SCC computation(s)"));
        }

        if label == "50k" {
            let cold_ns = counter(&samples, "incremental/cold/50k", "ns_per_iter")?;
            let warm_ns = counter(&samples, &edit_id, "ns_per_iter")?;
            let speedup = if warm_ns > 0.0 { cold_ns / warm_ns } else { f64::INFINITY };
            let ok = speedup >= WARM_SPEEDUP_50K_FLOOR;
            eprintln!(
                "incr_gate: {} incremental/50k warm speedup = {speedup:.1}x \
                 (floor {WARM_SPEEDUP_50K_FLOOR}x)",
                if ok { "ok  " } else { "FAIL" }
            );
            if !ok {
                failures.push(format!(
                    "50k warm edit only {speedup:.1}x faster than cold (floor \
                     {WARM_SPEEDUP_50K_FLOOR}x)"
                ));
            }
        }
    }
    Ok(failures)
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_argus.json".to_string());
    match run(&path) {
        Ok(failures) if failures.is_empty() => {
            eprintln!("incr_gate: dirty-cone and speedup floors hold ({path})");
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("incr_gate: FAIL {f}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("incr_gate: {e}");
            std::process::exit(1);
        }
    }
}
