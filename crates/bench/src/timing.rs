//! Fixed-iteration micro-bench timing.
//!
//! Replaces the statistical harness with something predictable enough for
//! CI smoke runs: each case runs a fixed warmup then a fixed number of
//! timed iterations, and reports mean wall time per iteration. No outlier
//! rejection — the numbers in `BENCH_argus.json` are snapshots, and the
//! ≥2× deltas this repo tracks dwarf scheduler noise.

use std::time::Instant;

/// One timed case.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Suite this case belongs to (e.g. "simplex").
    pub suite: String,
    /// Case name within the suite (e.g. "feasible/simplex/4").
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Workload-specific counters (e.g. FM row statistics), emitted into
    /// `BENCH_argus.json` alongside the timing so regressions in *work
    /// done* are pinned, not just wall time. Deterministic by construction
    /// — they must not vary run to run the way timings do.
    pub counters: Vec<(&'static str, u64)>,
}

impl Sample {
    /// Fully-qualified case id, used to match baseline entries.
    pub fn id(&self) -> String {
        format!("{}/{}", self.suite, self.name)
    }

    /// Attach deterministic counters to the sample.
    pub fn with_counters(mut self, counters: Vec<(&'static str, u64)>) -> Sample {
        self.counters = counters;
        self
    }
}

/// Time `f` for `iters` iterations (after `warmup` untimed ones) and
/// record it under `suite`/`name`. The closure's result is returned from
/// the last iteration so the compiler cannot discard the work.
pub fn bench_case<R>(
    suite: &str,
    name: &str,
    warmup: u32,
    iters: u32,
    mut f: impl FnMut() -> R,
) -> Sample {
    assert!(iters > 0);
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    Sample {
        suite: suite.to_string(),
        name: name.to_string(),
        iters,
        ns_per_iter: total.as_nanos() as f64 / iters as f64,
        counters: Vec::new(),
    }
}

/// Render a human-readable line for a sample.
pub fn render_line(s: &Sample) -> String {
    let ns = s.ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    };
    format!("{:<44} {:>10}  ({} iters)", s.id(), human, s.iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_case_counts_iterations() {
        let mut n = 0u64;
        let s = bench_case("t", "count", 2, 5, || {
            n += 1;
            n
        });
        assert_eq!(n, 7, "warmup + timed iterations");
        assert_eq!(s.iters, 5);
        assert!(s.ns_per_iter >= 0.0);
        assert_eq!(s.id(), "t/count");
    }

    #[test]
    fn render_is_stable() {
        let s = Sample {
            suite: "a".into(),
            name: "b".into(),
            iters: 3,
            ns_per_iter: 1500.0,
            counters: Vec::new(),
        };
        let line = render_line(&s);
        assert!(line.contains("a/b"), "{line}");
        assert!(line.contains("1.50 µs"), "{line}");
    }
}
