//! # argus-corpus — the evaluation corpus
//!
//! Every program the experiments run on: the paper's four worked examples
//! (3.1 `perm`, 5.1 `merge`, 6.1 expression parser, A.1), classic list and
//! tree programs, arithmetic programs, and deliberately nonterminating
//! controls. Each entry records the queried predicate and adornment, the
//! ground-truth termination behaviour of that mode, what this library's
//! analyzer is expected to prove (a regression pin — the method is sound
//! but incomplete, so `terminates = true, expected_provable = false` is a
//! legitimate combination), and concrete sample queries for the empirical
//! validation experiment (E6).

#![warn(missing_docs)]

use argus_logic::parser::{parse_program, ParseError};
use argus_logic::Program;

/// One corpus program with its analysis metadata.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Unique short name.
    pub name: &'static str,
    /// Prolog source text.
    pub source: &'static str,
    /// Query predicate as `name/arity`.
    pub query: &'static str,
    /// Bound–free adornment of the query (e.g. `"bf"`).
    pub adornment: &'static str,
    /// Ground truth: does top-down evaluation of this mode terminate on
    /// all queries (finite search tree)?
    pub terminates: bool,
    /// Regression pin: does THIS library's analyzer prove it?
    pub expected_provable: bool,
    /// Paper reference, when the program comes from the paper.
    pub paper_ref: Option<&'static str>,
    /// One-line description.
    pub description: &'static str,
    /// Concrete queries (with the declared mode's bound arguments ground)
    /// for empirical validation.
    pub sample_queries: &'static [&'static str],
}

impl CorpusEntry {
    /// Parse the program source.
    pub fn program(&self) -> Result<Program, ParseError> {
        parse_program(self.source)
    }

    /// The query as a `(PredKey, Adornment)` pair.
    pub fn query_key(&self) -> (argus_logic::PredKey, argus_logic::Adornment) {
        let (name, arity) = self.query.rsplit_once('/').expect("name/arity");
        let arity: usize = arity.parse().expect("arity");
        (
            argus_logic::PredKey::new(name, arity),
            argus_logic::Adornment::parse(self.adornment).expect("adornment"),
        )
    }
}

/// The full corpus.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "append_bff",
            source: APPEND,
            query: "append/3",
            adornment: "bff",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "list concatenation, input list bound",
            sample_queries: &[
                "append([], [x], Z)",
                "append([a, b, c], W, Z)",
                "append([a, b, c, d, e, f], [g], Z)",
            ],
        },
        CorpusEntry {
            name: "append_ffb",
            source: APPEND,
            query: "append/3",
            adornment: "ffb",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "list splitting, output list bound (all splits enumerated)",
            sample_queries: &[
                "append(X, Y, [])",
                "append(X, Y, [a, b, c])",
                "append(X, Y, [a, b, c, d, e, f, g])",
            ],
        },
        CorpusEntry {
            name: "append_fff",
            source: APPEND,
            query: "append/3",
            adornment: "fff",
            terminates: false,
            expected_provable: false,
            paper_ref: None,
            description: "append as an unbounded generator (no argument bound)",
            sample_queries: &["append(X, Y, Z)"],
        },
        CorpusEntry {
            name: "perm",
            source: PERM,
            query: "perm/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: Some("Example 3.1 / 4.1"),
            description: "permutation generation via double append; needs the \
                          3-variable append size relation (no earlier method proves it)",
            sample_queries: &["perm([], Q)", "perm([a, b, c], Q)", "perm([a, b, c, d], Q)"],
        },
        CorpusEntry {
            name: "merge",
            source: MERGE,
            query: "merge/3",
            adornment: "bbf",
            terminates: true,
            expected_provable: true,
            paper_ref: Some("Example 5.1"),
            description: "ordered merge; the SUM of the two bound arguments decreases \
                          while neither decreases alone",
            sample_queries: &[
                "merge([], [], Z)",
                "merge([1, 3, 5], [2, 4], Z)",
                "merge([1, 2, 3, 4], [1, 2, 3, 4, 5], Z)",
            ],
        },
        CorpusEntry {
            name: "expr_parser",
            source: PARSER,
            query: "e/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: Some("Example 6.1"),
            description: "recursive-descent arithmetic expression parser: mutual AND \
                          nonlinear recursion with delta bookkeeping",
            sample_queries: &[
                "e([7], T)",
                "e([7, '+', 8], T)",
                "e(['(', 7, '+', 8, ')', '*', 9], T)",
            ],
        },
        CorpusEntry {
            name: "appendix_a1",
            source: APPENDIX_A1,
            query: "p/1",
            adornment: "b",
            terminates: true,
            expected_provable: true,
            paper_ref: Some("Example A.1"),
            description: "apparent mutual recursion with constant argument size; \
                          provable only after safe unfolding + predicate splitting",
            sample_queries: &["p(g(c))", "p(g(g(c)))", "p(f(c))"],
        },
        CorpusEntry {
            name: "naive_reverse",
            source: NAIVE_REVERSE,
            query: "nrev/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "quadratic list reversal through append",
            sample_queries: &["nrev([], R)", "nrev([a, b, c, d], R)"],
        },
        CorpusEntry {
            name: "reverse_acc",
            source: REVERSE_ACC,
            query: "reverse/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "linear reversal with an accumulator",
            sample_queries: &["reverse([], R)", "reverse([a, b, c, d, e], R)"],
        },
        CorpusEntry {
            name: "quicksort",
            source: QUICKSORT,
            query: "qsort/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "nonlinear divide and conquer; needs partition's size relation (§6.2)",
            sample_queries: &["qsort([], S)", "qsort([3, 1, 4, 1, 5, 9, 2, 6], S)"],
        },
        CorpusEntry {
            name: "mergesort",
            source: MERGESORT,
            query: "msort/2",
            adornment: "bf",
            terminates: true,
            expected_provable: false,
            paper_ref: None,
            description: "mergesort with alternating split — terminates, but the strict \
                          shrinkage of both halves needs reasoning beyond a convex \
                          linear size relation (a known incompleteness of the method)",
            sample_queries: &["msort([], S)", "msort([3, 1, 2], S)"],
        },
        CorpusEntry {
            name: "ackermann",
            source: ACKERMANN,
            query: "ack/3",
            adornment: "bbf",
            terminates: true,
            expected_provable: false,
            paper_ref: None,
            description: "Ackermann's function: terminates by lexicographic descent, \
                          which no single linear combination captures (§7 limitation)",
            sample_queries: &["ack(z, s(z), R)", "ack(s(s(z)), s(s(z)), R)"],
        },
        CorpusEntry {
            name: "even_odd",
            source: EVEN_ODD,
            query: "even/1",
            adornment: "b",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "textbook mutual recursion over unary naturals",
            sample_queries: &["even(z)", "even(s(s(s(s(z)))))", "even(s(z))"],
        },
        CorpusEntry {
            name: "tree_mirror",
            source: TREE_MIRROR,
            query: "mirror/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "binary tree mirroring: nonlinear structural recursion",
            sample_queries: &["mirror(leaf, M)", "mirror(node(node(leaf, a, leaf), b, leaf), M)"],
        },
        CorpusEntry {
            name: "tree_insert",
            source: TREE_INSERT,
            query: "insert/3",
            adornment: "bbf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "ordered binary tree insertion",
            sample_queries: &[
                "insert(5, leaf, T)",
                "insert(3, node(node(leaf, 2, leaf), 4, leaf), T)",
            ],
        },
        CorpusEntry {
            name: "hanoi",
            source: HANOI,
            query: "hanoi/5",
            adornment: "bbbbf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "towers of Hanoi: exponential but terminating nonlinear recursion",
            sample_queries: &["hanoi(s(s(z)), a, b, c, M)", "hanoi(s(s(s(z))), a, b, c, M)"],
        },
        CorpusEntry {
            name: "list_sum",
            source: LIST_SUM,
            query: "sum/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "fold with arithmetic (is/2) over a bound list",
            sample_queries: &["sum([], S)", "sum([1, 2, 3, 4, 5], S)"],
        },
        CorpusEntry {
            name: "member_check",
            source: MEMBER,
            query: "member/2",
            adornment: "fb",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "membership with the list bound (element may be free)",
            sample_queries: &["member(X, [a, b, c])", "member(b, [a, b, c])"],
        },
        CorpusEntry {
            name: "select_delete",
            source: SELECT,
            query: "select/3",
            adornment: "fbf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "nondeterministic element selection from a bound list",
            sample_queries: &["select(X, [a, b, c], R)"],
        },
        CorpusEntry {
            name: "flatten_acc",
            source: FLATTEN,
            query: "flatten/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "tree-of-lists flattening via append (3-variable constraint showcase)",
            sample_queries: &["flatten(nested(nested(lf(a), lf(b)), lf(c)), F)"],
        },
        CorpusEntry {
            name: "transitive_closure",
            source: TRANSITIVE_CLOSURE,
            query: "tc/2",
            adornment: "bf",
            terminates: false,
            expected_provable: false,
            paper_ref: Some("§1 capture-rule motivation"),
            description: "graph reachability over a cyclic EDB: loops top-down, converges \
                          bottom-up — the capture-rule scenario",
            sample_queries: &["tc(a, Y)"],
        },
        CorpusEntry {
            name: "loop_direct",
            source: LOOP_DIRECT,
            query: "p/1",
            adornment: "b",
            terminates: false,
            expected_provable: false,
            paper_ref: None,
            description: "the trivial direct loop (control; nothing may prove it)",
            sample_queries: &["p(a)"],
        },
        CorpusEntry {
            name: "loop_mutual",
            source: LOOP_MUTUAL,
            query: "p/1",
            adornment: "b",
            terminates: false,
            expected_provable: false,
            paper_ref: Some("§6.1 step 3"),
            description: "mutual loop with no size change: the zero-weight-cycle report",
            sample_queries: &["p(a)"],
        },
        CorpusEntry {
            name: "loop_growing",
            source: LOOP_GROWING,
            query: "p/1",
            adornment: "b",
            terminates: false,
            expected_provable: false,
            paper_ref: None,
            description: "recursion that grows its own argument",
            sample_queries: &["p([a])"],
        },
        CorpusEntry {
            name: "nat_minus",
            source: NAT_MINUS,
            query: "minus/3",
            adornment: "bbf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "subtraction on unary naturals (simultaneous descent)",
            sample_queries: &["minus(s(s(s(z))), s(z), D)"],
        },
        CorpusEntry {
            name: "perm_select",
            source: PERM_SELECT,
            query: "perm2/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "permutations via select/3 — like Example 3.1, provable only \
                          through a three-variable size relation (|L| = 2 + |X| + |R|)",
            sample_queries: &["perm2([], Q)", "perm2([a, b, c], Q)"],
        },
        CorpusEntry {
            name: "dutch_flag",
            source: DUTCH_FLAG,
            query: "distribute/4",
            adornment: "bfff",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "three-way partition (Dutch national flag)",
            sample_queries: &["distribute([r, w, b, r, w], R, W, B)"],
        },
        CorpusEntry {
            name: "fib_nat",
            source: FIB_NAT,
            query: "fib/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "Fibonacci on unary naturals: nonlinear recursion with \
                          simultaneous shallow descents",
            sample_queries: &["fib(z, F)", "fib(s(s(s(s(z)))), F)"],
        },
        CorpusEntry {
            name: "nat_arith",
            source: NAT_ARITH,
            query: "mult/3",
            adornment: "bbf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "multiplication via addition on unary naturals (layered SCCs)",
            sample_queries: &["mult(s(s(z)), s(s(s(z))), P)"],
        },
        CorpusEntry {
            name: "palindrome",
            source: PALINDROME,
            query: "palindrome/1",
            adornment: "b",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "palindrome test via accumulator reverse",
            sample_queries: &["palindrome([a, b, a])", "palindrome([a, b])"],
        },
        CorpusEntry {
            name: "sublist_gen",
            source: SUBLIST,
            query: "sublist/2",
            adornment: "fb",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "subsequence enumeration from a bound list",
            sample_queries: &["sublist(S, [a, b, c])"],
        },
        CorpusEntry {
            name: "tree_sum",
            source: TREE_SUM,
            query: "tsum/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "nonlinear tree fold with arithmetic",
            sample_queries: &["tsum(node(node(leaf, 1, leaf), 2, node(leaf, 3, leaf)), S)"],
        },
        CorpusEntry {
            name: "left_recursive_grammar",
            source: LEFT_RECURSION,
            query: "expr/2",
            adornment: "bf",
            terminates: false,
            expected_provable: false,
            paper_ref: Some("§7 (termination by unification failure is out of scope)"),
            description: "left-recursive grammar: the classic Prolog nonterminating parser",
            sample_queries: &["expr([n, '+', n], R)"],
        },
        CorpusEntry {
            name: "zip_pairs",
            source: ZIP,
            query: "zip/3",
            adornment: "bbf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "simultaneous descent over two bound lists",
            sample_queries: &["zip([a, b], [1, 2], Z)"],
        },
        CorpusEntry {
            name: "mutual_fib_ring",
            source: MUTUAL_FIB_RING,
            query: "f0/2",
            adornment: "bf",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "tetranacci over a 3-predicate mutual-recursion ring; the \
                          staggered call depths give every predicate a many-facet \
                          size relation, making this the corpus's FM stress test \
                          (projections blow up without redundancy elimination)",
            sample_queries: &[
                "f0(z, R)",
                "f0(s(s(s(s(s(z))))), R)",
                "f0(s(s(s(s(s(s(s(z))))))), R)",
            ],
        },
        CorpusEntry {
            name: "sct_lex_reset",
            source: SCT_LEX_RESET,
            query: "d/2",
            adornment: "bb",
            terminates: true,
            expected_provable: false,
            paper_ref: None,
            description: "lexicographic descent with a doubling reset of the minor \
                          argument: the θ-method is infeasible (any weight on arg2 \
                          is defeated by the 2× reset), while size-change \
                          termination proves it from the per-call graphs",
            sample_queries: &["d(z, z)", "d(s(s(z)), s(z))", "d(s(z), s(s(z)))"],
        },
        CorpusEntry {
            name: "sct_lex_reset_append",
            source: SCT_LEX_RESET_APPEND,
            query: "w/2",
            adornment: "bb",
            terminates: true,
            expected_provable: false,
            paper_ref: None,
            description: "list-norm variant of the reset pattern: the minor argument \
                          is reset through append's 3-variable size relation \
                          (|Zs| = 2|Ys|); SCT-provable, θ-infeasible",
            sample_queries: &["w(z, [])", "w(s(z), [a])", "w(s(s(z)), [a, b])"],
        },
        CorpusEntry {
            name: "sct_lex_reset_mutual",
            source: SCT_LEX_RESET_MUTUAL,
            query: "pm/2",
            adornment: "bb",
            terminates: true,
            expected_provable: false,
            paper_ref: None,
            description: "the reset pattern spread over a 2-predicate mutual ring: \
                          size-change graphs compose across the ring and prove it; \
                          the θ-system forces both arg2 weights to zero and fails",
            sample_queries: &["pm(z, z)", "pm(s(z), s(z))", "pm(s(s(z)), s(z))"],
        },
        CorpusEntry {
            name: "theta_crossed_descent",
            source: THETA_CROSSED,
            query: "m/2",
            adornment: "bb",
            terminates: true,
            expected_provable: true,
            paper_ref: None,
            description: "crossed growth: each rule grows one argument while \
                          shrinking the other by two, so x1 + x2 decreases (θ \
                          proves it) but no single argument pair descends — the \
                          size-change closure's idempotents have no strict \
                          self-edge",
            sample_queries: &["m(z, s(z))", "m(s(s(z)), s(s(s(z))))", "m(s(s(s(z))), s(s(z)))"],
        },
    ]
}

/// Look up an entry by name.
pub fn find(name: &str) -> Option<CorpusEntry> {
    corpus().into_iter().find(|e| e.name == name)
}

/// Names of all entries whose mode terminates (ground truth).
pub fn terminating_names() -> Vec<&'static str> {
    corpus().iter().filter(|e| e.terminates).map(|e| e.name).collect()
}

/// Hand-checked termination conditions the backwards inference (`argus
/// infer`) must reproduce: `(entry name, predicate spec, condition)`,
/// with the condition in the `Dnf` rendering (`"arg1 bound or arg3
/// bound"`). Not every entry is listed — only those whose conditions were
/// verified by hand against the program semantics, as regression pins.
pub fn expected_conditions() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("append_bff", "append/3", "arg1 bound or arg3 bound"),
        ("perm", "perm/2", "arg1 bound"),
        ("perm", "append/3", "arg1 bound or arg3 bound"),
        ("reverse_acc", "reverse/2", "arg1 bound"),
        ("reverse_acc", "rev/3", "arg1 bound"),
        ("mutual_fib_ring", "f0/2", "arg1 bound"),
        ("mutual_fib_ring", "f1/2", "arg1 bound"),
        ("mutual_fib_ring", "f2/2", "arg1 bound"),
        ("mutual_fib_ring", "plus/3", "arg1 bound or arg3 bound"),
    ]
}

// ---------------------------------------------------------------- sources

const APPEND: &str = "\
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
";

const PERM: &str = "\
perm([], []).
perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
";

const MERGE: &str = "\
merge([], Ys, Ys).
merge(Xs, [], Xs).
merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
";

const PARSER: &str = "\
e(L, T) :- t(L, ['+'|C]), e(C, T).
e(L, T) :- t(L, T).
t(L, T) :- n(L, ['*'|C]), t(C, T).
t(L, T) :- n(L, T).
n(['('|A], T) :- e(A, [')'|T]).
n([L|T], T) :- z(L).
z(7).
z(8).
z(9).
";

const APPENDIX_A1: &str = "\
p(g(X)) :- e(X).
p(g(X)) :- q(f(X)).
q(Y) :- p(Y).
q(f(Z)) :- p(Z), q(Z).
e(c).
";

const NAIVE_REVERSE: &str = "\
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
nrev([], []).
nrev([X|Xs], R) :- nrev(Xs, R1), app(R1, [X], R).
";

const REVERSE_ACC: &str = "\
reverse(Xs, Ys) :- rev(Xs, [], Ys).
rev([], Acc, Acc).
rev([X|Xs], Acc, Ys) :- rev(Xs, [X|Acc], Ys).
";

const QUICKSORT: &str = "\
qsort([], []).
qsort([X|Xs], S) :- part(Xs, X, L, G), qsort(L, SL), qsort(G, SG), app(SL, [X|SG], S).
part([], _, [], []).
part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).
part([Y|Ys], X, L, [Y|G]) :- Y > X, part(Ys, X, L, G).
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
";

const MERGESORT: &str = "\
msort([], []).
msort([X], [X]).
msort([X, Y|R], S) :- split([X, Y|R], L1, L2), msort(L1, S1), msort(L2, S2), merge(S1, S2, S).
split([], [], []).
split([X|Xs], [X|O], E) :- split(Xs, E, O).
merge([], Ys, Ys).
merge(Xs, [], Xs).
merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
";

const ACKERMANN: &str = "\
ack(z, N, s(N)).
ack(s(M), z, R) :- ack(M, s(z), R).
ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).
";

const EVEN_ODD: &str = "\
even(z).
even(s(N)) :- odd(N).
odd(s(N)) :- even(N).
";

const TREE_MIRROR: &str = "\
mirror(leaf, leaf).
mirror(node(L, X, R), node(RM, X, LM)) :- mirror(R, RM), mirror(L, LM).
";

const TREE_INSERT: &str = "\
insert(X, leaf, node(leaf, X, leaf)).
insert(X, node(L, Y, R), node(L1, Y, R)) :- X =< Y, insert(X, L, L1).
insert(X, node(L, Y, R), node(L, Y, R1)) :- X > Y, insert(X, R, R1).
";

const HANOI: &str = "\
hanoi(z, _, _, _, []).
hanoi(s(N), From, To, Via, Moves) :-
    hanoi(N, From, Via, To, M1),
    hanoi(N, Via, To, From, M2),
    app(M1, [move(From, To)|M2], Moves).
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
";

const LIST_SUM: &str = "\
sum([], 0).
sum([X|Xs], S) :- sum(Xs, S1), S is S1 + X.
";

const MEMBER: &str = "\
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
";

const SELECT: &str = "\
select(X, [X|Xs], Xs).
select(X, [Y|Ys], [Y|Zs]) :- select(X, Ys, Zs).
";

const FLATTEN: &str = "\
flatten(lf(X), [X]).
flatten(nested(L, R), F) :- flatten(L, FL), flatten(R, FR), app(FL, FR, F).
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
";

const TRANSITIVE_CLOSURE: &str = "\
edge(a, b).
edge(b, c).
edge(c, a).
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
";

const LOOP_DIRECT: &str = "\
p(X) :- p(X).
p(a).
";

const LOOP_MUTUAL: &str = "\
p(X) :- q(X).
q(X) :- p(X).
";

const LOOP_GROWING: &str = "\
p([]).
p([X|Xs]) :- p([a, X|Xs]).
";

const NAT_MINUS: &str = "\
minus(X, z, X).
minus(s(X), s(Y), Z) :- minus(X, Y, Z).
";

const ZIP: &str = "\
zip([], [], []).
zip([X|Xs], [Y|Ys], [pair(X, Y)|Zs]) :- zip(Xs, Ys, Zs).
";

// Kept in sync with `argus_bench::workload::mutual_fib_ring_program(3, 4)`
// (a bench test guards against drift).
const MUTUAL_FIB_RING: &str = "\
plus(z, Y, Y).
plus(s(X), Y, s(Z)) :- plus(X, Y, Z).
f0(z, z).
f0(s(z), s(z)).
f0(s(s(z)), s(z)).
f0(s(s(s(z))), s(z)).
f0(s(s(s(s(N)))), R) :- f1(s(s(s(N))), A0), f1(s(s(N)), A1), f1(s(N), A2), f1(N, A3),
                        plus(A0, A1, T1), plus(T1, A2, T2), plus(T2, A3, R).
f1(z, z).
f1(s(z), s(z)).
f1(s(s(z)), s(z)).
f1(s(s(s(z))), s(z)).
f1(s(s(s(s(N)))), R) :- f2(s(s(s(N))), A0), f2(s(s(N)), A1), f2(s(N), A2), f2(N, A3),
                        plus(A0, A1, T1), plus(T1, A2, T2), plus(T2, A3, R).
f2(z, z).
f2(s(z), s(z)).
f2(s(s(z)), s(z)).
f2(s(s(s(z))), s(z)).
f2(s(s(s(s(N)))), R) :- f0(s(s(s(N))), A0), f0(s(s(N)), A1), f0(s(N), A2), f0(N, A3),
                        plus(A0, A1, T1), plus(T1, A2, T2), plus(T2, A3, R).
";

const PERM_SELECT: &str = "\
perm2([], []).
perm2(L, [X|P]) :- select(X, L, R), perm2(R, P).
select(X, [X|Xs], Xs).
select(X, [Y|Ys], [Y|Zs]) :- select(X, Ys, Zs).
";

const DUTCH_FLAG: &str = "\
distribute([], [], [], []).
distribute([r|Xs], [r|R], W, B) :- distribute(Xs, R, W, B).
distribute([w|Xs], R, [w|W], B) :- distribute(Xs, R, W, B).
distribute([b|Xs], R, W, [b|B]) :- distribute(Xs, R, W, B).
";

const FIB_NAT: &str = "\
fib(z, z).
fib(s(z), s(z)).
fib(s(s(N)), F) :- fib(s(N), F1), fib(N, F2), plus(F1, F2, F).
plus(z, Y, Y).
plus(s(X), Y, s(Z)) :- plus(X, Y, Z).
";

const NAT_ARITH: &str = "\
plus(z, Y, Y).
plus(s(X), Y, s(Z)) :- plus(X, Y, Z).
mult(z, _, z).
mult(s(X), Y, Z) :- mult(X, Y, W), plus(W, Y, Z).
";

const PALINDROME: &str = "\
palindrome(Xs) :- rev(Xs, [], Xs).
rev([], Acc, Acc).
rev([X|Xs], Acc, Ys) :- rev(Xs, [X|Acc], Ys).
";

const SUBLIST: &str = "\
sublist([], []).
sublist([X|S], [X|Xs]) :- sublist(S, Xs).
sublist(S, [_|Xs]) :- sublist(S, Xs).
";

const TREE_SUM: &str = "\
tsum(leaf, 0).
tsum(node(L, X, R), S) :- tsum(L, SL), tsum(R, SR), S is SL + SR + X.
";

const LEFT_RECURSION: &str = "\
expr(L, R) :- expr(L, M), eat_plus(M, M1), term(M1, R).
expr(L, R) :- term(L, R).
term([n|R], R).
eat_plus(['+'|R], R).
";

const SCT_LEX_RESET: &str = "\
double(z, z).
double(s(N), s(s(M))) :- double(N, M).
d(z, Y).
d(s(X), Y) :- double(Y, A), d(X, A).
d(X, s(Y)) :- d(X, Y).
";

const SCT_LEX_RESET_APPEND: &str = "\
app([], Ys, Ys).
app([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).
w(z, Ys).
w(s(X), Ys) :- app(Ys, Ys, Zs), w(X, Zs).
w(X, [Y|Ys]) :- w(X, Ys).
";

const SCT_LEX_RESET_MUTUAL: &str = "\
double(z, z).
double(s(N), s(s(M))) :- double(N, M).
pm(z, Y).
pm(s(X), Y) :- double(Y, A), qm(X, A).
pm(X, s(Y)) :- qm(X, Y).
qm(z, Y).
qm(s(X), Y) :- double(Y, A), pm(X, A).
qm(X, s(Y)) :- pm(X, Y).
";

const THETA_CROSSED: &str = "\
m(z, Y).
m(X, z).
m(X, s(s(Y))) :- m(s(X), Y).
m(s(s(X)), Y) :- m(X, s(Y)).
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_entries_parse() {
        for e in corpus() {
            let p = e.program().unwrap_or_else(|err| panic!("{}: {err}", e.name));
            assert!(!p.rules.is_empty(), "{} has rules", e.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = corpus().iter().map(|e| e.name).collect();
        let n = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn query_keys_resolve() {
        for e in corpus() {
            let (key, adn) = e.query_key();
            assert_eq!(key.arity, adn.arity(), "{}", e.name);
            let p = e.program().unwrap();
            assert!(p.idb_predicates().contains(&key), "{}: query {key} not defined", e.name);
        }
    }

    #[test]
    fn sample_queries_parse() {
        for e in corpus() {
            for q in e.sample_queries {
                argus_logic::parser::parse_query(q)
                    .unwrap_or_else(|err| panic!("{}: {q}: {err}", e.name));
            }
        }
    }

    #[test]
    fn provable_implies_terminating() {
        // Soundness of the metadata itself: we never expect to prove a
        // nonterminating mode.
        for e in corpus() {
            if e.expected_provable {
                assert!(e.terminates, "{}: provable but not terminating?!", e.name);
            }
        }
    }

    #[test]
    fn find_works() {
        assert!(find("perm").is_some());
        assert!(find("nonexistent").is_none());
        assert_eq!(find("perm").unwrap().paper_ref, Some("Example 3.1 / 4.1"));
    }

    #[test]
    fn paper_examples_present() {
        let refs: Vec<_> = corpus().iter().filter_map(|e| e.paper_ref).collect();
        assert!(refs.iter().any(|r| r.contains("3.1")));
        assert!(refs.iter().any(|r| r.contains("5.1")));
        assert!(refs.iter().any(|r| r.contains("6.1")));
        assert!(refs.iter().any(|r| r.contains("A.1")));
    }
}
