//! # argus-lsp — a zero-dependency Language Server Protocol server
//!
//! `argus serve` answers IDE-shaped traffic over HTTP; this crate speaks
//! the protocol editors actually use. It is a std-only LSP 3.x server
//! over stdio — JSON-RPC 2.0 with `Content-Length` framing, reusing
//! [`argus_serve::jsonval`] for parsing — that turns every keystroke
//! into live diagnostics:
//!
//! * **Diagnostics** — the full `argus lint` battery (L000–L011) plus
//!   the termination blame of the Sohn & Van Gelder analysis, published
//!   on every (debounced) edit with the same codes, messages, and spans
//!   as `argus lint --json` (converted to UTF-16 ranges by
//!   `argus_diag::lsp`; raw byte offsets ride along under `data`).
//! * **Hover** — the inferred minimal-DNF termination condition of the
//!   predicate under the cursor (`` `append/3` terminates if **arg1
//!   bound or arg3 bound** ``), via the backwards analysis of
//!   `argus_core::backwards`.
//! * **Incrementality** — every re-analysis runs through the per-SCC
//!   memo ([`argus_core::incremental::SccCache`]), so an edit recomputes
//!   only the dirty SCC cone; a `$/argus/stats` notification after each
//!   publish exposes the memo counters, which the `lsp` bench suite and
//!   the `lsp_gate` CI floor pin.
//!
//! The transport is abstract (`Read` + `Write`), so the same
//! [`run_server`] loop serves production stdio (`argus lsp`), the
//! in-process loopback pair of [`spawn_in_process`] (tests, benches),
//! and a spawned child's pipes (the `lsp_session` CI lane). The
//! scripted-session client in [`client`] mirrors `argus_serve`'s test
//! client.

#![warn(missing_docs)]

pub mod client;
pub mod docs;
pub mod framing;
pub mod rpc;
pub mod server;

pub use client::LspClient;
pub use docs::{DocStore, Document};
pub use framing::{read_frame, write_frame, FrameError, FrameLimits};
pub use server::{run_server, LspOptions};

use std::net::{Shutdown, TcpListener, TcpStream};

/// The client's write half of the loopback pair. Half-closes the socket
/// on drop so the server sees EOF even while the client's reader thread
/// still holds a duplicated handle to the same stream.
struct WriteHalf(TcpStream);

impl std::io::Write for WriteHalf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

impl Drop for WriteHalf {
    fn drop(&mut self) {
        let _ = self.0.shutdown(Shutdown::Write);
    }
}

/// Run a server on a background thread over a loopback socket pair and
/// return a connected [`LspClient`] plus the server's join handle (which
/// yields the exit code). Deterministic in-process harness for tests and
/// benches; production uses [`run_server`] over stdio.
pub fn spawn_in_process(options: LspOptions) -> (LspClient, std::thread::JoinHandle<i32>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let client_stream = TcpStream::connect(addr).expect("connect loopback");
    let (server_stream, _) = listener.accept().expect("accept loopback");
    for s in [&client_stream, &server_stream] {
        s.set_nodelay(true).ok();
    }
    let server_reader = server_stream.try_clone().expect("clone server stream");
    let handle = std::thread::spawn(move || run_server(server_reader, server_stream, options));
    let client_reader = client_stream.try_clone().expect("clone client stream");
    (LspClient::new(client_reader, WriteHalf(client_stream)), handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_serve::jsonval::Json;

    fn diag_codes(params: &Json) -> Vec<String> {
        params
            .get("diagnostics")
            .and_then(Json::as_array)
            .unwrap_or_default()
            .iter()
            .filter_map(|d| d.get("code").and_then(Json::as_str).map(str::to_string))
            .collect()
    }

    #[test]
    fn session_lifecycle_publishes_diagnostics() {
        let (mut client, handle) = spawn_in_process(LspOptions::default());
        let caps = client.initialize(None);
        assert_eq!(
            caps.get("capabilities")
                .and_then(|c| c.get("textDocumentSync"))
                .and_then(|s| s.get("change"))
                .and_then(Json::as_u64),
            Some(2),
            "incremental sync is advertised"
        );

        let uri = "file:///demo.pl";
        client.did_open(uri, 1, "main :- q(a).\n");
        let publish = client.wait_publish(uri, 1);
        assert_eq!(diag_codes(&publish), vec!["L002"], "q/1 is undefined");
        let stats = client.wait_stats(uri, 1);
        assert!(stats.get("elapsed_us").and_then(Json::as_u64).is_some());

        // Fix the program with an incremental edit appending a clause.
        client.did_change_range(uri, 2, ((1, 0), (1, 0)), "q(a).\n");
        let publish = client.wait_publish(uri, 2);
        assert!(diag_codes(&publish).is_empty(), "{publish:?}");

        // Closing clears diagnostics.
        client.did_close(uri);
        let (_, cleared) = client.wait_notification(|m, p| {
            m == "textDocument/publishDiagnostics"
                && p.get("uri").and_then(Json::as_str) == Some(uri)
                && p.get("version").is_none()
        });
        assert_eq!(cleared.get("diagnostics"), Some(&Json::Arr(Vec::new())));

        client.shutdown_exit();
        assert_eq!(handle.join().unwrap(), 0, "orderly shutdown exits 0");
    }

    #[test]
    fn moded_lints_follow_the_query_directive() {
        let (mut client, handle) = spawn_in_process(LspOptions::default());
        client.initialize(None);
        let uri = "file:///grow.pl";
        let src = "grow([], _).\ngrow([X|Xs], Ys) :- grow([X, X|Xs], Ys).\n\
                   % argus query: grow/2 bf\n";
        client.did_open(uri, 1, src);
        let publish = client.wait_publish(uri, 1);
        assert!(diag_codes(&publish).contains(&"L009".to_string()), "{publish:?}");
        client.shutdown_exit();
        assert_eq!(handle.join().unwrap(), 0);
    }

    #[test]
    fn initialization_options_set_the_default_query() {
        let (mut client, handle) = spawn_in_process(LspOptions::default());
        client.initialize(Some("{\"query\":\"grow/2\",\"mode\":\"bf\"}"));
        let uri = "file:///grow.pl";
        client.did_open(uri, 1, "grow([], _).\ngrow([X|Xs], Ys) :- grow([X, X|Xs], Ys).\n");
        let publish = client.wait_publish(uri, 1);
        assert!(diag_codes(&publish).contains(&"L009".to_string()), "{publish:?}");
        client.shutdown_exit();
        assert_eq!(handle.join().unwrap(), 0);
    }

    #[test]
    fn hover_reports_the_inferred_condition() {
        let (mut client, handle) = spawn_in_process(LspOptions::default());
        client.initialize(None);
        let uri = "file:///append.pl";
        let src = "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n";
        client.did_open(uri, 1, src);
        client.wait_publish(uri, 1);
        // Hover over the recursive call on line 1.
        let hover = client.hover(uri, 1, 31);
        let value = hover
            .get("contents")
            .and_then(|c| c.get("value"))
            .and_then(Json::as_str)
            .expect("markdown contents");
        assert!(value.contains("append/3"), "{value}");
        assert!(value.contains("arg1 bound or arg3 bound"), "{value}");
        // Hovering whitespace yields null.
        let nothing = client.hover(uri, 0, 19);
        assert_eq!(nothing, Json::Null);
        client.shutdown_exit();
        assert_eq!(handle.join().unwrap(), 0);
    }

    #[test]
    fn unknown_requests_error_and_unknown_notifications_are_ignored() {
        let (mut client, handle) = spawn_in_process(LspOptions::default());
        client.initialize(None);
        client.notify("$/setTrace", "{\"value\":\"off\"}"); // ignored
        let err = client.request("workspace/symbol", "{}").unwrap_err();
        assert_eq!(err.0, rpc::METHOD_NOT_FOUND);
        client.shutdown_exit();
        assert_eq!(handle.join().unwrap(), 0);
    }

    #[test]
    fn exit_without_shutdown_is_code_1() {
        let (mut client, handle) = spawn_in_process(LspOptions::default());
        client.initialize(None);
        client.notify("exit", "null");
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn hostile_frames_do_not_kill_the_server() {
        let limits = FrameLimits { max_content_length: 1024, ..FrameLimits::default() };
        let (mut client, handle) = spawn_in_process(LspOptions { limits, ..LspOptions::default() });
        client.initialize(None);

        // Oversized Content-Length: drained + INVALID_REQUEST error.
        let big = "x".repeat(4096);
        client.send_bytes(format!("Content-Length: {}\r\n\r\n{big}", big.len()).as_bytes());
        let (_, err) = client.wait_error();
        assert_eq!(err, rpc::INVALID_REQUEST);

        // Garbage JSON in a well-formed frame: PARSE_ERROR.
        client.send_raw("this is not json");
        let (_, err) = client.wait_error();
        assert_eq!(err, rpc::PARSE_ERROR);

        // JSON that is not a JSON-RPC message: PARSE_ERROR, still alive.
        client.send_raw("[1,2,3]");
        let (_, err) = client.wait_error();
        assert_eq!(err, rpc::PARSE_ERROR);

        // The server survived all of it.
        let uri = "file:///ok.pl";
        client.did_open(uri, 1, "main :- p(a).\np(a).\n");
        let publish = client.wait_publish(uri, 1);
        assert!(diag_codes(&publish).is_empty());
        client.shutdown_exit();
        assert_eq!(handle.join().unwrap(), 0);
    }

    #[test]
    fn truncated_header_ends_the_session_gracefully() {
        let (mut client, handle) = spawn_in_process(LspOptions::default());
        client.initialize(None);
        client.send_bytes(b"Content-Length: 100\r\n"); // header never finishes
        drop(client); // EOF mid-header on the server side
        assert_eq!(handle.join().unwrap(), 1, "desynchronized stream exits 1, no panic");
    }

    #[test]
    fn debounce_coalesces_edit_bursts() {
        let (mut client, handle) =
            spawn_in_process(LspOptions { debounce_ms: 30, ..LspOptions::default() });
        client.initialize(None);
        let uri = "file:///burst.pl";
        client.did_open(uri, 1, "main :- p(a), q(b), r(c).\n");
        // Three rapid edits before any flush can happen.
        client.did_change_range(uri, 2, ((1, 0), (1, 0)), "p(a).\n");
        client.did_change_range(uri, 3, ((2, 0), (2, 0)), "q(b).\n");
        client.did_change_range(uri, 4, ((3, 0), (3, 0)), "r(c).\n");
        // The publish we get is for the final version: the burst
        // coalesced into one analysis (intermediate versions may have
        // been analyzed at most once before the burst was noticed).
        let publish = client.wait_publish(uri, 4);
        assert!(diag_codes(&publish).is_empty(), "{publish:?}");
        client.shutdown_exit();
        assert_eq!(handle.join().unwrap(), 0);
    }
}
