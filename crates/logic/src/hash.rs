//! Canonical content hashing of rules and terms.
//!
//! The incremental analyzer keys its per-SCC memo on the *content* of the
//! SCC's rules, so the hash must be stable across processes (interned
//! [`Sym`] ids are assigned in first-sight order and are not) and must
//! ignore source spans (re-indenting a file or editing an unrelated clause
//! shifts every later span without changing any analysis result). The
//! functions here therefore walk terms structurally, feeding symbol *names*
//! and arity/shape tags into an FNV-1a accumulator, and never look at
//! spans.
//!
//! Variable names are hashed literally: the analyzer's reports print call
//! atoms verbatim in blame messages, so alpha-renaming a clause is a real
//! output-visible change and must miss the cache.

use crate::program::{Atom, Literal, Rule};
use crate::term::Term;

/// Incremental FNV-1a (64-bit) accumulator.
///
/// FNV is not collision-resistant; memo layers that use these hashes as
/// lookup keys must store the full canonical key alongside the entry and
/// compare it on every hit (see `argus-core`'s incremental cache).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x1_0000_01b3);
        }
    }

    /// Absorb a length-prefixed string (prefixing prevents `"ab" + "c"`
    /// colliding with `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// Absorb a term: a shape tag, then the symbol name, then (for
/// applications) arity and arguments.
pub fn hash_term(h: &mut Fnv64, t: &Term) {
    match t {
        Term::Var(v) => {
            h.write(&[0x01]);
            h.write_str(v.as_str());
        }
        Term::App(f, args) => {
            h.write(&[0x02]);
            h.write_str(f.as_str());
            h.write_usize(args.len());
            for a in args {
                hash_term(h, a);
            }
        }
    }
}

/// Absorb an atom: predicate name, arity, argument terms. Spans are ignored.
pub fn hash_atom(h: &mut Fnv64, a: &Atom) {
    h.write_str(a.name.as_str());
    h.write_usize(a.args.len());
    for t in &a.args {
        hash_term(h, t);
    }
}

/// Absorb a literal: polarity tag, then the atom.
pub fn hash_literal(h: &mut Fnv64, l: &Literal) {
    h.write(&[if l.positive { 0x01 } else { 0x00 }]);
    hash_atom(h, &l.atom);
}

/// Absorb a whole rule: head, body length, body literals. Spans are
/// ignored, so shifting a clause within its file leaves the hash unchanged.
pub fn hash_rule(h: &mut Fnv64, r: &Rule) {
    hash_atom(h, &r.head);
    h.write_usize(r.body.len());
    for l in &r.body {
        hash_literal(h, l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn rule_digest(src: &str) -> u64 {
        let p = parse_program(src).unwrap();
        let mut h = Fnv64::new();
        hash_rule(&mut h, &p.rules[0]);
        h.finish()
    }

    #[test]
    fn span_transparent() {
        assert_eq!(rule_digest("p(X) :- q(X)."), rule_digest("% shifted\n\n   p(X)   :-   q(X)."),);
    }

    #[test]
    fn content_sensitive() {
        let base = rule_digest("p(X) :- q(X).");
        assert_ne!(base, rule_digest("p(X) :- r(X)."), "predicate rename");
        assert_ne!(base, rule_digest("p(Y) :- q(Y)."), "variable rename");
        assert_ne!(base, rule_digest("p(X) :- \\+ q(X)."), "polarity");
        assert_ne!(rule_digest("p(a, b)."), rule_digest("p(ab)."), "no concat collisions");
    }
}
