//! The space of distinguished θ variables.
//!
//! For every predicate `pᵢ` of the SCC under analysis, the paper designates
//! a nonnegative vector `θᵢ` with one component per *bound* argument of
//! `pᵢ` (§4). This module owns the mapping from predicates to contiguous LP
//! variable indices, and renders solutions back in the paper's notation.

use argus_linear::{Rat, Var, VarPool};
use argus_logic::PredKey;
use std::collections::BTreeMap;

/// Allocation of θ variables for the predicates of one SCC.
#[derive(Debug, Clone, Default)]
pub struct ThetaSpace {
    pool: VarPool,
    map: BTreeMap<PredKey, Vec<Var>>,
}

impl ThetaSpace {
    /// Empty space.
    pub fn new() -> ThetaSpace {
        ThetaSpace::default()
    }

    /// Register `pred` with `bound_count` bound arguments; allocates that
    /// many θ variables. Idempotent.
    pub fn add_pred(&mut self, pred: &PredKey, bound_count: usize) {
        if self.map.contains_key(pred) {
            return;
        }
        let vars: Vec<Var> = (0..bound_count)
            .map(|i| self.pool.fresh(format!("theta[{}][{}]", pred.name, i + 1)))
            .collect();
        self.map.insert(pred.clone(), vars);
    }

    /// The θ variables of `pred`.
    ///
    /// # Panics
    ///
    /// Panics if the predicate was never registered.
    pub fn vars(&self, pred: &PredKey) -> &[Var] {
        self.map
            .get(pred)
            .unwrap_or_else(|| panic!("predicate {pred} not registered in theta space"))
    }

    /// All θ variables, across predicates.
    pub fn all_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.map.values().flat_map(|v| v.iter().copied())
    }

    /// Total number of variables allocated.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True iff no variables allocated.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Registered predicates.
    pub fn preds(&self) -> impl Iterator<Item = &PredKey> {
        self.map.keys()
    }

    /// The variable pool (for rendering constraints with θ names).
    pub fn pool(&self) -> &VarPool {
        &self.pool
    }

    /// Extract the per-predicate θ vectors from an LP solution point
    /// (missing variables read as 0).
    pub fn extract_witness(&self, point: &BTreeMap<Var, Rat>) -> BTreeMap<PredKey, Vec<Rat>> {
        self.map
            .iter()
            .map(|(p, vars)| {
                let vals =
                    vars.iter().map(|v| point.get(v).cloned().unwrap_or_else(Rat::zero)).collect();
                (p.clone(), vals)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_contiguous_and_idempotent() {
        let mut s = ThetaSpace::new();
        let p = PredKey::new("p", 3);
        let q = PredKey::new("q", 2);
        s.add_pred(&p, 2);
        s.add_pred(&q, 1);
        s.add_pred(&p, 2); // idempotent
        assert_eq!(s.len(), 3);
        assert_eq!(s.vars(&p), &[0, 1]);
        assert_eq!(s.vars(&q), &[2]);
        assert_eq!(s.all_vars().count(), 3);
    }

    #[test]
    fn witness_extraction() {
        let mut s = ThetaSpace::new();
        let p = PredKey::new("p", 2);
        s.add_pred(&p, 2);
        let mut pt = BTreeMap::new();
        pt.insert(0usize, Rat::new(1.into(), 2.into()));
        // var 1 missing => 0
        let w = s.extract_witness(&pt);
        assert_eq!(w[&p], vec![Rat::new(1.into(), 2.into()), Rat::zero()]);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_pred_panics() {
        let s = ThetaSpace::new();
        let _ = s.vars(&PredKey::new("nope", 1));
    }

    #[test]
    fn names_render() {
        let mut s = ThetaSpace::new();
        let p = PredKey::new("perm", 2);
        s.add_pred(&p, 1);
        assert_eq!(s.pool().name(0), Some("theta[perm][1]"));
    }
}
