//! Diagnostic renderers: caret-annotated text and stable JSON.
//!
//! The text renderer follows the familiar compiler-diagnostic shape:
//!
//! ```text
//! warning[L001]: singleton variable `Ys`
//!   --> demo.pl:3:14
//!    |
//!  3 | bad_fact(X, 7).
//!    |          ^
//!    = note: prefix with `_` if intentional
//! ```
//!
//! The JSON renderer emits one object per diagnostic with a stable field
//! set (`code`, `severity`, `message`, `notes`, and — when spanned —
//! `line`, `col`, `start`, `end`), so golden-file tests and editor
//! integrations can key on it.

use crate::{Diagnostic, Severity};
use argus_logic::span::LineIndex;
use std::fmt::Write as _;

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn json_str(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

/// Render one diagnostic as caret-annotated text over `src`.
pub fn render_diagnostic(d: &Diagnostic, src: &str, file: &str, index: &LineIndex) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    if let Some(span) = d.span {
        let _ = writeln!(out, "  --> {file}:{}:{}", span.line, span.col);
        let text = index.line_text(src, span.line);
        let gutter_width = span.line.to_string().len().max(2);
        let _ = writeln!(out, "{:gutter_width$} |", "");
        let _ = writeln!(out, "{:>gutter_width$} | {text}", span.line);
        // Caret run: from the span's column, as many chars as the span
        // covers on its first line.
        let line_start = index.line_start(span.line).unwrap_or(0);
        let line_end = line_start + text.len();
        let caret_end = span.end.min(line_end).max(span.start);
        let carets = src.get(span.start..caret_end).map(|s| s.chars().count()).unwrap_or(1).max(1);
        let _ = writeln!(
            out,
            "{:gutter_width$} | {:pad$}{}",
            "",
            "",
            "^".repeat(carets),
            pad = span.col.saturating_sub(1),
        );
    }
    let gutter_width = d.span.map(|s| s.line.to_string().len().max(2)).unwrap_or(2);
    for note in &d.notes {
        let _ = writeln!(out, "{:gutter_width$} = note: {note}", "");
    }
    out
}

/// Render all diagnostics as text, with a trailing summary line.
pub fn render_text(diags: &[Diagnostic], src: &str, file: &str) -> String {
    let index = LineIndex::new(src);
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_diagnostic(d, src, file, &index));
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.iter().filter(|d| d.severity == Severity::Warning).count();
    let notes = diags.iter().filter(|d| d.severity == Severity::Note).count();
    if diags.is_empty() {
        let _ = writeln!(out, "{file}: clean (no diagnostics)");
    } else {
        let _ = writeln!(out, "{file}: {errors} error(s), {warnings} warning(s), {notes} note(s)");
    }
    out
}

/// Render all diagnostics as a stable JSON document.
///
/// Shape:
/// ```json
/// {
///   "file": "demo.pl",
///   "count": 2,
///   "diagnostics": [
///     {"code":"L001","severity":"warning","line":3,"col":14,
///      "start":40,"end":41,"message":"...","notes":["..."]}
///   ]
/// }
/// ```
pub fn render_json(diags: &[Diagnostic], file: &str) -> String {
    let mut items = Vec::with_capacity(diags.len());
    for d in diags {
        let mut fields = vec![
            format!("\"code\":{}", json_str(d.code)),
            format!("\"severity\":{}", json_str(d.severity.as_str())),
        ];
        if let Some(span) = d.span {
            fields.push(format!("\"line\":{}", span.line));
            fields.push(format!("\"col\":{}", span.col));
            fields.push(format!("\"start\":{}", span.start));
            fields.push(format!("\"end\":{}", span.end));
        }
        fields.push(format!("\"message\":{}", json_str(&d.message)));
        let notes: Vec<String> = d.notes.iter().map(|n| json_str(n)).collect();
        fields.push(format!("\"notes\":[{}]", notes.join(",")));
        items.push(format!("    {{{}}}", fields.join(",")));
    }
    format!(
        "{{\n  \"file\":{},\n  \"count\":{},\n  \"diagnostics\":[\n{}\n  ]\n}}\n",
        json_str(file),
        diags.len(),
        items.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, LintOptions};
    use argus_logic::span::Span;

    #[test]
    fn text_renderer_points_carets_at_the_span() {
        let src = "p(X) :- q(X).\n";
        let diags = lint_source(src, &LintOptions::default());
        let text = render_text(&diags, src, "demo.pl");
        assert!(text.contains("error[L002]"), "{text}");
        assert!(text.contains("--> demo.pl:1:9"), "{text}");
        assert!(text.contains("p(X) :- q(X)."), "{text}");
        // Four carets under `q(X)` starting at column 9.
        assert!(text.contains("\n   |         ^^^^\n"), "{text}");
    }

    #[test]
    fn text_renderer_handles_spanless_diagnostics() {
        let d = Diagnostic::new("L003", Severity::Warning, None, "orphan").with_note("why");
        let text = render_text(&[d], "", "x.pl");
        assert!(text.contains("warning[L003]: orphan"), "{text}");
        assert!(text.contains("= note: why"), "{text}");
        assert!(!text.contains("-->"), "{text}");
    }

    #[test]
    fn clean_run_renders_a_summary() {
        let text = render_text(&[], "p(a).\n", "ok.pl");
        assert_eq!(text, "ok.pl: clean (no diagnostics)\n");
    }

    #[test]
    fn json_renderer_is_stable_and_escaped() {
        let d =
            Diagnostic::new("L000", Severity::Error, Some(Span::new(3, 4, 1, 4)), "bad \"token\"")
                .with_note("a\nb");
        let json = render_json(&[d], "weird\\name.pl");
        assert!(json.contains("\"file\":\"weird\\\\name.pl\""), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        assert!(
            json.contains(
                "{\"code\":\"L000\",\"severity\":\"error\",\"line\":1,\"col\":4,\
                 \"start\":3,\"end\":4,\"message\":\"bad \\\"token\\\"\",\
                 \"notes\":[\"a\\nb\"]}"
            ),
            "{json}"
        );
    }

    #[test]
    fn json_renderer_omits_span_fields_when_absent() {
        let d = Diagnostic::new("L003", Severity::Warning, None, "orphan");
        let json = render_json(&[d], "x.pl");
        assert!(!json.contains("\"line\""), "{json}");
        assert!(json.contains("\"notes\":[]"), "{json}");
    }
}
