//! E6 — empirical soundness of the analyzer's verdicts.
//!
//! For every corpus program: run the analyzer, then run the SLD
//! interpreter on the entry's sample queries plus randomized queries of
//! growing size (for the list-typed programs). A `Terminates` verdict must
//! coincide with every run completing its whole search tree inside the
//! step budget; the nonterminating controls must exhaust it.

use argus_bench::workload;
use argus_bench::ExperimentLog;
use argus_core::{analyze, AnalysisOptions, Verdict};
use argus_interp::sld::{solve, InterpOptions};
use argus_logic::parser::parse_query;
use argus_logic::program::{Atom, Literal};
use argus_logic::Term;

/// Randomized queries for entries whose bound arguments are lists/nats.
fn generated_queries(name: &str, size: usize, seed: u64) -> Vec<Vec<Literal>> {
    let mut r = workload::rng(seed);
    let q = |atom: Atom| vec![Literal::pos(atom)];
    match name {
        "append_bff" => vec![q(Atom::new(
            "append",
            vec![workload::random_atom_list(&mut r, size), Term::var("W"), Term::var("Z")],
        ))],
        "append_ffb" => vec![q(Atom::new(
            "append",
            vec![Term::var("X"), Term::var("Y"), workload::random_atom_list(&mut r, size)],
        ))],
        "perm" => vec![q(Atom::new(
            "perm",
            vec![workload::random_atom_list(&mut r, size.min(5)), Term::var("Q")],
        ))],
        "merge" => vec![q(Atom::new(
            "merge",
            vec![
                workload::random_int_list(&mut r, size),
                workload::random_int_list(&mut r, size),
                Term::var("Z"),
            ],
        ))],
        "quicksort" => vec![q(Atom::new(
            "qsort",
            vec![workload::random_int_list(&mut r, size), Term::var("S")],
        ))],
        "naive_reverse" => vec![q(Atom::new(
            "nrev",
            vec![workload::random_atom_list(&mut r, size), Term::var("R")],
        ))],
        "tree_mirror" => {
            vec![q(Atom::new("mirror", vec![workload::random_tree(&mut r, size), Term::var("M")]))]
        }
        "even_odd" => vec![q(Atom::new("even", vec![workload::nat(size)]))],
        "nat_minus" => vec![q(Atom::new(
            "minus",
            vec![workload::nat(size + 2), workload::nat(size), Term::var("D")],
        ))],
        _ => Vec::new(),
    }
}

fn main() {
    let mut log = ExperimentLog::new(
        "E6",
        "verdict vs. observed behaviour under SLD execution",
        "§1 (capture rules need sound termination verdicts)",
        &["program", "verdict", "queries run", "all completed?", "max steps", "consistent?"],
    );

    let mut inconsistencies = Vec::new();
    for entry in argus_corpus::corpus() {
        let program = entry.program().expect("parse");
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
        let proved = report.verdict == Verdict::Terminates;

        let mut queries: Vec<Vec<Literal>> =
            entry.sample_queries.iter().map(|q| parse_query(q).expect("sample query")).collect();
        for size in [2usize, 4, 8] {
            queries.extend(generated_queries(entry.name, size, 1000 + size as u64));
        }

        let opts = InterpOptions { max_steps: 300_000, ..InterpOptions::default() };
        let mut all_completed = true;
        let mut max_steps = 0u64;
        let nqueries = queries.len();
        for goals in &queries {
            let out = solve(&program, goals, &opts);
            max_steps = max_steps.max(out.steps());
            if !out.terminated() {
                all_completed = false;
            }
        }
        // Soundness: proved => all complete. (The converse need not hold:
        // budget-bounded runs of nonterminating programs may also finish
        // small queries.)
        let consistent = !proved || all_completed;
        if !consistent {
            inconsistencies.push(entry.name);
        }
        log.row(&[
            entry.name.into(),
            format!("{:?}", report.verdict),
            nqueries.to_string(),
            if all_completed { "yes".into() } else { "no".into() },
            max_steps.to_string(),
            if consistent { "ok".into() } else { "VIOLATION".into() },
        ]);
    }

    log.note(
        "Soundness check: whenever the analyzer says Terminates, every sampled \
         query explores its full search tree within budget. Unknown verdicts \
         carry no claim either way.",
    );
    assert!(inconsistencies.is_empty(), "E6 soundness: {inconsistencies:?}");
    log.emit();
}
