//! End-to-end tests of the `argus` CLI binary.

use std::io::Write;
use std::process::Command;

fn argus() -> Command {
    Command::new(env!("CARGO_BIN_EXE_argus"))
}

fn temp_program(src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("argus-cli-test-{}-{}.pl", std::process::id(), src.len()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(src.as_bytes()).unwrap();
    path
}

const APPEND: &str = "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n";

#[test]
fn analyze_proved_exits_zero() {
    let path = temp_program(APPEND);
    let out = argus()
        .args(["analyze", path.to_str().unwrap(), "append/3", "bff", "--certify"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("Terminates"), "{stdout}");
    assert!(stdout.contains("certificate: VERIFIED"), "{stdout}");
}

#[test]
fn analyze_unproved_exits_two() {
    let path = temp_program("p(X) :- p(X).\n");
    let out = argus().args(["analyze", path.to_str().unwrap(), "p/1", "b"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn analyze_with_list_length_norm() {
    // Provable only under the list-length norm.
    let path = temp_program("p([]).\np([X]).\np([X, Y|Xs]) :- p([f(X, Y)|Xs]).\n");
    let structural =
        argus().args(["analyze", path.to_str().unwrap(), "p/1", "b"]).output().unwrap();
    assert_eq!(structural.status.code(), Some(2));
    let spine = argus()
        .args(["analyze", path.to_str().unwrap(), "p/1", "b", "--norm", "list-length"])
        .output()
        .unwrap();
    assert!(spine.status.success());
}

#[test]
fn run_executes_queries() {
    let path = temp_program(APPEND);
    let out =
        argus().args(["run", path.to_str().unwrap(), "append(X, Y, [a, b])"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("3 answer(s)"), "{stdout}");
}

#[test]
fn compare_lists_all_methods() {
    let path = temp_program(APPEND);
    let out =
        argus().args(["compare", path.to_str().unwrap(), "append/3", "bff"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Sohn-Van Gelder"), "{stdout}");
    assert!(stdout.contains("Naish"), "{stdout}");
}

#[test]
fn corpus_listing_and_fetch() {
    let out = argus().args(["corpus"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("perm"), "{stdout}");
    let one = argus().args(["corpus", "merge"]).output().unwrap();
    let stdout = String::from_utf8_lossy(&one.stdout);
    assert!(stdout.contains("merge([], Ys, Ys)"), "{stdout}");
    let missing = argus().args(["corpus", "zzz"]).output().unwrap();
    assert!(!missing.status.success());
}

#[test]
fn usage_on_bad_invocation() {
    let out = argus().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage"), "{err}");
}
