//! Randomized property tests for terms, parsing, and unification, driven
//! by a deterministic seeded generator (argus-prng) so failures reproduce
//! exactly and the suite needs no external crates.

use argus_logic::parser::{parse_program, parse_term};
use argus_logic::term::Term;
use argus_logic::unify::{mgu, Subst};
use argus_prng::Rng64;

/// Random ground-ish terms (variables included) with bounded depth —
/// mirrors the old proptest strategy: atoms / variables / small ints at
/// the leaves, `f|g|node` applications and cons cells inside.
fn gen_term(r: &mut Rng64, depth: usize) -> Term {
    if depth == 0 || r.below(3) == 0 {
        return match r.below(3) {
            0 => Term::atom(*r.pick(&["a", "b", "c", "nil"])),
            1 => Term::var(*r.pick(&["X", "Y", "Zs", "W"])),
            _ => Term::int(r.range_i64(-50, 49)),
        };
    }
    if r.bool() {
        let f = *r.pick(&["f", "g", "node"]);
        let nargs = r.range_usize(1, 2);
        Term::app(f, (0..nargs).map(|_| gen_term(r, depth - 1)).collect())
    } else {
        Term::cons(gen_term(r, depth - 1), gen_term(r, depth - 1))
    }
}

/// Like [`gen_term`], but the leaf atoms and functor names are chosen to
/// stress the printer's quoting logic: embedded quotes, operator names,
/// non-canonical integers, names that collide with list syntax.
fn gen_hostile_term(r: &mut Rng64, depth: usize) -> Term {
    const HOSTILE_ATOMS: &[&str] = &[
        "it's", "is", "03", "-0", "+", "-", "=", ":-", "[]", ".", "|", "a b", "Upper", "_under",
        "", "'", "''", "don''t", "0", "-7", "çedilla",
    ];
    const HOSTILE_FUNCTORS: &[&str] =
        &["f", "it's", "is", "[]", "3", "-1", ".", "=", "a b", "Upper", ""];
    if depth == 0 || r.below(3) == 0 {
        return match r.below(3) {
            0 => Term::atom(*r.pick(HOSTILE_ATOMS)),
            1 => Term::var(*r.pick(&["X", "Y", "Zs"])),
            _ => Term::int(r.range_i64(-50, 49)),
        };
    }
    if r.bool() {
        let f = *r.pick(HOSTILE_FUNCTORS);
        let nargs = r.range_usize(1, 2);
        Term::app(f, (0..nargs).map(|_| gen_hostile_term(r, depth - 1)).collect())
    } else {
        Term::cons(gen_hostile_term(r, depth - 1), gen_hostile_term(r, depth - 1))
    }
}

/// Display → parse is the identity even on atoms/functors that need
/// quoting and quote-escaping.
#[test]
fn hostile_term_display_parse_roundtrip() {
    let mut r = Rng64::new(0xBAD);
    for _ in 0..2_000 {
        let t = gen_hostile_term(&mut r, 3);
        let printed = t.to_string();
        let back =
            parse_term(&printed).unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        assert_eq!(back, t, "printed form was {printed:?}");
    }
}

/// Display → parse is the identity on terms.
#[test]
fn term_display_parse_roundtrip() {
    let mut r = Rng64::new(0x7E2);
    for _ in 0..500 {
        let t = gen_term(&mut r, 3);
        let printed = t.to_string();
        let back =
            parse_term(&printed).unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        assert_eq!(back, t);
    }
}

/// Ground terms have a size equal to their size polynomial's constant.
#[test]
fn ground_size_matches_polynomial() {
    let mut r = Rng64::new(0x601);
    for _ in 0..500 {
        let t = gen_term(&mut r, 3);
        let p = t.size_polynomial();
        match t.ground_size() {
            Some(s) => {
                assert!(t.is_ground());
                assert_eq!(p.coeffs.len(), 0);
                assert_eq!(s, p.constant);
            }
            None => assert!(!t.is_ground()),
        }
    }
}

/// The mgu, when it exists, actually unifies, and is idempotent.
#[test]
fn mgu_unifies_and_is_idempotent() {
    let mut r = Rng64::new(0x113);
    for _ in 0..500 {
        let a = gen_term(&mut r, 3);
        let b = gen_term(&mut r, 3);
        if let Some(s) = mgu(&a, &b, true) {
            let ra = s.resolve(&a);
            let rb = s.resolve(&b);
            assert_eq!(&ra, &rb);
            // Idempotence: resolving again changes nothing.
            assert_eq!(s.resolve(&ra), ra);
        }
    }
}

/// Unification is symmetric in success.
#[test]
fn unification_symmetric() {
    let mut r = Rng64::new(0x5CC);
    for _ in 0..500 {
        let a = gen_term(&mut r, 3);
        let b = gen_term(&mut r, 3);
        assert_eq!(mgu(&a, &b, true).is_some(), mgu(&b, &a, true).is_some());
    }
}

/// A renamed-apart copy always unifies with the original when the
/// original's variables don't clash (grounding both sides of fresh
/// names), and renaming preserves the size polynomial constant.
#[test]
fn rename_preserves_structure() {
    let mut rr = Rng64::new(0x4E4);
    for _ in 0..500 {
        let t = gen_term(&mut rr, 3);
        let r = t.rename_suffix("_fresh");
        assert_eq!(t.size_polynomial().constant, r.size_polynomial().constant);
        assert_eq!(t.depth(), r.depth());
        assert_eq!(t.is_ground(), r.is_ground());
        if t.is_ground() {
            assert_eq!(&r, &t);
        }
        assert!(mgu(&t, &r, false).is_some(), "a term unifies with its renaming");
    }
}

/// Substitution composition: resolving through an extended substitution
/// equals resolving the resolved term.
#[test]
fn resolve_composes() {
    let mut r = Rng64::new(0xC09);
    for _ in 0..500 {
        let a = gen_term(&mut r, 3);
        let b = gen_term(&mut r, 3);
        let mut s = Subst::new();
        if argus_logic::unify::unify(&mut s, &a, &b, true) {
            let once = s.resolve(&a);
            let twice = s.resolve(&once);
            assert_eq!(once, twice);
        }
    }
}

/// Program source assembled from random rules (heads and bodies built
/// from the term generator).
fn gen_program_src(r: &mut Rng64) -> String {
    let gen_atom = |r: &mut Rng64| -> (String, Vec<Term>) {
        let name = (*r.pick(&["p", "q", "r"])).to_string();
        let nargs = r.range_usize(1, 2);
        let args = (0..nargs).map(|_| gen_term(r, 2)).collect();
        (name, args)
    };
    let nrules = r.range_usize(1, 4);
    let mut out = String::new();
    for _ in 0..nrules {
        let (hname, hargs) = gen_atom(r);
        let head = Term::app(hname.as_str(), hargs);
        out.push_str(&head.to_string());
        let nbody = r.range_usize(0, 2);
        if nbody > 0 {
            out.push_str(" :- ");
            let goals: Vec<String> = (0..nbody)
                .map(|_| {
                    let (n, args) = gen_atom(r);
                    Term::app(n.as_str(), args).to_string()
                })
                .collect();
            out.push_str(&goals.join(", "));
        }
        out.push_str(".\n");
    }
    out
}

#[test]
fn program_display_parse_roundtrip() {
    let mut r = Rng64::new(0x960);
    for _ in 0..64 {
        let src = gen_program_src(&mut r);
        let p1 = parse_program(&src).expect("generated source parses");
        let printed = p1.to_string();
        let p2 = parse_program(&printed).expect("printed program reparses");
        assert_eq!(p1, p2);
    }
}

/// SCC condensation partitions the predicates and respects edges.
#[test]
fn scc_partition_invariants() {
    let mut r = Rng64::new(0x5C0);
    for _ in 0..64 {
        let src = gen_program_src(&mut r);
        let program = parse_program(&src).unwrap();
        let graph = argus_logic::DepGraph::build(&program);
        let mut seen = std::collections::BTreeSet::new();
        for id in graph.sccs_bottom_up() {
            for p in graph.scc(id) {
                assert!(seen.insert(p), "predicate in two SCCs");
            }
        }
        for p in program.all_predicates() {
            assert!(seen.contains(&p), "predicate missing from SCCs");
        }
        // Bottom-up order: every subgoal's SCC is at or before the head's.
        let order = graph.sccs_bottom_up();
        let pos = |id: usize| order.iter().position(|&x| x == id).unwrap();
        for rule in &program.rules {
            let h = graph.scc_id(&rule.head.key()).unwrap();
            for l in &rule.body {
                let s = graph.scc_id(&l.atom.key()).unwrap();
                assert!(pos(s) <= pos(h), "callee SCC after caller");
            }
        }
    }
}
