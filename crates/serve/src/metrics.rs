//! The `/metrics` observability surface.
//!
//! All counters are lock-free atomics bumped on the request path; the
//! snapshot renderer emits a *stable* JSON document — fixed key set,
//! fixed order — so the schema can be golden-tested exactly like the
//! `analyze --json` report (values normalized, names pinned). Latency is
//! recorded in hand-rolled fixed-bucket histograms: an upper-bound table
//! in microseconds, one atomic counter per bucket, no allocation and no
//! dependencies.

use crate::cache::ReportCache;
use argus_core::{ProjectionCache, SccCache};
use argus_linear::FmStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Schema identifier pinned by the golden test. v2 added the `/v1/infer`
/// counters and the condition cache; v4 added the per-SCC incremental
/// cache gauges.
pub const METRICS_SCHEMA: &str = "argus-serve-metrics/v4";

/// Histogram bucket upper bounds, in microseconds. The last bucket is
/// unbounded (rendered as `"inf"`).
pub const LATENCY_BUCKETS_US: [u64; 12] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000];

/// A fixed-bucket latency histogram.
#[derive(Default)]
pub struct Histogram {
    counts: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Record one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = LATENCY_BUCKETS_US.partition_point(|&bound| us > bound);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"buckets_us\":{");
        for (i, bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            let _ = write!(out, "\"le_{bound}\":{},", self.counts[i].load(Ordering::Relaxed));
        }
        let _ = write!(
            out,
            "\"le_inf\":{}}},\"count\":{},\"sum_us\":{}}}",
            self.counts[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed),
            self.total(),
            self.sum_us.load(Ordering::Relaxed)
        );
    }
}

/// One atomic per [`FmStats`] field, merged per request.
#[derive(Default)]
pub struct FmTotals {
    eliminations: AtomicU64,
    gauss_steps: AtomicU64,
    rows_in: AtomicU64,
    rows_out: AtomicU64,
    pairs_combined: AtomicU64,
    dedup_hits: AtomicU64,
    subsume_hits: AtomicU64,
    chernikov_drops: AtomicU64,
    lp_drops: AtomicU64,
    peak_rows: AtomicU64,
    small_combs: AtomicU64,
    big_combs: AtomicU64,
}

impl FmTotals {
    /// Fold one run's counters into the process totals (`peak_rows` takes
    /// the max).
    pub fn merge(&self, s: &FmStats) {
        self.eliminations.fetch_add(s.eliminations, Ordering::Relaxed);
        self.gauss_steps.fetch_add(s.gauss_steps, Ordering::Relaxed);
        self.rows_in.fetch_add(s.rows_in, Ordering::Relaxed);
        self.rows_out.fetch_add(s.rows_out, Ordering::Relaxed);
        self.pairs_combined.fetch_add(s.pairs_combined, Ordering::Relaxed);
        self.dedup_hits.fetch_add(s.dedup_hits, Ordering::Relaxed);
        self.subsume_hits.fetch_add(s.subsume_hits, Ordering::Relaxed);
        self.chernikov_drops.fetch_add(s.chernikov_drops, Ordering::Relaxed);
        self.lp_drops.fetch_add(s.lp_drops, Ordering::Relaxed);
        self.peak_rows.fetch_max(s.peak_rows, Ordering::Relaxed);
        self.small_combs.fetch_add(s.small_combs, Ordering::Relaxed);
        self.big_combs.fetch_add(s.big_combs, Ordering::Relaxed);
    }
}

/// All server counters.
#[derive(Default)]
pub struct Metrics {
    /// Requests per endpoint.
    pub analyze_requests: AtomicU64,
    /// Batch envelope requests.
    pub batch_requests: AtomicU64,
    /// Items inside batch envelopes.
    pub batch_items: AtomicU64,
    /// Condition-inference requests.
    pub infer_requests: AtomicU64,
    /// Predicates whose conditions were inferred (computed, not cached).
    pub infer_predicates: AtomicU64,
    /// Forward analyses spent inside condition inference.
    pub infer_analyses: AtomicU64,
    /// Analyze-cache entries primed from inference probes.
    pub infer_primed: AtomicU64,
    /// Lint requests.
    pub lint_requests: AtomicU64,
    /// Health probes.
    pub healthz_requests: AtomicU64,
    /// Metrics scrapes.
    pub metrics_requests: AtomicU64,
    /// Responses by status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (client errors, including 408/413).
    pub responses_4xx: AtomicU64,
    /// 5xx responses (503 overload, 504 deadline).
    pub responses_5xx: AtomicU64,
    /// Requests rejected because the accept queue was full.
    pub queue_rejections: AtomicU64,
    /// Analyses aborted by the per-request deadline.
    pub deadline_exceeded: AtomicU64,
    /// Malformed requests (unparseable HTTP, bad JSON, bad UTF-8).
    pub malformed_requests: AtomicU64,
    /// Read timeouts mid-request (slow-loris cutoffs).
    pub read_timeouts: AtomicU64,
    /// FM counters summed over every analysis this process ran.
    pub fm: FmTotals,
    /// Latency of `/v1/analyze` handled from the report cache.
    pub analyze_latency_cached: Histogram,
    /// Latency of `/v1/analyze` that ran the analysis.
    pub analyze_latency_computed: Histogram,
}

impl Metrics {
    /// Bump the status-class counter for `status`.
    pub fn count_status(&self, status: u16) {
        let c = match status / 100 {
            2 => &self.responses_2xx,
            4 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the stable snapshot; see [`METRICS_SCHEMA`].
    pub fn snapshot_json(
        &self,
        uptime: Duration,
        reports: &ReportCache,
        conditions: &ReportCache,
        projections: &ProjectionCache,
        scc: &SccCache,
    ) -> String {
        use std::fmt::Write as _;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::with_capacity(2048);
        let _ = write!(out, "{{\"schema\":\"{METRICS_SCHEMA}\"");
        let _ = write!(out, ",\"uptime_ms\":{}", uptime.as_millis());
        let _ = write!(
            out,
            ",\"requests\":{{\"analyze\":{},\"batch\":{},\"batch_items\":{},\"infer\":{},\
             \"lint\":{},\"healthz\":{},\"metrics\":{}}}",
            g(&self.analyze_requests),
            g(&self.batch_requests),
            g(&self.batch_items),
            g(&self.infer_requests),
            g(&self.lint_requests),
            g(&self.healthz_requests),
            g(&self.metrics_requests),
        );
        let _ = write!(
            out,
            ",\"responses\":{{\"status_2xx\":{},\"status_4xx\":{},\"status_5xx\":{}}}",
            g(&self.responses_2xx),
            g(&self.responses_4xx),
            g(&self.responses_5xx),
        );
        let _ = write!(
            out,
            ",\"rejections\":{{\"queue_full\":{},\"deadline_exceeded\":{},\"malformed\":{},\
             \"read_timeout\":{}}}",
            g(&self.queue_rejections),
            g(&self.deadline_exceeded),
            g(&self.malformed_requests),
            g(&self.read_timeouts),
        );
        let _ = write!(
            out,
            ",\"infer\":{{\"predicates\":{},\"analyses\":{},\"primed\":{}}}",
            g(&self.infer_predicates),
            g(&self.infer_analyses),
            g(&self.infer_primed),
        );
        let _ = write!(
            out,
            ",\"report_cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
             \"entries\":{},\"resident_bytes\":{}}}",
            reports.hits(),
            reports.misses(),
            reports.insertions(),
            reports.evictions(),
            reports.entries(),
            reports.resident_bytes(),
        );
        let _ = write!(
            out,
            ",\"condition_cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
             \"entries\":{},\"resident_bytes\":{}}}",
            conditions.hits(),
            conditions.misses(),
            conditions.insertions(),
            conditions.evictions(),
            conditions.entries(),
            conditions.resident_bytes(),
        );
        let _ = write!(
            out,
            ",\"projection_cache\":{{\"requests\":{},\"hits\":{},\"computed\":{},\
             \"evictions\":{},\"entries\":{},\"resident_bytes\":{}}}",
            projections.requests(),
            projections.lookup_hits(),
            projections.computed(),
            projections.evictions(),
            projections.entries(),
            projections.resident_bytes(),
        );
        let _ = write!(
            out,
            ",\"scc_cache\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"entries\":{},\"resident_bytes\":{}}}",
            scc.hits(),
            scc.misses(),
            scc.evictions(),
            scc.entries(),
            scc.resident_bytes(),
        );
        let fm = &self.fm;
        let _ = write!(
            out,
            ",\"fm\":{{\"eliminations\":{},\"gauss_steps\":{},\"rows_in\":{},\"rows_out\":{},\
             \"pairs_combined\":{},\"dedup_hits\":{},\"subsume_hits\":{},\"chernikov_drops\":{},\
             \"lp_drops\":{},\"peak_rows\":{},\"small_combs\":{},\"big_combs\":{}}}",
            g(&fm.eliminations),
            g(&fm.gauss_steps),
            g(&fm.rows_in),
            g(&fm.rows_out),
            g(&fm.pairs_combined),
            g(&fm.dedup_hits),
            g(&fm.subsume_hits),
            g(&fm.chernikov_drops),
            g(&fm.lp_drops),
            g(&fm.peak_rows),
            g(&fm.small_combs),
            g(&fm.big_combs),
        );
        out.push_str(",\"latency\":{\"analyze_cached\":");
        self.analyze_latency_cached.render(&mut out);
        out.push_str(",\"analyze_computed\":");
        self.analyze_latency_computed.render(&mut out);
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let h = Histogram::default();
        h.record(Duration::from_micros(49));
        h.record(Duration::from_micros(50)); // inclusive upper bound
        h.record(Duration::from_micros(51));
        h.record(Duration::from_secs(10)); // overflow bucket
        assert_eq!(h.counts[0].load(Ordering::Relaxed), 2);
        assert_eq!(h.counts[1].load(Ordering::Relaxed), 1);
        assert_eq!(h.counts[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed), 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn snapshot_is_valid_json_with_pinned_schema() {
        let m = Metrics::default();
        m.fm.merge(&FmStats { eliminations: 3, peak_rows: 7, ..FmStats::default() });
        m.count_status(200);
        let reports = ReportCache::new(1024);
        let conditions = ReportCache::new(1024);
        let projections = ProjectionCache::new();
        let scc = SccCache::new(1024);
        let snap =
            m.snapshot_json(Duration::from_millis(5), &reports, &conditions, &projections, &scc);
        let v = crate::jsonval::parse(&snap).expect("snapshot parses");
        assert_eq!(v.get("schema").and_then(crate::jsonval::Json::as_str), Some(METRICS_SCHEMA));
        assert_eq!(
            v.get("fm").and_then(|f| f.get("eliminations")).and_then(crate::jsonval::Json::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("responses")
                .and_then(|r| r.get("status_2xx"))
                .and_then(crate::jsonval::Json::as_u64),
            Some(1)
        );
    }
}
