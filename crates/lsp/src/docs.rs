//! The in-memory document store.
//!
//! LSP makes the client authoritative for open-document text: the server
//! never reads files, it mirrors the editor buffer through
//! `didOpen`/`didChange`/`didClose`. Incremental sync (`change: 2`)
//! delivers edits as UTF-16 `(line, character)` ranges plus replacement
//! text; [`Document::apply_change`] maps them to byte offsets through
//! [`LineIndex::position_to_offset`] and splices.

use argus_logic::span::LineIndex;
use std::collections::BTreeMap;

/// A 0-based UTF-16 position pair: `((start line, start char), (end
/// line, end char))`.
pub type LspRange = ((usize, usize), (usize, usize));

/// One open document.
#[derive(Debug, Clone)]
pub struct Document {
    /// The document URI, exactly as the client sent it.
    pub uri: String,
    /// Current buffer text.
    pub text: String,
    /// Version of the last applied change.
    pub version: i64,
}

impl Document {
    /// Apply one `TextDocumentContentChangeEvent`: a ranged splice, or a
    /// full-text replacement when `range` is `None`. Out-of-range
    /// positions clamp per the spec's lenient reading (see
    /// [`LineIndex::position_to_offset`]); an inverted range is treated
    /// as empty at its start.
    pub fn apply_change(&mut self, range: Option<LspRange>, new_text: &str) {
        match range {
            None => {
                self.text = new_text.to_string();
            }
            Some(((sl, sc), (el, ec))) => {
                let index = LineIndex::new(&self.text);
                let start = index.position_to_offset(&self.text, sl, sc);
                let end = index.position_to_offset(&self.text, el, ec).max(start);
                self.text.replace_range(start..end, new_text);
            }
        }
    }
}

/// All open documents, keyed by URI.
#[derive(Debug, Default)]
pub struct DocStore {
    docs: BTreeMap<String, Document>,
}

impl DocStore {
    /// Open (or re-open) a document.
    pub fn open(&mut self, uri: &str, version: i64, text: String) {
        self.docs.insert(uri.to_string(), Document { uri: uri.to_string(), text, version });
    }

    /// Close a document, returning it if it was open.
    pub fn close(&mut self, uri: &str) -> Option<Document> {
        self.docs.remove(uri)
    }

    /// The open document at `uri`.
    pub fn get(&self, uri: &str) -> Option<&Document> {
        self.docs.get(uri)
    }

    /// Mutable access for `didChange`.
    pub fn get_mut(&mut self, uri: &str) -> Option<&mut Document> {
        self.docs.get_mut(uri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Document {
        Document { uri: "file:///t.pl".into(), text: text.into(), version: 1 }
    }

    #[test]
    fn full_sync_replaces_everything() {
        let mut d = doc("p(a).\n");
        d.apply_change(None, "q(b).\n");
        assert_eq!(d.text, "q(b).\n");
    }

    #[test]
    fn ranged_edits_splice_by_utf16_position() {
        let mut d = doc("p(a).\nq(b).\n");
        // Replace `b` on line 1 (chars 2..3) with `c`.
        d.apply_change(Some(((1, 2), (1, 3))), "c");
        assert_eq!(d.text, "p(a).\nq(c).\n");
        // Insert at a point: empty range.
        d.apply_change(Some(((0, 5), (0, 5))), " % end");
        assert_eq!(d.text, "p(a). % end\nq(c).\n");
    }

    #[test]
    fn ranged_edits_count_utf16_units_not_bytes() {
        // The emoji is 4 bytes but 2 UTF-16 units: editing the `X` after
        // it must land after the atom, not inside it.
        let mut d = doc("q('a😀b', X).\n");
        // `X` is at units: q ( ' a 😀😀 b ' , ␣ => 10.
        d.apply_change(Some(((0, 10), (0, 11))), "Y");
        assert_eq!(d.text, "q('a😀b', Y).\n");
    }

    #[test]
    fn multi_line_ranges_and_clamping() {
        let mut d = doc("p(a).\nq(b).\nr(c).\n");
        d.apply_change(Some(((0, 2), (2, 2))), "x");
        assert_eq!(d.text, "p(xc).\n");
        // Past-the-end positions clamp to the text end.
        let mut d = doc("p(a).");
        d.apply_change(Some(((5, 0), (9, 9))), "\nq(b).");
        assert_eq!(d.text, "p(a).\nq(b).");
    }

    #[test]
    fn store_tracks_open_documents() {
        let mut s = DocStore::default();
        s.open("file:///a.pl", 1, "p(a).".into());
        assert_eq!(s.get("file:///a.pl").unwrap().version, 1);
        s.get_mut("file:///a.pl").unwrap().version = 2;
        assert!(s.close("file:///a.pl").is_some());
        assert!(s.get("file:///a.pl").is_none());
    }
}
