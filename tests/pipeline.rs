//! Cross-crate pipeline tests: exercising the public API the way a
//! deductive-database system embedding `argus` would.

use argus::interp::sld::{solve, InterpOptions};
use argus::logic::parser::{parse_program, parse_query};
use argus::logic::Term;
use argus::prelude::*;

/// SLD answers for append agree with native concatenation on random lists.
#[test]
fn interpreter_computes_append_correctly() {
    let program =
        parse_program("append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).")
            .unwrap();
    let atoms = ["a", "b", "c", "d", "e"];
    for split in 0..=atoms.len() {
        let (l, r) = atoms.split_at(split);
        let lt = Term::list(l.iter().map(|a| Term::atom(*a)));
        let rt = Term::list(r.iter().map(|a| Term::atom(*a)));
        let goal = argus::logic::Literal::pos(argus::logic::Atom::new(
            "append",
            vec![lt, rt, Term::var("Z")],
        ));
        let out = solve(&program, &[goal], &InterpOptions::default());
        let expect = Term::list(atoms.iter().map(|a| Term::atom(*a)));
        match out {
            argus::interp::Outcome::Completed { solutions, .. } => {
                assert_eq!(solutions.len(), 1);
                assert_eq!(solutions[0]["Z"], expect);
            }
            other => panic!("append diverged: {other:?}"),
        }
    }
}

/// The size relations inferred for the quicksort partition are strong
/// enough to certify the nonlinear recursion (§6.2), and weaker relations
/// (Appendix B binary restriction) are not.
#[test]
fn partition_relation_powers_quicksort() {
    let entry = argus::corpus::find("quicksort").unwrap();
    let program = entry.program().unwrap();
    let rels = infer_size_relations(&program, &InferOptions::default());
    let part = PredKey::new("part", 4);
    // part1 = part3 + part4 (element X is dropped from the sizes).
    assert!(rels.entails_sum_equality(&part, &[2, 3], 0), "{}", rels.render(&part));

    let (query, adornment) = entry.query_key();
    let full = analyze(&program, &query, adornment.clone(), &AnalysisOptions::default());
    assert_eq!(full.verdict, Verdict::Terminates);

    let weak = analyze(
        &program,
        &query,
        adornment,
        &AnalysisOptions { restrict_imports_to_binary_orders: true, ..AnalysisOptions::default() },
    );
    assert_ne!(weak.verdict, Verdict::Terminates, "binary orders cannot relate part's three sizes");
}

/// Appendix C (path-constraint δ) agrees with §6.1 on every corpus entry.
#[test]
fn delta_modes_agree_on_corpus() {
    for entry in argus::corpus::corpus() {
        // Skip the slowest entries; mode agreement is checked on the rest.
        if matches!(entry.name, "ackermann" | "mergesort" | "hanoi" | "flatten_acc") {
            continue;
        }
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let paper = analyze(
            &program,
            &query,
            adornment.clone(),
            &AnalysisOptions { delta_mode: DeltaMode::Paper, ..AnalysisOptions::default() },
        );
        let path = analyze(
            &program,
            &query,
            adornment,
            &AnalysisOptions {
                delta_mode: DeltaMode::PathConstraints,
                ..AnalysisOptions::default()
            },
        );
        let proved_paper = paper.verdict == Verdict::Terminates;
        let proved_path = path.verdict == Verdict::Terminates;
        // Appendix C is at least as strong as §6.1 (it searches a superset
        // of δ assignments).
        assert!(
            !proved_paper || proved_path,
            "{}: §6.1 proved but Appendix C did not\npaper:\n{paper}\npath:\n{path}",
            entry.name
        );
    }
}

/// End-to-end: a program assembled at runtime from Rule/Atom values (no
/// text) goes through the same pipeline.
#[test]
fn programmatic_construction() {
    use argus::logic::{Atom, Literal, Rule};
    // count(nil, z). count(cons(_, T), s(N)) :- count(T, N).
    let nil = Term::atom("nil");
    let rules = vec![
        Rule::fact(Atom::new("count", vec![nil, Term::atom("z")])),
        Rule::new(
            Atom::new(
                "count",
                vec![
                    Term::app("cons", vec![Term::var("H"), Term::var("T")]),
                    Term::app("s", vec![Term::var("N")]),
                ],
            ),
            vec![Literal::pos(Atom::new("count", vec![Term::var("T"), Term::var("N")]))],
        ),
    ];
    let program = Program::from_rules(rules);
    let report = analyze(
        &program,
        &PredKey::new("count", 2),
        Adornment::parse("bf").unwrap(),
        &AnalysisOptions::default(),
    );
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
}

/// The interpreter and analyzer agree on the perm example end to end:
/// the proof exists AND all 24 permutations of a 4-list are enumerated.
#[test]
fn perm_end_to_end() {
    let entry = argus::corpus::find("perm").unwrap();
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
    assert_eq!(report.verdict, Verdict::Terminates);

    let goals = parse_query("perm([a, b, c, d], Q)").unwrap();
    let out = solve(&program, &goals, &InterpOptions::default());
    assert!(out.terminated());
    assert_eq!(out.solution_count(), 24);
}
