//! # argus-baselines — earlier termination-detection methods
//!
//! Implementations (faithful in decision power on this corpus, simplified
//! in engineering) of the methods the paper compares against in its
//! related-work discussion (§1.1), so that the "earlier published methods
//! fail on these programs" claims can be regenerated:
//!
//! * [`NaishSubset`] — Naish \[Nai83\] / Sagiv–Ullman \[SU84\]: find a subset
//!   of bound argument positions such that every recursive call strictly
//!   reduces at least one (by the proper-subterm order) and increases
//!   none. Handles `append`; cannot handle `perm` (no argument is a
//!   subterm) and does not treat mutual recursion.
//! * [`UvgSingleArgument`] — Ullman–Van Gelder \[UVG88\]: a term-*size*
//!   measure ("length of right spine") on a single bound argument that
//!   provably decreases in every recursive call, with pairwise
//!   inequalities only. Handles `append`; cannot handle `merge` (neither
//!   argument decreases in both rules) nor `perm`.
//! * [`BrodskySagivBinary`] — Brodsky–Sagiv \[BS89a/b\] via the paper's
//!   Appendix B translation: the full LP-duality engine, but with imported
//!   relations truncated to *binary partial-order constraints*. Handles
//!   `merge` and the parser of Example 6.1; loses `perm`, whose `append`
//!   constraint relates three argument sizes (exactly the paper's
//!   Appendix B observation).
//! * [`SohnVanGelder`] — the paper's own method (a thin wrapper over
//!   `argus-core`), for the comparison matrix.

#![warn(missing_docs)]

pub mod engines;

pub use engines::{engine_by_id, standard_engines, SctEngine, ThetaEngine, ENGINE_IDS};

use argus_core::{AnalysisOptions, Verdict};
use argus_logic::modes::Adornment;
use argus_logic::{DepGraph, PredKey, Program, Term};

/// The outcome of running one method on one (program, query, adornment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodResult {
    /// Did the method prove termination?
    pub proved: bool,
    /// Human-readable explanation (witness or failure reason).
    pub detail: String,
}

/// A termination-detection method, for side-by-side comparison.
pub trait TerminationMethod {
    /// Short display name.
    fn name(&self) -> &'static str;
    /// Attempt to prove top-down termination of `query` with `adornment`.
    fn prove(&self, program: &Program, query: &PredKey, adornment: &Adornment) -> MethodResult;
}

/// Is `needle` a subterm of `haystack` (reflexive)?
fn is_subterm(needle: &Term, haystack: &Term) -> bool {
    if needle == haystack {
        return true;
    }
    match haystack {
        Term::Var(_) => false,
        Term::App(_, args) => args.iter().any(|a| is_subterm(needle, a)),
    }
}

/// Is `needle` a *proper* subterm of `haystack`?
fn is_proper_subterm(needle: &Term, haystack: &Term) -> bool {
    needle != haystack && is_subterm(needle, haystack)
}

/// Naish \[Nai83\] / Sagiv–Ullman \[SU84\]: subset-of-arguments descent by the
/// proper-subterm order.
///
/// For each directly-recursive predicate, search for a nonempty subset `S`
/// of its bound argument positions such that in every rule, every
/// same-predicate recursive subgoal has (a) each argument in `S` a
/// (reflexive) subterm of the corresponding head argument, and (b) at
/// least one argument in `S` a *proper* subterm. Mutual recursion is out
/// of scope for the method (no positional correspondence between different
/// predicates), and is reported as failure.
pub struct NaishSubset;

impl TerminationMethod for NaishSubset {
    fn name(&self) -> &'static str {
        "Naish/Sagiv-Ullman subset"
    }

    fn prove(&self, program: &Program, query: &PredKey, adornment: &Adornment) -> MethodResult {
        let adorned = argus_logic::adorn_program(program, query, adornment.clone());
        let program = &adorned.program;
        let graph = DepGraph::build(program);

        for scc_id in graph.sccs_bottom_up() {
            let members = graph.scc(scc_id);
            if !members.iter().any(|p| adorned.modes.get(p).is_some()) {
                continue;
            }
            let recursive = members.iter().any(|p| graph.is_recursive(p));
            if !recursive {
                continue;
            }
            if members.len() > 1 {
                return MethodResult {
                    proved: false,
                    detail: format!(
                        "mutual recursion among {{{}}} is outside the method",
                        members.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
                    ),
                };
            }
            let pred = &members[0];
            let bound = adorned
                .modes
                .get(pred)
                .map(|a| a.bound_positions())
                .unwrap_or_else(|| (0..pred.arity).collect());
            if bound.is_empty() {
                return MethodResult {
                    proved: false,
                    detail: format!("{pred} has no bound arguments"),
                };
            }
            // Enumerate subsets (bound-argument counts are tiny).
            let mut found = false;
            'subset: for mask in 1u32..(1u32 << bound.len()) {
                let subset: Vec<usize> = bound
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| mask & (1 << bit) != 0)
                    .map(|(_, &pos)| pos)
                    .collect();
                for rule in program.procedure(pred) {
                    for si in graph.recursive_subgoals(rule) {
                        let sub = &rule.body[si].atom;
                        if sub.key() != *pred {
                            continue 'subset; // different predicate: no mapping
                        }
                        let mut some_proper = false;
                        for &k in &subset {
                            let h = &rule.head.args[k];
                            let s = &sub.args[k];
                            if !is_subterm(s, h) {
                                continue 'subset;
                            }
                            if is_proper_subterm(s, h) {
                                some_proper = true;
                            }
                        }
                        if !some_proper {
                            continue 'subset;
                        }
                    }
                }
                found = true;
                break;
            }
            if !found {
                return MethodResult {
                    proved: false,
                    detail: format!("no decreasing argument subset for {pred}"),
                };
            }
        }
        MethodResult { proved: true, detail: "argument subset descent found".into() }
    }
}

/// Length of the right spine of a term, as a pair
/// `(constant, Option<variable>)`: `rs(v) = v`, `rs(c) = 0`,
/// `rs(f(t1…tn)) = 1 + rs(tn)`. This is the measure of \[UVG88\] ("length
/// of right spine … corresponds to length for lists").
fn right_spine(t: &Term) -> (i64, Option<argus_logic::Sym>) {
    match t {
        Term::Var(v) => (0, Some(*v)),
        Term::App(_, args) => match args.last() {
            None => (0, None),
            Some(last) => {
                let (k, v) = right_spine(last);
                (k + 1, v)
            }
        },
    }
}

/// Ullman–Van Gelder \[UVG88\]: one bound argument position per predicate
/// whose right-spine length strictly decreases in every recursive call.
/// Only pairwise (same-position) comparisons are made — no imported
/// multi-argument constraints — which is what limits the method on `merge`
/// and `perm`.
pub struct UvgSingleArgument;

impl TerminationMethod for UvgSingleArgument {
    fn name(&self) -> &'static str {
        "Ullman-Van Gelder single argument"
    }

    fn prove(&self, program: &Program, query: &PredKey, adornment: &Adornment) -> MethodResult {
        let adorned = argus_logic::adorn_program(program, query, adornment.clone());
        let program = &adorned.program;
        let graph = DepGraph::build(program);

        for scc_id in graph.sccs_bottom_up() {
            let members = graph.scc(scc_id);
            if !members.iter().any(|p| adorned.modes.get(p).is_some()) {
                continue;
            }
            if !members.iter().any(|p| graph.is_recursive(p)) {
                continue;
            }
            // One argument index, shared positionally across the SCC, that
            // decreases across every recursive call (the method's
            // "uniqueness"-style restriction).
            let bound_sets: Vec<Vec<usize>> = members
                .iter()
                .map(|p| adorned.modes.get(p).map(|a| a.bound_positions()).unwrap_or_default())
                .collect();
            let common: Vec<usize> = bound_sets
                .iter()
                .fold(None::<Vec<usize>>, |acc, s| match acc {
                    None => Some(s.clone()),
                    Some(a) => Some(a.into_iter().filter(|k| s.contains(k)).collect()),
                })
                .unwrap_or_default();
            let mut ok_pos = None;
            'pos: for &k in &common {
                for rule in graph.scc_rules(program, scc_id) {
                    for si in graph.recursive_subgoals(rule) {
                        let sub = &rule.body[si].atom;
                        if k >= rule.head.args.len() || k >= sub.args.len() {
                            continue 'pos;
                        }
                        let (hc, hv) = right_spine(&rule.head.args[k]);
                        let (sc, sv) = right_spine(&sub.args[k]);
                        // Provable strict decrease: same spine variable (or
                        // both closed) and smaller constant.
                        let comparable = hv == sv;
                        if !(comparable && sc < hc) {
                            continue 'pos;
                        }
                    }
                }
                ok_pos = Some(k);
                break;
            }
            if ok_pos.is_none() {
                return MethodResult {
                    proved: false,
                    detail: format!(
                        "no single bound argument decreases in every recursive call of {{{}}}",
                        members.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
                    ),
                };
            }
        }
        MethodResult { proved: true, detail: "right-spine measure decreases".into() }
    }
}

/// Brodsky–Sagiv-style method via the paper's Appendix B translation: the
/// full duality engine restricted to binary partial-order information.
pub struct BrodskySagivBinary;

impl TerminationMethod for BrodskySagivBinary {
    fn name(&self) -> &'static str {
        "Brodsky-Sagiv binary orders"
    }

    fn prove(&self, program: &Program, query: &PredKey, adornment: &Adornment) -> MethodResult {
        let options = AnalysisOptions {
            restrict_imports_to_binary_orders: true,
            ..AnalysisOptions::default()
        };
        let report = argus_core::analyze(program, query, adornment.clone(), &options);
        MethodResult {
            proved: report.verdict == Verdict::Terminates,
            detail: format!("{:?} under binary-order imports", report.verdict),
        }
    }
}

/// The paper's method (this library), wrapped for the comparison matrix.
pub struct SohnVanGelder;

impl TerminationMethod for SohnVanGelder {
    fn name(&self) -> &'static str {
        "Sohn-Van Gelder (this paper)"
    }

    fn prove(&self, program: &Program, query: &PredKey, adornment: &Adornment) -> MethodResult {
        let report =
            argus_core::analyze(program, query, adornment.clone(), &AnalysisOptions::default());
        MethodResult {
            proved: report.verdict == Verdict::Terminates,
            detail: format!("{:?}", report.verdict),
        }
    }
}

/// Size-change termination (`argus-sct`), wrapped for the comparison
/// matrix beside the methods above. Not a "prior" method — it is the
/// portfolio's second engine — but the E15 win-count experiment wants it
/// in the same table.
pub struct SizeChange;

impl TerminationMethod for SizeChange {
    fn name(&self) -> &'static str {
        "Size-change termination"
    }

    fn prove(&self, program: &Program, query: &PredKey, adornment: &Adornment) -> MethodResult {
        let report = argus_sct::analyze_sct(
            program,
            query,
            adornment.clone(),
            &AnalysisOptions::default(),
            None,
        );
        MethodResult { proved: report.proved, detail: report.detail() }
    }
}

/// All five methods, in presentation order.
pub fn all_methods() -> Vec<Box<dyn TerminationMethod>> {
    vec![
        Box::new(NaishSubset),
        Box::new(UvgSingleArgument),
        Box::new(BrodskySagivBinary),
        Box::new(SizeChange),
        Box::new(SohnVanGelder),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_logic::parser::parse_program;

    fn run(m: &dyn TerminationMethod, src: &str, name: &str, arity: usize, adn: &str) -> bool {
        let p = parse_program(src).unwrap();
        m.prove(&p, &PredKey::new(name, arity), &Adornment::parse(adn).unwrap()).proved
    }

    const APPEND: &str = "append([], Ys, Ys).\n\
                          append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";

    const MERGE: &str = "merge([], Ys, Ys).\n\
                         merge(Xs, [], Xs).\n\
                         merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
                         merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).";

    const PERM: &str = "perm([], []).\n\
                        perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
                        append([], Ys, Ys).\n\
                        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";

    const PARSER: &str = "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
                          e(L, T) :- t(L, T).\n\
                          t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
                          t(L, T) :- n(L, T).\n\
                          n(['('|A], T) :- e(A, [')'|T]).\n\
                          n([L|T], T) :- z(L).";

    #[test]
    fn naish_proves_append() {
        assert!(run(&NaishSubset, APPEND, "append", 3, "bff"));
    }

    #[test]
    fn naish_fails_merge_variant() {
        // Naish's original method picks the decreasing argument per rule;
        // our positional-subset variant (Sagiv–Ullman flavored) requires
        // non-increase of the whole subset, which merge's argument-swap
        // violates ([Y|Ys] is not a subterm of [X|Xs]). Documented in
        // EXPERIMENTS.md E5.
        assert!(!run(&NaishSubset, MERGE, "merge", 3, "bbf"));
    }

    #[test]
    fn naish_fails_perm_and_mutual() {
        assert!(!run(&NaishSubset, PERM, "perm", 2, "bf"));
        assert!(!run(&NaishSubset, PARSER, "e", 2, "bf"));
    }

    #[test]
    fn uvg_proves_append_fails_merge_perm() {
        assert!(run(&UvgSingleArgument, APPEND, "append", 3, "bff"));
        assert!(!run(&UvgSingleArgument, MERGE, "merge", 3, "bbf"));
        assert!(!run(&UvgSingleArgument, PERM, "perm", 2, "bf"));
    }

    #[test]
    fn bs_binary_proves_merge_and_parser_not_perm() {
        assert!(run(&BrodskySagivBinary, MERGE, "merge", 3, "bbf"));
        assert!(run(&BrodskySagivBinary, PARSER, "e", 2, "bf"));
        // Appendix B: "This translation was found to be sufficient to
        // handle Example 5.1 and Example 6.1, but not Example 3.1."
        assert!(!run(&BrodskySagivBinary, PERM, "perm", 2, "bf"));
    }

    #[test]
    fn svg_proves_all_four() {
        assert!(run(&SohnVanGelder, APPEND, "append", 3, "bff"));
        assert!(run(&SohnVanGelder, MERGE, "merge", 3, "bbf"));
        assert!(run(&SohnVanGelder, PERM, "perm", 2, "bf"));
        assert!(run(&SohnVanGelder, PARSER, "e", 2, "bf"));
    }

    #[test]
    fn nobody_proves_a_plain_loop() {
        let loop_src = "p(X) :- p(X).\np(a).";
        for m in all_methods() {
            assert!(
                !run(m.as_ref(), loop_src, "p", 1, "b"),
                "{} must not prove the trivial loop",
                m.name()
            );
        }
    }

    #[test]
    fn subterm_helpers() {
        let t = argus_logic::parser::parse_term("f(g(X), [a|T])").unwrap();
        let x = argus_logic::parser::parse_term("X").unwrap();
        let gx = argus_logic::parser::parse_term("g(X)").unwrap();
        assert!(is_subterm(&x, &t));
        assert!(is_proper_subterm(&gx, &t));
        assert!(is_subterm(&t, &t));
        assert!(!is_proper_subterm(&t, &t));
        let b = argus_logic::parser::parse_term("b").unwrap();
        assert!(!is_subterm(&b, &t));
    }

    #[test]
    fn right_spine_measure() {
        let list = argus_logic::parser::parse_term("[a, b | T]").unwrap();
        let (k, v) = right_spine(&list);
        assert_eq!(k, 2);
        assert_eq!(v.as_deref(), Some("T"));
        let closed = argus_logic::parser::parse_term("[a, b]").unwrap();
        assert_eq!(right_spine(&closed), (2, None));
        let c = argus_logic::parser::parse_term("c").unwrap();
        assert_eq!(right_spine(&c), (0, None));
    }
}
