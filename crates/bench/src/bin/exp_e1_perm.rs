//! E1 — Example 3.1 / 4.1: the permutation procedure.
//!
//! Reproduces: the imported append constraint `a1 + a2 = a3`, the reduced
//! θ-constraint system (the paper's `2θ ≥ 1`), the witness `θ = 1/2`, and
//! the claim that the earlier methods all fail on `perm` while this method
//! proves it.

use argus_baselines::all_methods;
use argus_bench::ExperimentLog;
use argus_core::{analyze, AnalysisOptions, SccOutcome, Verdict};
use argus_logic::PredKey;
use argus_sizerel::{infer_size_relations, InferOptions};

fn main() {
    let entry = argus_corpus::find("perm").expect("corpus");
    let program = entry.program().expect("parse");
    let (query, adornment) = entry.query_key();

    let mut log = ExperimentLog::new(
        "E1",
        "perm/2 with first argument bound",
        "Example 3.1 / 4.1",
        &["quantity", "paper", "measured"],
    );

    // Imported feasibility constraint for append.
    let rels = infer_size_relations(&program, &InferOptions::default());
    let app = PredKey::new("append", 3);
    log.row(&[
        "imported append constraint".into(),
        "append1 + append2 = append3".into(),
        rels.render(&app),
    ]);
    log.row(&[
        "entails a1 + a2 = a3".into(),
        "yes".into(),
        if rels.entails_sum_equality(&app, &[0, 1], 2) { "yes" } else { "NO" }.into(),
    ]);

    // Full analysis.
    let report = analyze(&program, &query, adornment.clone(), &AnalysisOptions::default());
    log.row(&["verdict".into(), "terminates".into(), format!("{:?}", report.verdict)]);
    if let Some(scc) = report.scc_of(&PredKey::new("perm", 2)) {
        for c in scc.render_constraints() {
            log.row(&["reduced θ constraint".into(), "2θ ≥ 1 (& θ ≥ 0)".into(), c]);
        }
        if let SccOutcome::Proved { witness, .. } = &scc.outcome {
            let w = &witness[&PredKey::new("perm", 2)];
            log.row(&[
                "witness θ".into(),
                "1/2".into(),
                w.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(", "),
            ]);
        }
    }

    // Earlier methods fail.
    for m in all_methods() {
        let r = m.prove(&program, &query, &adornment);
        let expect = if m.name().contains("this paper") { "proves" } else { "fails" };
        log.row(&[
            format!("method: {}", m.name()),
            expect.into(),
            if r.proved { "proves".into() } else { format!("fails ({})", r.detail) },
        ]);
    }

    log.note(
        "The paper: \"It cannot be shown to terminate (with the first argument \
         bound) by any of the previous methods cited.\" Reproduced: only the \
         Sohn–Van Gelder method proves perm.",
    );
    assert_eq!(report.verdict, Verdict::Terminates, "E1 regression");
    log.emit();
}
