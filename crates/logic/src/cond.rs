//! Positive boolean conditions over argument positions ("argᵢ bound").
//!
//! Backwards termination inference (Genaim & Codish style) computes, per
//! predicate, the set of adornments under which the forward analysis
//! proves termination. Provability is *monotone* in boundness — binding
//! more arguments never loses a proof — so that set is upward-closed and
//! is fully described by its antichain of minimal elements. Equivalently,
//! it is a minimized positive DNF over the atoms "argument *i* is bound":
//! `append/3` terminates if `arg1 bound or arg3 bound`.
//!
//! [`Dnf`] is that lattice. `false` (no adornment works) is the empty
//! disjunction; `true` (every adornment works, including all-free) is the
//! disjunction containing the empty conjunction. Everything in between is
//! a set of minimal bound-position sets, kept minimal by absorption:
//! a disjunct that is a superset of another is redundant and dropped.

use crate::modes::Adornment;
use std::collections::BTreeSet;
use std::fmt;

/// A minimized positive DNF over 0-based argument positions.
///
/// Invariant: `disjuncts` is an antichain under `⊆` — no disjunct is a
/// subset of another. In particular, if the empty conjunction (`true`) is
/// present it is the *only* disjunct.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dnf {
    disjuncts: BTreeSet<BTreeSet<usize>>,
}

impl Dnf {
    /// The unsatisfiable condition: no adornment is provable.
    pub fn fls() -> Dnf {
        Dnf { disjuncts: BTreeSet::new() }
    }

    /// The trivial condition: provable under every adornment (the empty
    /// conjunction).
    pub fn tru() -> Dnf {
        let mut disjuncts = BTreeSet::new();
        disjuncts.insert(BTreeSet::new());
        Dnf { disjuncts }
    }

    /// Build from arbitrary disjuncts, minimizing by absorption.
    pub fn from_disjuncts(iter: impl IntoIterator<Item = BTreeSet<usize>>) -> Dnf {
        let mut dnf = Dnf::fls();
        for d in iter {
            dnf.insert(d);
        }
        dnf
    }

    /// `true` iff the condition holds vacuously (empty conjunction).
    pub fn is_true(&self) -> bool {
        self.disjuncts.contains(&BTreeSet::new())
    }

    /// `true` iff no adornment satisfies the condition.
    pub fn is_false(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// The minimal disjuncts, in sorted order.
    pub fn disjuncts(&self) -> impl Iterator<Item = &BTreeSet<usize>> {
        self.disjuncts.iter()
    }

    /// Number of minimal disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// `true` iff there are no disjuncts (same as [`Dnf::is_false`]).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Add one conjunction, preserving the antichain invariant: absorbed
    /// (superset of an existing disjunct) insertions are dropped, and an
    /// inserted disjunct absorbs any existing supersets. Returns whether
    /// the condition changed.
    pub fn insert(&mut self, conj: BTreeSet<usize>) -> bool {
        if self.covers(&conj) {
            return false;
        }
        self.disjuncts.retain(|d| !d.is_superset(&conj));
        self.disjuncts.insert(conj);
        true
    }

    /// Does a set of bound positions satisfy the condition — i.e. is some
    /// disjunct a subset of `bound`?
    pub fn covers(&self, bound: &BTreeSet<usize>) -> bool {
        self.disjuncts.iter().any(|d| d.is_subset(bound))
    }

    /// Does an adornment satisfy the condition?
    pub fn covers_adornment(&self, adn: &Adornment) -> bool {
        let bound: BTreeSet<usize> = adn.bound_positions().into_iter().collect();
        self.covers(&bound)
    }

    /// Disjunction (least upper bound), minimized.
    pub fn or(&self, other: &Dnf) -> Dnf {
        let mut out = self.clone();
        for d in &other.disjuncts {
            out.insert(d.clone());
        }
        out
    }

    /// Conjunction (greatest lower bound): the pairwise unions of
    /// disjuncts, minimized.
    pub fn and(&self, other: &Dnf) -> Dnf {
        let mut out = Dnf::fls();
        for a in &self.disjuncts {
            for b in &other.disjuncts {
                out.insert(a.union(b).cloned().collect());
            }
        }
        out
    }

    /// The disjuncts as sorted vectors of **1-based** argument numbers —
    /// the numbering used by every human- and machine-readable surface
    /// (`arg1` is the first argument, as in the paper's examples).
    pub fn disjuncts_1based(&self) -> Vec<Vec<usize>> {
        self.disjuncts.iter().map(|d| d.iter().map(|p| p + 1).collect()).collect()
    }

    /// Render as a JSON array of arrays of 1-based positions:
    /// `false` ⇒ `[]`, `true` ⇒ `[[]]`, `arg1 ∨ arg3` ⇒ `[[1],[3]]`.
    pub fn to_json(&self) -> String {
        let inner: Vec<String> = self
            .disjuncts_1based()
            .iter()
            .map(|d| {
                let items: Vec<String> = d.iter().map(|p| p.to_string()).collect();
                format!("[{}]", items.join(","))
            })
            .collect();
        format!("[{}]", inner.join(","))
    }
}

/// Human-readable rendering. Zero-arity predicates and single-argument
/// conditions print without dangling separators: the constants are the
/// bare words `true` / `false`, a one-atom disjunct is `arg1 bound`, a
/// conjunction is `arg1 and arg2 bound`, and disjuncts are joined with
/// ` or ` (`arg1 bound or arg3 bound`).
impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            return write!(f, "true");
        }
        if self.is_false() {
            return write!(f, "false");
        }
        let rendered: Vec<String> = self
            .disjuncts_1based()
            .iter()
            .map(|d| {
                let args: Vec<String> = d.iter().map(|p| format!("arg{p}")).collect();
                format!("{} bound", args.join(" and "))
            })
            .collect();
        write!(f, "{}", rendered.join(" or "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[usize]) -> BTreeSet<usize> {
        items.iter().copied().collect()
    }

    #[test]
    fn absorption_drops_supersets() {
        // {0,2} is absorbed by {0}, whichever arrives first.
        let a = Dnf::from_disjuncts([set(&[0]), set(&[0, 2])]);
        assert_eq!(a.disjuncts().count(), 1);
        let b = Dnf::from_disjuncts([set(&[0, 2]), set(&[0])]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "arg1 bound");
    }

    #[test]
    fn tautology_collapses_to_true() {
        let mut d = Dnf::from_disjuncts([set(&[1]), set(&[0, 2])]);
        assert!(!d.is_true());
        d.insert(set(&[]));
        assert!(d.is_true());
        assert_eq!(d.disjuncts().count(), 1, "true absorbs every other disjunct");
        assert_eq!(d.to_string(), "true");
        // Nothing can be added past true.
        assert!(!d.clone().insert(set(&[1])));
    }

    #[test]
    fn empty_is_false() {
        let d = Dnf::fls();
        assert!(d.is_false() && !d.is_true());
        assert_eq!(d.to_string(), "false");
        assert_eq!(d.to_json(), "[]");
        assert!(!d.covers(&set(&[0, 1, 2])));
    }

    #[test]
    fn zero_arity_and_single_argument_render_without_separators() {
        // Zero-arity predicates only ever see the constants.
        assert_eq!(Dnf::tru().to_string(), "true");
        assert_eq!(Dnf::fls().to_string(), "false");
        assert_eq!(Dnf::tru().to_json(), "[[]]");
        // A single-argument condition is a bare clause, no dangling "or"
        // or "and".
        let single = Dnf::from_disjuncts([set(&[0])]);
        assert_eq!(single.to_string(), "arg1 bound");
        assert_eq!(single.to_json(), "[[1]]");
    }

    #[test]
    fn display_joins_disjuncts_and_conjunctions() {
        let d = Dnf::from_disjuncts([set(&[0]), set(&[2])]);
        assert_eq!(d.to_string(), "arg1 bound or arg3 bound");
        let c = Dnf::from_disjuncts([set(&[0, 1])]);
        assert_eq!(c.to_string(), "arg1 and arg2 bound");
        let mixed = Dnf::from_disjuncts([set(&[0, 1]), set(&[3])]);
        assert_eq!(mixed.to_string(), "arg1 and arg2 bound or arg4 bound");
        assert_eq!(mixed.to_json(), "[[1,2],[4]]");
    }

    #[test]
    fn covers_and_adornments() {
        let d = Dnf::from_disjuncts([set(&[0]), set(&[2])]);
        assert!(d.covers(&set(&[0, 1])));
        assert!(d.covers(&set(&[2])));
        assert!(!d.covers(&set(&[1])));
        assert!(d.covers_adornment(&Adornment::parse("bff").unwrap()));
        assert!(d.covers_adornment(&Adornment::parse("ffb").unwrap()));
        assert!(!d.covers_adornment(&Adornment::parse("fbf").unwrap()));
        // true covers even the empty adornment of a zero-arity predicate.
        assert!(Dnf::tru().covers_adornment(&Adornment::parse("").unwrap()));
        assert!(!Dnf::fls().covers_adornment(&Adornment::parse("bbb").unwrap()));
    }

    #[test]
    fn and_or_are_lattice_ops() {
        let a = Dnf::from_disjuncts([set(&[0])]);
        let b = Dnf::from_disjuncts([set(&[1]), set(&[2])]);
        let both = a.and(&b);
        assert_eq!(both.to_string(), "arg1 and arg2 bound or arg1 and arg3 bound");
        let either = a.or(&b);
        assert_eq!(either.disjuncts().count(), 3);
        // Identities.
        assert_eq!(a.and(&Dnf::tru()), a);
        assert!(a.and(&Dnf::fls()).is_false());
        assert_eq!(a.or(&Dnf::fls()), a);
        assert!(a.or(&Dnf::tru()).is_true());
    }
}
