//! Randomized property tests for the exact-arithmetic substrate.
//!
//! `BigInt`/`Rat` are checked against an `i128` reference model; Fourier–
//! Motzkin and simplex are cross-checked against each other on random
//! systems, since they are independent decision procedures for the same
//! question. Deterministic seeded generation (argus-prng) replaces the
//! former proptest strategies so the suite needs no external crates and
//! every failure reproduces exactly.

use argus_linear::fm::{self, FmResult};
use argus_linear::simplex;
use argus_linear::{BigInt, Constraint, ConstraintSystem, LinExpr, Rat};
use argus_prng::Rng64;
use std::collections::{BTreeMap, BTreeSet};

/// Interesting `i64` values: uniform draws mixed with boundary cases so the
/// small↔large promotion boundary of `BigInt` is crossed constantly.
fn gen_i64(r: &mut Rng64) -> i64 {
    const EDGES: &[i64] = &[
        0,
        1,
        -1,
        2,
        -2,
        i64::MAX,
        i64::MIN,
        i64::MAX - 1,
        i64::MIN + 1,
        i64::MAX / 2,
        i64::MIN / 2,
        1 << 62,
        -(1 << 62),
    ];
    match r.below(4) {
        0 => *r.pick(EDGES),
        1 => r.range_i64(-100, 100),
        _ => r.next_u64() as i64,
    }
}

fn pair(r: &mut Rng64) -> (i128, BigInt) {
    let v = gen_i64(r);
    (v as i128, BigInt::from(v))
}

#[test]
fn bigint_add_sub_mul_match_i128() {
    let mut r = Rng64::new(0xB16);
    for _ in 0..4000 {
        let (a, ba) = pair(&mut r);
        let (b, bb) = pair(&mut r);
        assert_eq!((&ba + &bb).to_i128(), Some(a + b), "{a} + {b}");
        assert_eq!((&ba - &bb).to_i128(), Some(a - b), "{a} - {b}");
        assert_eq!((&ba * &bb).to_i128(), Some(a * b), "{a} * {b}");
    }
}

#[test]
fn bigint_divmod_invariant() {
    let mut r = Rng64::new(0xD1F);
    for _ in 0..4000 {
        let (a, ba) = pair(&mut r);
        let (b, bb) = pair(&mut r);
        if b == 0 {
            continue;
        }
        let (q, rem) = ba.divmod(&bb);
        assert_eq!(&(&q * &bb) + &rem, ba, "{a} divmod {b}");
        assert!(rem.abs() < bb.abs(), "{a} divmod {b}");
        // Truncated semantics: remainder carries the dividend's sign.
        if !rem.is_zero() {
            assert_eq!(rem.is_negative(), a < 0, "{a} divmod {b}");
        }
    }
}

#[test]
fn bigint_string_roundtrip() {
    let mut r = Rng64::new(0x5EED);
    for _ in 0..800 {
        let (_, ba) = pair(&mut r);
        let (_, bb) = pair(&mut r);
        // Multiply to exceed 64 bits regularly.
        let big = &(&ba * &bb) * &bb;
        let s = big.to_string();
        let back: BigInt = s.parse().unwrap();
        assert_eq!(back, big, "{s}");
    }
}

#[test]
fn bigint_gcd_divides_both() {
    let mut r = Rng64::new(0x6CD);
    for _ in 0..2000 {
        let (a, ba) = pair(&mut r);
        let (b, bb) = pair(&mut r);
        let g = ba.gcd(&bb);
        if a != 0 || b != 0 {
            assert!(!g.is_zero());
            assert!((&ba % &g).is_zero(), "gcd({a}, {b}) = {g}");
            assert!((&bb % &g).is_zero(), "gcd({a}, {b}) = {g}");
        } else {
            assert!(g.is_zero());
        }
    }
}

#[test]
fn bigint_ordering_matches_i128() {
    let mut r = Rng64::new(0x0DD);
    for _ in 0..4000 {
        let (a, ba) = pair(&mut r);
        let (b, bb) = pair(&mut r);
        assert_eq!(ba.cmp(&bb), a.cmp(&b), "{a} vs {b}");
    }
}

mod promotion_boundary {
    //! Differential tests for the inline small-integer fast path: the same
    //! value reached through the inline representation and through the limb
    //! representation must be indistinguishable — equal, identically
    //! hashed, identically printed.

    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(b: &BigInt) -> u64 {
        let mut h = DefaultHasher::new();
        b.hash(&mut h);
        h.finish()
    }

    /// Construct the value of `v` by a detour through >64-bit territory,
    /// forcing a promotion and a later demotion.
    fn via_large(v: i64) -> BigInt {
        let big = BigInt::from(i64::MAX);
        &(&BigInt::from(v) + &(&big * &big)) - &(&big * &big)
    }

    #[test]
    fn demoted_values_equal_inline_values() {
        let mut r = Rng64::new(0xB0B);
        for _ in 0..2000 {
            let v = gen_i64(&mut r);
            let inline = BigInt::from(v);
            let demoted = via_large(v);
            assert_eq!(inline, demoted, "{v}");
            assert_eq!(hash_of(&inline), hash_of(&demoted), "{v}");
            assert_eq!(inline.to_string(), demoted.to_string(), "{v}");
            assert_eq!(inline.cmp(&demoted), std::cmp::Ordering::Equal, "{v}");
        }
    }

    #[test]
    fn arithmetic_straddles_the_boundary() {
        // Walk a window across i64::MAX and i64::MIN: every op result is
        // compared against the i128 model while values hop between the
        // inline and limb representations.
        for center in [i64::MAX as i128, i64::MIN as i128, 0, (i64::MAX / 2) as i128] {
            for da in -3i128..=3 {
                for db in -3i128..=3 {
                    let a = center + da;
                    let b = center + db;
                    let (ba, bb) = (BigInt::from(a), BigInt::from(b));
                    assert_eq!((&ba + &bb).to_i128(), Some(a + b));
                    assert_eq!((&ba - &bb).to_i128(), Some(a - b));
                    assert_eq!((&ba * &bb).to_i128(), Some(a * b));
                    assert_eq!(ba.cmp(&bb), a.cmp(&b));
                    if b != 0 {
                        let (q, rem) = ba.divmod(&bb);
                        assert_eq!(&(&q * &bb) + &rem, ba);
                    }
                    let g = ba.gcd(&bb);
                    if a != 0 || b != 0 {
                        assert!((&ba % &g).is_zero() && (&bb % &g).is_zero());
                    }
                }
            }
        }
    }

    #[test]
    fn negation_at_the_extremes() {
        let min = BigInt::from(i64::MIN);
        let negated = -&min;
        assert_eq!(negated.to_i128(), Some(-(i64::MIN as i128)));
        assert_eq!(-&negated, min);
        assert_eq!(min.abs(), negated);
        assert_eq!(negated.to_string(), "9223372036854775808");
    }

    #[test]
    fn rat_normalization_across_boundary() {
        // Numerator/denominator pairs around the boundary must still
        // produce canonical (coprime, positive-denominator) rationals that
        // compare and hash structurally.
        let mut r = Rng64::new(0xF00D);
        for _ in 0..500 {
            let n = gen_i64(&mut r);
            let d = gen_i64(&mut r);
            if d == 0 {
                continue;
            }
            let a = Rat::new(BigInt::from(n), BigInt::from(d));
            // Build the same value with both parts scaled by a constant:
            // normalization must converge to the identical representation.
            let k = BigInt::from(3);
            let b = Rat::new(&BigInt::from(n) * &k, &BigInt::from(d) * &k);
            assert_eq!(a, b, "{n}/{d}");
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            assert_eq!(ha.finish(), hb.finish(), "{n}/{d}");
        }
    }
}

fn gen_rat(r: &mut Rng64) -> Rat {
    let n = r.range_i64(-1000, 999);
    let d = r.range_i64(1, 59);
    Rat::new(n.into(), d.into())
}

#[test]
fn rat_field_laws() {
    let mut r = Rng64::new(0xFE1D);
    for _ in 0..1500 {
        let a = gen_rat(&mut r);
        let b = gen_rat(&mut r);
        let c = gen_rat(&mut r);
        // Associativity and commutativity of + and *.
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        assert_eq!(&a * &b, &b * &a);
        // Distributivity.
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // Additive inverse.
        assert!((&a + &(-&a)).is_zero());
    }
}

#[test]
fn rat_recip_is_inverse() {
    let mut r = Rng64::new(0x1E1);
    for _ in 0..1500 {
        let a = gen_rat(&mut r);
        if a.is_zero() {
            continue;
        }
        assert_eq!(&a * &a.recip(), Rat::one());
    }
}

#[test]
fn rat_order_total_and_compatible() {
    let mut r = Rng64::new(0x03D);
    for _ in 0..1500 {
        let a = gen_rat(&mut r);
        let b = gen_rat(&mut r);
        let c = gen_rat(&mut r);
        // Order respects addition.
        if a <= b {
            assert!(&a + &c <= &b + &c);
        }
        // floor/ceil bracket the value.
        let fl = Rat::from(a.floor());
        let ce = Rat::from(a.ceil());
        assert!(fl <= a && a <= ce);
        assert!(&ce - &fl <= Rat::one());
    }
}

/// A small random constraint system over `nvars` variables with small
/// integer coefficients; mixes Le and Eq rows.
fn gen_system(r: &mut Rng64, nvars: usize, max_rows: usize) -> ConstraintSystem {
    let nrows = r.range_usize(1, max_rows);
    let mut sys = ConstraintSystem::new();
    for _ in 0..nrows {
        let mut e = LinExpr::constant(Rat::from_int(r.range_i64(-8, 8)));
        for v in 0..nvars {
            e.add_term(v, Rat::from_int(r.range_i64(-3, 3)));
        }
        let rel = if r.bool() { argus_linear::Rel::Eq } else { argus_linear::Rel::Le };
        sys.push(Constraint { expr: e, rel });
    }
    sys
}

/// FM and simplex must agree on satisfiability of random systems
/// (variables unrestricted in sign for both).
#[test]
fn fm_and_simplex_agree() {
    let mut r = Rng64::new(0xA6EE);
    for _ in 0..64 {
        let sys = gen_system(&mut r, 3, 5);
        let fm_sat = fm::is_satisfiable_fm(&sys);
        let sx_sat = simplex::feasible_point(&sys, &BTreeSet::new()).is_some();
        assert_eq!(fm_sat, sx_sat, "system:\n{sys}");
    }
}

/// Any witness point found by simplex satisfies the system.
#[test]
fn simplex_witness_is_valid() {
    let mut r = Rng64::new(0x317);
    for _ in 0..64 {
        let sys = gen_system(&mut r, 3, 5);
        if let Some(pt) = simplex::feasible_point(&sys, &BTreeSet::new()) {
            assert!(sys.holds_at(&pt), "bad witness for:\n{sys}");
        }
    }
}

/// FM projection is sound: projecting a satisfying point stays satisfying.
#[test]
fn fm_projection_preserves_points() {
    let mut r = Rng64::new(0x50);
    for _ in 0..64 {
        let sys = gen_system(&mut r, 3, 5);
        if let Some(pt) = simplex::feasible_point(&sys, &BTreeSet::new()) {
            match fm::eliminate(&sys, 0) {
                FmResult::Infeasible => panic!("witness exists yet FM says infeasible:\n{sys}"),
                FmResult::Projected(projected) => {
                    let mut reduced: BTreeMap<usize, Rat> = pt.clone();
                    reduced.remove(&0);
                    assert!(projected.holds_at(&reduced));
                }
            }
        }
    }
}

/// FM projection is complete: any point of the projection extends to a
/// point of the original (checked by substituting the projected point and
/// asking simplex for the eliminated variable).
#[test]
fn fm_projection_points_extend() {
    let mut r = Rng64::new(0xC0);
    for _ in 0..64 {
        let sys = gen_system(&mut r, 3, 4);
        if let FmResult::Projected(projected) = fm::eliminate(&sys, 0) {
            if let Some(ppt) = simplex::feasible_point(&projected, &BTreeSet::new()) {
                // Substitute the projected values into the original system.
                let mut narrowed = sys.clone();
                for (v, val) in &ppt {
                    narrowed = narrowed.substitute(*v, &LinExpr::constant(val.clone()));
                }
                let extended = simplex::feasible_point(&narrowed, &BTreeSet::new());
                assert!(extended.is_some(), "projected point does not extend; system:\n{sys}");
            }
        }
    }
}

/// dedup and canonicalization preserve the solution set.
#[test]
fn dedup_preserves_semantics() {
    let mut r = Rng64::new(0xDED);
    for _ in 0..64 {
        let sys = gen_system(&mut r, 3, 5);
        let d = sys.dedup();
        // Same satisfiability...
        assert_eq!(
            simplex::feasible_point(&sys, &BTreeSet::new()).is_some(),
            simplex::feasible_point(&d, &BTreeSet::new()).is_some()
        );
        // ...and any witness of either satisfies the other.
        if let Some(pt) = simplex::feasible_point(&sys, &BTreeSet::new()) {
            assert!(d.holds_at(&pt));
        }
        if let Some(pt) = simplex::feasible_point(&d, &BTreeSet::new()) {
            assert!(sys.holds_at(&pt));
        }
    }
}

/// The LP minimum really is a lower bound over random feasible samples.
#[test]
fn lp_minimum_is_lower_bound() {
    let mut r = Rng64::new(0x10);
    for _ in 0..64 {
        let sys = gen_system(&mut r, 3, 4);
        let nonneg: BTreeSet<usize> = (0..3).collect();
        let mut obj = LinExpr::zero();
        for v in 0..3 {
            obj.add_term(v, Rat::from_int(r.range_i64(-3, 3)));
        }
        let p = argus_linear::LpProblem {
            objective: obj.clone(),
            constraints: sys.clone(),
            nonneg: nonneg.clone(),
        };
        if let argus_linear::LpOutcome::Optimal { value, point } = p.solve() {
            assert!(sys.holds_at(&point));
            assert_eq!(obj.eval(&point), value.clone());
            // Any feasible point scores no better.
            if let Some(other) = simplex::feasible_point(&sys, &nonneg) {
                assert!(obj.eval(&other) >= value);
            }
        }
    }
}

mod fm_tier_props {
    //! Every redundancy tier must compute the *same projection* — tiers
    //! only remove redundant rows, never change the feasible set. Checked
    //! two ways: simplex witnesses of the input project into every tier's
    //! output (soundness per tier), and each tier's output is mutually
    //! implied with the tier-0 output (same polyhedron).

    use super::*;
    use argus_linear::fm::{FmConfig, FmStats, FmTier};

    /// Project `sys` onto `keep` at `tier`; `None` means FM derived
    /// infeasibility.
    fn project_at(
        sys: &ConstraintSystem,
        keep: &BTreeSet<usize>,
        tier: FmTier,
    ) -> Option<ConstraintSystem> {
        let mut stats = FmStats::default();
        let cfg = FmConfig::tiered(tier);
        match fm::project_onto_with(sys, keep, &cfg, &mut stats).expect("uncapped") {
            FmResult::Projected(p) => Some(p),
            FmResult::Infeasible => None,
        }
    }

    /// `a ⊆ b` as polyhedra: every row of `b` is implied by `a`.
    fn included(a: &ConstraintSystem, b: &ConstraintSystem) -> bool {
        b.constraints().iter().all(|c| simplex::is_implied(a, &BTreeSet::new(), c))
    }

    #[test]
    fn every_tier_preserves_the_feasible_set() {
        let mut r = Rng64::new(0x71E5);
        let keep: BTreeSet<usize> = [0, 1].into_iter().collect();
        for _ in 0..48 {
            let sys = gen_system(&mut r, 3, 5);
            let input_sat = simplex::feasible_point(&sys, &BTreeSet::new()).is_some();
            let tier0 = project_at(&sys, &keep, FmTier::Dedup);
            for tier in FmTier::ALL {
                let out = project_at(&sys, &keep, tier);
                // Whether surfaced as `Infeasible` or as an unsatisfiable
                // projected system, the output's satisfiability must match
                // the input's at every tier.
                let out_sat = match &out {
                    None => false,
                    Some(p) => simplex::feasible_point(p, &BTreeSet::new()).is_some(),
                };
                assert_eq!(out_sat, input_sat, "tier {tier:?} on:\n{sys}");
                // Same polyhedron as tier 0 (when both give systems).
                if let (Some(a), Some(b)) = (&tier0, &out) {
                    assert!(
                        included(a, b) && included(b, a),
                        "tier {tier:?} changed the projection of:\n{sys}"
                    );
                }
            }
        }
    }

    #[test]
    fn witnesses_project_into_every_tier() {
        let mut r = Rng64::new(0x71E6);
        let keep: BTreeSet<usize> = [0, 1].into_iter().collect();
        for _ in 0..48 {
            let sys = gen_system(&mut r, 3, 5);
            let Some(pt) = simplex::feasible_point(&sys, &BTreeSet::new()) else { continue };
            let mut projected_pt = pt.clone();
            projected_pt.retain(|v, _| keep.contains(v));
            for tier in FmTier::ALL {
                match project_at(&sys, &keep, tier) {
                    None => panic!("witness exists yet tier {tier:?} says infeasible:\n{sys}"),
                    Some(p) => assert!(
                        p.holds_at(&projected_pt),
                        "tier {tier:?} output excludes a projected witness of:\n{sys}"
                    ),
                }
            }
        }
    }

    #[test]
    fn stats_drops_account_for_row_reduction() {
        // rows_in − rows_out of any round equals the recorded drops for it;
        // summed over rounds the identity must survive every tier.
        let mut r = Rng64::new(0x71E7);
        let keep: BTreeSet<usize> = [0].into_iter().collect();
        for _ in 0..32 {
            let sys = gen_system(&mut r, 3, 5);
            for tier in FmTier::ALL {
                let mut stats = FmStats::default();
                let cfg = FmConfig::tiered(tier);
                let _ = fm::project_onto_with(&sys, &keep, &cfg, &mut stats);
                assert!(
                    stats.rows_out <= stats.rows_in + stats.pairs_combined,
                    "tier {tier:?}: impossible growth on:\n{sys}"
                );
            }
        }
    }
}

mod poly_props {
    use super::*;
    use argus_linear::Poly;

    fn gen_poly(r: &mut Rng64, dim: usize) -> Poly {
        Poly::from_constraints(dim, gen_system(r, dim, 4))
    }

    #[test]
    fn hull_contains_both() {
        let mut r = Rng64::new(0x11);
        for _ in 0..24 {
            let a = gen_poly(&mut r, 2);
            let b = gen_poly(&mut r, 2);
            let h = a.hull(&b);
            assert!(a.includes_in(&h));
            assert!(b.includes_in(&h));
        }
    }

    #[test]
    fn meet_included_in_both() {
        let mut r = Rng64::new(0x12);
        for _ in 0..24 {
            let a = gen_poly(&mut r, 2);
            let b = gen_poly(&mut r, 2);
            let m = a.meet(&b);
            assert!(m.includes_in(&a));
            assert!(m.includes_in(&b));
        }
    }

    #[test]
    fn widen_is_upper_bound() {
        let mut r = Rng64::new(0x13);
        for _ in 0..24 {
            let a = gen_poly(&mut r, 2);
            let b = gen_poly(&mut r, 2);
            // Widening of a by (a ⊔ b) must contain both.
            let j = a.hull(&b);
            let w = a.widen(&j);
            assert!(j.includes_in(&w));
        }
    }

    #[test]
    fn minimized_same_set() {
        let mut r = Rng64::new(0x14);
        for _ in 0..24 {
            let a = gen_poly(&mut r, 2);
            assert!(a.minimized().same_set(&a));
        }
    }

    #[test]
    fn sample_point_is_member() {
        let mut r = Rng64::new(0x15);
        for _ in 0..24 {
            let a = gen_poly(&mut r, 2);
            if let Some(pt) = a.sample_point() {
                assert!(a.contains_point(&pt));
            } else {
                assert!(a.is_empty());
            }
        }
    }
}
