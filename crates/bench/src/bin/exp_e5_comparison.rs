//! E5 — method-comparison matrix over the whole corpus.
//!
//! Regenerates the paper's related-work claims (§1.1, Appendix B) as a
//! table: which method proves which corpus program. The headline rows are
//! `perm` (only Sohn–Van Gelder), `merge` (fails under subterm/single-
//! argument methods, provable with binary orders), and the parser (mutual
//! recursion defeats Naish-style methods).

use argus_baselines::all_methods;
use argus_bench::ExperimentLog;

fn main() {
    let methods = all_methods();
    let mut columns: Vec<&str> = vec!["program", "terminates?"];
    let method_names: Vec<&'static str> = methods.iter().map(|m| m.name()).collect();
    columns.extend(method_names.iter().copied());

    let mut log = ExperimentLog::new(
        "E5",
        "who proves what: method × program matrix",
        "§1.1 related work + Appendix B",
        &columns,
    );

    let mut proved_counts = vec![0usize; methods.len()];
    let mut unsound = Vec::new();
    for entry in argus_corpus::corpus() {
        let program = entry.program().expect("parse");
        let (query, adornment) = entry.query_key();
        let mut cells =
            vec![entry.name.to_string(), if entry.terminates { "yes".into() } else { "no".into() }];
        for (i, m) in methods.iter().enumerate() {
            let r = m.prove(&program, &query, &adornment);
            cells.push(if r.proved { "proved".into() } else { "-".into() });
            if r.proved {
                proved_counts[i] += 1;
                if !entry.terminates {
                    unsound.push(format!("{} wrongly proved {}", m.name(), entry.name));
                }
            }
        }
        log.row(&cells);
    }
    let mut totals = vec!["TOTAL proved".to_string(), String::new()];
    totals.extend(proved_counts.iter().map(|c| c.to_string()));
    log.row(&totals);

    assert!(unsound.is_empty(), "soundness violations: {unsound:?}");
    log.note(
        "Expected dominance: Sohn–Van Gelder ⊇ every baseline on this corpus, \
         and perm is proved ONLY by Sohn–Van Gelder (the 3-variable append \
         constraint is out of reach of subterm, single-measure, and binary-order \
         methods).",
    );
    log.emit();
}
