//! Empirical validation of the success-groundness analysis: for every
//! corpus entry, run the sample queries and check that each solution
//! grounds exactly the positions the analysis claims (the analysis may be
//! conservative — claim fewer — but never the reverse).

use argus::interp::sld::{solve, InterpOptions};
use argus::logic::groundness::analyze_groundness;
use argus::logic::parser::parse_query;
use argus::logic::Term;
use argus::prelude::*;

#[test]
fn groundness_claims_hold_at_runtime() {
    let opts = InterpOptions { max_steps: 60_000, ..InterpOptions::default() };
    let mut checked = 0usize;
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let groundness = analyze_groundness(&program, &query, adornment.clone());
        let claimed = groundness.success_ground(&query, &adornment);

        for q in entry.sample_queries {
            let goals = parse_query(q).unwrap();
            // Only single-goal queries of the analyzed predicate apply.
            if goals.len() != 1 || goals[0].atom.key() != query {
                continue;
            }
            // The sample must exercise the declared mode: bound positions
            // ground in the query itself.
            let bound_ok =
                adornment.bound_positions().iter().all(|&i| goals[0].atom.args[i].is_ground());
            if !bound_ok {
                continue;
            }
            let out = solve(&program, &goals, &opts);
            let argus::interp::Outcome::Completed { solutions, .. } = out else {
                continue; // nonterminating controls
            };
            for sol in &solutions {
                // Reconstruct each claimed-ground argument under the
                // solution bindings and check groundness.
                for &i in &claimed {
                    let arg = &goals[0].atom.args[i];
                    let resolved = resolve_with(arg, sol);
                    assert!(
                        resolved.is_ground(),
                        "{}: {q}: position {i} claimed ground but solution \
                         leaves {resolved}",
                        entry.name
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 50, "expected many groundness checks, did {checked}");
}

/// Substitute a solution's bindings (var name -> term) into a term.
fn resolve_with(t: &Term, sol: &std::collections::BTreeMap<String, Term>) -> Term {
    match t {
        Term::Var(v) => sol.get(&**v).cloned().unwrap_or_else(|| t.clone()),
        Term::App(f, args) => Term::App(*f, args.iter().map(|a| resolve_with(a, sol)).collect()),
    }
}

/// Negative control: the wildcard program's free position must NOT be
/// claimed ground — and at runtime it is indeed non-ground.
#[test]
fn wildcard_claim_matches_runtime() {
    let program = argus::logic::parser::parse_program("q(_, b).\ntop(X) :- q(X, Y).").unwrap();
    let query = PredKey::new("q", 2);
    let adornment = Adornment::parse("ff").unwrap();
    let groundness =
        analyze_groundness(&program, &PredKey::new("top", 1), Adornment::parse("f").unwrap());
    let claimed = groundness.success_ground(&query, &adornment);
    assert!(!claimed.contains(&0), "arg1 of q(_, b) must not be claimed: {claimed:?}");
    assert!(claimed.contains(&1), "arg2 is the ground constant b");

    // Runtime agreement.
    let goals = parse_query("q(A, B)").unwrap();
    let out = solve(&program, &goals, &InterpOptions::default());
    if let argus::interp::Outcome::Completed { solutions, .. } = out {
        assert_eq!(solutions.len(), 1);
        assert!(!solutions[0]["A"].is_ground(), "A stays free");
        assert!(solutions[0]["B"].is_ground());
    } else {
        panic!("q query must complete");
    }
}
