//! Choice of the `δᵢⱼ` level decrements for mutual recursion (§6.1) and the
//! zero-weight-cycle check.
//!
//! With mutual recursion the decrease requirement is `θᵢᵀx ≥ θⱼᵀy + δᵢⱼ`
//! per dependency edge, and the `δᵢⱼ`, viewed as edge weights, must make
//! every cycle of the SCC's dependency graph strictly positive. The paper's
//! procedure:
//!
//! 1. set `δᵢⱼ = 0` (for `i ≠ j`) where the dual forces it — when a pair's
//!    value row has only zeros in `cᵀ` and `aᵀ`;
//! 2. set all other `δᵢⱼ = 1` (and `δᵢᵢ = 1` always);
//! 3. compute the min-plus closure by Floyd's algorithm and report a
//!    zero-weight cycle, if any, as strong evidence of nontermination.

use crate::pairs::RuleSubgoalSystem;
use argus_logic::PredKey;
use std::collections::BTreeMap;

/// Assignment of δ values to SCC dependency edges `(i, j)`.
#[derive(Debug, Clone, Default)]
pub struct DeltaAssignment {
    /// δ per (head, subgoal) predicate edge.
    pub delta: BTreeMap<(PredKey, PredKey), i64>,
}

impl DeltaAssignment {
    /// The δ for an edge (defaults to 1 for self-edges if unset).
    pub fn get(&self, head: &PredKey, sub: &PredKey) -> i64 {
        self.delta.get(&(head.clone(), sub.clone())).copied().unwrap_or(if head == sub {
            1
        } else {
            0
        })
    }
}

/// Outcome of the δ-selection step.
#[derive(Debug, Clone)]
pub enum DeltaOutcome {
    /// An assignment with all cycles strictly positive.
    Ok(DeltaAssignment),
    /// A zero-weight cycle exists: the listed predicates form a cycle along
    /// which no size decrease is required — strong evidence of
    /// nontermination (paper §6.1 step 3).
    ZeroWeightCycle(Vec<PredKey>),
}

/// Run the paper's §6.1 procedure over the rule-subgoal pairs of one SCC.
///
/// `members` is the SCC's predicate set; `pairs` all its rule × recursive-
/// subgoal systems.
pub fn assign_deltas(members: &[PredKey], pairs: &[RuleSubgoalSystem]) -> DeltaOutcome {
    // Step 1 & 2: per-edge δ. An edge carries several pairs; if any pair on
    // the edge forces 0 the whole edge must use 0 (the constraint applies
    // to every recursive call through that pair).
    let mut delta: BTreeMap<(PredKey, PredKey), i64> = BTreeMap::new();
    for pair in pairs {
        let key = (pair.head_pred.clone(), pair.sub_pred.clone());
        let forced_zero = pair.head_pred != pair.sub_pred && pair.forces_zero_delta();
        let value = if forced_zero { 0 } else { 1 };
        delta.entry(key).and_modify(|d| *d = (*d).min(value)).or_insert(value);
    }
    // δᵢᵢ is always 1 (§4: "simply 1 if i = j").
    for (edge, d) in delta.iter_mut() {
        if edge.0 == edge.1 {
            *d = 1;
        }
    }

    // Step 3: min-plus closure by Floyd's algorithm; detect zero cycles.
    let n = members.len();
    let index: BTreeMap<&PredKey, usize> =
        members.iter().enumerate().map(|(i, p)| (p, i)).collect();
    const INF: i64 = i64::MAX / 4;
    let mut dist = vec![vec![INF; n]; n];
    let mut next_hop = vec![vec![usize::MAX; n]; n];
    for ((h, s), d) in &delta {
        let (i, j) = (index[h], index[s]);
        if *d < dist[i][j] {
            dist[i][j] = *d;
            next_hop[i][j] = j;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if dist[i][k] == INF {
                continue;
            }
            for j in 0..n {
                if dist[k][j] == INF {
                    continue;
                }
                let through = dist[i][k] + dist[k][j];
                if through < dist[i][j] {
                    dist[i][j] = through;
                    next_hop[i][j] = next_hop[i][k];
                }
            }
        }
    }
    for i in 0..n {
        if dist[i][i] != INF && dist[i][i] <= 0 {
            // Reconstruct the offending cycle.
            let mut cycle = vec![members[i].clone()];
            let mut cur = next_hop[i][i];
            while cur != i && cur != usize::MAX && cycle.len() <= n {
                cycle.push(members[cur].clone());
                cur = next_hop[cur][i];
            }
            return DeltaOutcome::ZeroWeightCycle(cycle);
        }
    }

    DeltaOutcome::Ok(DeltaAssignment { delta })
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_linear::LinExpr;
    use argus_linear::Rat;

    fn pk(name: &str) -> PredKey {
        PredKey::new(name, 2)
    }

    /// A synthetic pair with chosen constants.
    fn pair(head: &str, sub: &str, a_const: i64, c_const: i64) -> RuleSubgoalSystem {
        let mut x = LinExpr::constant(Rat::from_int(a_const));
        x.add_term(0, Rat::one());
        let y = LinExpr::var(0);
        let c_rows =
            if c_const >= 0 { vec![LinExpr::constant(Rat::from_int(c_const))] } else { vec![] };
        RuleSubgoalSystem {
            head_pred: pk(head),
            sub_pred: pk(sub),
            rule_index: 0,
            subgoal_index: 0,
            alpha_count: 1,
            x_rows: vec![x],
            y_rows: vec![y],
            c_rows,
            alpha_names: vec!["v".into()],
        }
    }

    #[test]
    fn parser_delta_pattern() {
        // Example 6.1's edges: (e,t) and (t,n) forced to 0; (n,e) keeps 1;
        // self loops 1. No zero cycle: e→t→n→e weighs 1.
        let members = vec![pk("e"), pk("t"), pk("n")];
        let pairs = vec![
            pair("e", "e", 0, 4),  // c nonzero -> delta stays 1
            pair("e", "t", 0, -1), // a = 0, no c -> forced 0
            pair("t", "t", 0, 4),
            pair("t", "n", 0, -1), // forced 0
            pair("n", "e", 2, -1), // a = 2 -> keeps 1
        ];
        match assign_deltas(&members, &pairs) {
            DeltaOutcome::Ok(d) => {
                assert_eq!(d.get(&pk("e"), &pk("t")), 0);
                assert_eq!(d.get(&pk("t"), &pk("n")), 0);
                assert_eq!(d.get(&pk("n"), &pk("e")), 1);
                assert_eq!(d.get(&pk("e"), &pk("e")), 1);
            }
            DeltaOutcome::ZeroWeightCycle(c) => panic!("unexpected zero cycle: {c:?}"),
        }
    }

    #[test]
    fn zero_cycle_detected() {
        // p→q and q→p both forced to 0: the 2-cycle has weight 0.
        let members = vec![pk("p"), pk("q")];
        let pairs = vec![pair("p", "q", 0, -1), pair("q", "p", 0, -1)];
        match assign_deltas(&members, &pairs) {
            DeltaOutcome::ZeroWeightCycle(cycle) => {
                assert!(cycle.contains(&pk("p")) || cycle.contains(&pk("q")));
                assert!(!cycle.is_empty());
            }
            DeltaOutcome::Ok(_) => panic!("expected a zero-weight cycle"),
        }
    }

    #[test]
    fn self_loop_is_always_one() {
        // Even a self-pair with zero constants keeps δ = 1 (i = j).
        let members = vec![pk("p")];
        let pairs = vec![pair("p", "p", 0, -1)];
        match assign_deltas(&members, &pairs) {
            DeltaOutcome::Ok(d) => assert_eq!(d.get(&pk("p"), &pk("p")), 1),
            DeltaOutcome::ZeroWeightCycle(c) => panic!("self loop δ=1: {c:?}"),
        }
    }

    #[test]
    fn min_over_parallel_edges() {
        // Two pairs on the same edge, one forcing zero: edge gets 0.
        let members = vec![pk("p"), pk("q")];
        let pairs = vec![pair("p", "q", 2, -1), pair("p", "q", 0, -1), pair("q", "p", 3, -1)];
        match assign_deltas(&members, &pairs) {
            DeltaOutcome::Ok(d) => {
                assert_eq!(d.get(&pk("p"), &pk("q")), 0);
                assert_eq!(d.get(&pk("q"), &pk("p")), 1);
            }
            DeltaOutcome::ZeroWeightCycle(c) => panic!("cycle p→q→p weighs 1: {c:?}"),
        }
    }

    #[test]
    fn long_zero_cycle() {
        let members = vec![pk("a"), pk("b"), pk("c")];
        let pairs = vec![pair("a", "b", 0, -1), pair("b", "c", 0, -1), pair("c", "a", 0, -1)];
        match assign_deltas(&members, &pairs) {
            DeltaOutcome::ZeroWeightCycle(cycle) => assert_eq!(cycle.len(), 3),
            DeltaOutcome::Ok(_) => panic!("expected 3-cycle of weight 0"),
        }
    }
}
