//! `scale_gate` — regression gate for the million-clause substrate.
//!
//! Reads a bench report containing the `scale` suite and fails if the
//! 50k-clause lane regresses. Two kinds of checks:
//!
//! * **Counter floors** — the generated program's shape (rules,
//!   predicates, SCCs) and the analysis work counters (SCCs analyzed, FM
//!   rows) are deterministic; if any collapses, the workload silently
//!   shrank and the timing ceiling below means nothing.
//! * **Wall-clock ceiling** — unlike `fm_gate`, this gate exists for a
//!   perf substrate (interning, arena terms, small-int rows), so one
//!   generous end-to-end ceiling *is* gated: the 50k-clause analyze must
//!   finish inside [`ANALYZE_50K_CEILING_S`], ~4× the post-substrate
//!   measurement yet below the pre-substrate time — loaded CI machines
//!   stay green, losing the substrate wins does not.
//!
//! Usage: `scale_gate [PATH]` (default `BENCH_argus.json`).

use argus_bench::json::{scan_num_field, scan_str_field};
use std::collections::BTreeMap;

/// Ceiling for `scale/analyze/50k`, in seconds. Measured 111 s with the
/// substrate (514 s before it) on the reference runner.
const ANALYZE_50K_CEILING_S: f64 = 480.0;

/// Deterministic floors on the 50k lane: `(sample id, counter, floor)`.
const FLOORS: &[(&str, &str, f64)] = &[
    ("scale/analyze/50k", "rules", 50_000.0),
    ("scale/analyze/50k", "predicates", 14_000.0),
    ("scale/analyze/50k", "sccs", 9_000.0),
    ("scale/analyze/50k", "analyzed_sccs", 9_000.0),
    ("scale/analyze/50k", "fm_rows_in", 100_000.0),
    ("scale/analyze/50k", "fm_pairs_combined", 50_000.0),
];

fn counter(samples: &BTreeMap<String, String>, id: &str, key: &str) -> Result<f64, String> {
    let line = samples.get(id).ok_or_else(|| format!("sample `{id}` missing from report"))?;
    scan_num_field(line, key).ok_or_else(|| format!("sample `{id}` has no field `{key}`"))
}

fn run(path: &str) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        if let Some(id) = scan_str_field(line, "id") {
            samples.insert(id, line.to_string());
        }
    }
    if samples.is_empty() {
        return Err(format!("no samples found in {path}"));
    }

    let mut failures = Vec::new();
    for (id, key, floor) in FLOORS {
        let v = counter(&samples, id, key)?;
        let ok = v >= *floor;
        eprintln!(
            "scale_gate: {} {id} {key} = {v:.0} (floor {floor})",
            if ok { "ok  " } else { "FAIL" }
        );
        if !ok {
            failures.push(format!("{id} {key} = {v:.0} < {floor}"));
        }
    }

    let wall_s = counter(&samples, "scale/analyze/50k", "ns_per_iter")? / 1e9;
    let ok = wall_s <= ANALYZE_50K_CEILING_S;
    eprintln!(
        "scale_gate: {} scale/analyze/50k wall = {wall_s:.1}s (ceiling {ANALYZE_50K_CEILING_S}s)",
        if ok { "ok  " } else { "FAIL" }
    );
    if !ok {
        failures.push(format!("scale/analyze/50k wall = {wall_s:.1}s > {ANALYZE_50K_CEILING_S}s"));
    }
    Ok(failures)
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_argus.json".to_string());
    match run(&path) {
        Ok(failures) if failures.is_empty() => {
            eprintln!("scale_gate: substrate floors and ceiling hold ({path})");
        }
        Ok(failures) => {
            for f in &failures {
                eprintln!("scale_gate: FAIL {f}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("scale_gate: {e}");
            std::process::exit(1);
        }
    }
}
