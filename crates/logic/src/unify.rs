//! Substitutions and unification.
//!
//! Substitutions are triangular: a binding may map a variable to a term that
//! itself contains bound variables; [`Subst::resolve`] walks bindings to a
//! fixed point. Unification optionally performs the occurs check (Prolog
//! omits it by default; the analyzer's syntactic transformations use it).

use crate::intern::Sym;
use crate::program::Atom;
use crate::term::Term;
use std::collections::HashMap;

/// A substitution: a finite map from variables to terms. Keys hash by
/// interned-symbol id, so lookups never touch string bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Subst {
    map: HashMap<Sym, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a direct binding.
    pub fn get(&self, v: Sym) -> Option<&Term> {
        self.map.get(&v)
    }

    /// Bind `v` to `t`. Overwrites silently; callers maintain consistency.
    pub fn bind(&mut self, v: Sym, t: Term) {
        self.map.insert(v, t);
    }

    /// Remove a binding (used by trail-based engines to backtrack).
    pub fn unbind(&mut self, v: Sym) {
        self.map.remove(&v);
    }

    /// Walk variable bindings at the *root* only: follow `v -> t` while `t`
    /// is itself a bound variable.
    pub fn walk<'a>(&'a self, t: &'a Term) -> &'a Term {
        let mut cur = t;
        let mut steps = 0usize;
        while let Term::Var(v) = cur {
            match self.map.get(v) {
                Some(next) => {
                    cur = next;
                    steps += 1;
                    debug_assert!(steps <= self.map.len() + 1, "binding cycle");
                }
                None => break,
            }
        }
        cur
    }

    /// Fully apply the substitution to a term.
    ///
    /// Safe on cyclic substitutions (e.g. `X -> f(X)` formed by unifying
    /// with the occurs check off): a variable reached again inside its own
    /// binding is left as-is, cutting the cycle after one unfolding.
    pub fn resolve(&self, t: &Term) -> Term {
        let mut stack = Vec::new();
        self.resolve_guarded(t, &mut stack)
    }

    fn resolve_guarded(&self, t: &Term, stack: &mut Vec<Sym>) -> Term {
        let mut cur = t;
        let mut pushed = 0usize;
        while let Term::Var(v) = cur {
            if stack.contains(v) {
                // Cycle: keep the variable unresolved.
                for _ in 0..pushed {
                    stack.pop();
                }
                return Term::Var(*v);
            }
            match self.map.get(v) {
                Some(next) => {
                    stack.push(*v);
                    pushed += 1;
                    cur = next;
                }
                None => break,
            }
        }
        let out = match cur {
            Term::Var(_) => cur.clone(),
            Term::App(f, args) => {
                Term::App(*f, args.iter().map(|a| self.resolve_guarded(a, stack)).collect())
            }
        };
        for _ in 0..pushed {
            stack.pop();
        }
        out
    }

    /// Apply to an atom.
    pub fn resolve_atom(&self, a: &Atom) -> Atom {
        Atom { name: a.name, args: a.args.iter().map(|t| self.resolve(t)).collect(), span: a.span }
    }

    /// Does `v` occur in `t` after resolution?
    fn occurs(&self, v: Sym, t: &Term) -> bool {
        match self.walk(t) {
            Term::Var(w) => *w == v,
            Term::App(_, args) => args.iter().any(|a| self.occurs(v, a)),
        }
    }
}

/// Unify two terms under an existing substitution, extending it in place.
/// Returns `false` (leaving the substitution in an unspecified extended
/// state) if unification fails — callers that need rollback should clone.
pub fn unify(s: &mut Subst, a: &Term, b: &Term, occurs_check: bool) -> bool {
    let ra = s.walk(a).clone();
    let rb = s.walk(b).clone();
    match (&ra, &rb) {
        (Term::Var(v), Term::Var(w)) if v == w => true,
        (Term::Var(v), t) => {
            if occurs_check && s.occurs(*v, t) {
                return false;
            }
            s.bind(*v, t.clone());
            true
        }
        (t, Term::Var(v)) => {
            if occurs_check && s.occurs(*v, t) {
                return false;
            }
            s.bind(*v, t.clone());
            true
        }
        (Term::App(f, fa), Term::App(g, ga)) => {
            if f != g || fa.len() != ga.len() {
                return false;
            }
            fa.iter().zip(ga.iter()).all(|(x, y)| unify(s, x, y, occurs_check))
        }
    }
}

/// Compute the most general unifier of two terms from scratch.
pub fn mgu(a: &Term, b: &Term, occurs_check: bool) -> Option<Subst> {
    let mut s = Subst::new();
    if unify(&mut s, a, b, occurs_check) {
        Some(s)
    } else {
        None
    }
}

/// Unify two atoms (same predicate and arity required).
pub fn unify_atoms(s: &mut Subst, a: &Atom, b: &Atom, occurs_check: bool) -> bool {
    if a.name != b.name || a.args.len() != b.args.len() {
        return false;
    }
    a.args.iter().zip(b.args.iter()).all(|(x, y)| unify(s, x, y, occurs_check))
}

/// Do two atoms unify, without keeping the unifier?
pub fn atoms_unifiable(a: &Atom, b: &Atom, occurs_check: bool) -> bool {
    let mut s = Subst::new();
    unify_atoms(&mut s, a, b, occurs_check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;

    fn t(src: &str) -> Term {
        parse_term(src).unwrap()
    }

    #[test]
    fn unify_identical_constants() {
        assert!(mgu(&t("a"), &t("a"), true).is_some());
        assert!(mgu(&t("a"), &t("b"), true).is_none());
    }

    #[test]
    fn unify_var_to_term() {
        let s = mgu(&t("X"), &t("f(a)"), true).unwrap();
        assert_eq!(s.resolve(&t("X")), t("f(a)"));
    }

    #[test]
    fn unify_compound() {
        let s = mgu(&t("f(X, g(Y))"), &t("f(a, g(b))"), true).unwrap();
        assert_eq!(s.resolve(&t("X")), t("a"));
        assert_eq!(s.resolve(&t("Y")), t("b"));
    }

    #[test]
    fn unify_propagates_bindings() {
        // f(X, X) with f(a, Y) should bind both X=a and Y=a.
        let s = mgu(&t("f(X, X)"), &t("f(a, Y)"), true).unwrap();
        assert_eq!(s.resolve(&t("Y")), t("a"));
    }

    #[test]
    fn unify_fails_on_clash() {
        assert!(mgu(&t("f(X, b)"), &t("f(a, c)"), true).is_none());
        assert!(mgu(&t("f(X)"), &t("g(X)"), true).is_none());
        assert!(mgu(&t("f(X)"), &t("f(X, Y)"), true).is_none());
    }

    #[test]
    fn occurs_check_behaviour() {
        // X = f(X): fails with occurs check, "succeeds" without.
        assert!(mgu(&t("X"), &t("f(X)"), true).is_none());
        assert!(mgu(&t("X"), &t("f(X)"), false).is_some());
    }

    #[test]
    fn mgu_is_most_general() {
        // f(X, Y) vs f(Y, Z): the mgu must not ground anything.
        let s = mgu(&t("f(X, Y)"), &t("f(Y, Z)"), true).unwrap();
        let rx = s.resolve(&t("X"));
        let rz = s.resolve(&t("Z"));
        assert_eq!(rx, rz, "X and Z must be aliased");
        assert!(rx.is_var());
    }

    #[test]
    fn unifier_unifies() {
        let a = t("p(f(X), [a|T])");
        let b = t("p(Y, [a, b])");
        let s = mgu(&a, &b, true).unwrap();
        assert_eq!(s.resolve(&a), s.resolve(&b));
    }

    #[test]
    fn atoms() {
        let a = Atom::new("p", vec![t("X")]);
        let b = Atom::new("p", vec![t("f(a)")]);
        assert!(atoms_unifiable(&a, &b, true));
        let c = Atom::new("q", vec![t("f(a)")]);
        assert!(!atoms_unifiable(&a, &c, true));
    }

    #[test]
    fn resolve_walks_chains() {
        let mut s = Subst::new();
        assert!(unify(&mut s, &t("X"), &t("Y"), true));
        assert!(unify(&mut s, &t("Y"), &t("f(Z)"), true));
        assert!(unify(&mut s, &t("Z"), &t("a"), true));
        assert_eq!(s.resolve(&t("X")), t("f(a)"));
    }

    #[test]
    fn cyclic_binding_resolves_finitely() {
        // X = f(X) with the occurs check off creates a cyclic substitution.
        // resolve must terminate, unfolding the cycle exactly once.
        let s = mgu(&t("X"), &t("f(X)"), false).unwrap();
        assert_eq!(s.resolve(&t("X")), t("f(X)"));
        assert_eq!(s.resolve(&t("g(X, a)")), t("g(f(X), a)"));
    }

    #[test]
    fn mutually_cyclic_bindings_resolve_finitely() {
        // X = f(Y), Y = g(X): resolving either side must not diverge.
        let mut s = Subst::new();
        assert!(unify(&mut s, &t("X"), &t("f(Y)"), false));
        assert!(unify(&mut s, &t("Y"), &t("g(X)"), false));
        assert_eq!(s.resolve(&t("X")), t("f(g(X))"));
        assert_eq!(s.resolve(&t("Y")), t("g(f(Y))"));
    }

    #[test]
    fn occurs_check_rejects_nested_cycle() {
        // X occurs below the surface: f(X, Y) vs f(g(Y), h(X)) binds
        // X=g(Y), then Y=h(X) closes a cycle through two bindings.
        assert!(mgu(&t("f(X, Y)"), &t("f(g(Y), h(X))"), true).is_none());
        let s = mgu(&t("f(X, Y)"), &t("f(g(Y), h(X))"), false).unwrap();
        // Resolution still terminates on the cyclic result.
        let r = s.resolve(&t("X"));
        assert!(!r.is_var());
    }

    #[test]
    fn occurs_check_allows_repeated_var_without_cycle() {
        // Repeated variables alone are not cycles.
        assert!(mgu(&t("f(X, X)"), &t("f(Y, Y)"), true).is_some());
        assert!(mgu(&t("f(X, g(X))"), &t("f(a, g(a))"), true).is_some());
    }

    #[test]
    fn list_unification() {
        let s = mgu(&t("[H|T]"), &t("[a, b, c]"), true).unwrap();
        assert_eq!(s.resolve(&t("H")), t("a"));
        assert_eq!(s.resolve(&t("T")), t("[b, c]"));
    }
}
