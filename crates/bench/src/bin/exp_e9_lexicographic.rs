//! E9 — the lexicographic extension vs the paper's single combination.
//!
//! §7 of the paper concedes incompleteness; the canonical miss is descent
//! that alternates between arguments (Ackermann). This experiment runs the
//! whole corpus under both modes and reports exactly which programs the
//! lexicographic tuple rescues — and that it stays sound on the
//! nonterminating controls.

use argus_bench::ExperimentLog;
use argus_core::{analyze, AnalysisOptions, SccOutcome, Verdict};

fn main() {
    let mut log = ExperimentLog::new(
        "E9",
        "single linear combination (paper) vs lexicographic tuple (extension)",
        "§7 limitations, lifted",
        &["program", "terminates?", "paper method", "lexicographic", "levels"],
    );

    let mut rescued = Vec::new();
    let mut unsound = Vec::new();
    for entry in argus_corpus::corpus() {
        let program = entry.program().expect("parse");
        let (query, adornment) = entry.query_key();
        let base = analyze(&program, &query, adornment.clone(), &AnalysisOptions::default());
        let lex_options = AnalysisOptions { lexicographic: true, ..AnalysisOptions::default() };
        let lex = analyze(&program, &query, adornment, &lex_options);

        let max_levels = lex
            .sccs
            .iter()
            .filter_map(|s| match &s.outcome {
                SccOutcome::ProvedLexicographic { proof } => Some(proof.levels.len()),
                SccOutcome::Proved { .. } => Some(1),
                _ => None,
            })
            .max()
            .unwrap_or(0);

        let base_ok = base.verdict == Verdict::Terminates;
        let lex_ok = lex.verdict == Verdict::Terminates;
        if !base_ok && lex_ok {
            rescued.push(entry.name);
        }
        if lex_ok && !entry.terminates {
            unsound.push(entry.name);
        }
        log.row(&[
            entry.name.into(),
            if entry.terminates { "yes" } else { "no" }.into(),
            format!("{:?}", base.verdict),
            format!("{:?}", lex.verdict),
            if lex_ok { max_levels.to_string() } else { "-".into() },
        ]);
    }

    log.note(format!(
        "Programs rescued by the lexicographic tuple: {}.",
        if rescued.is_empty() { "none".to_string() } else { rescued.join(", ") }
    ));
    log.note(
        "Expected: ackermann flips to Terminates (2 levels); mergesort stays \
         Unknown (its missing fact is disjunctive, not lexicographic); all \
         nonterminating controls stay unproved.",
    );
    assert!(rescued.contains(&"ackermann"), "ackermann must be rescued");
    assert!(unsound.is_empty(), "soundness violations: {unsound:?}");
    log.emit();
}
