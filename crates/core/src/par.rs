//! A tiny deterministic fork-join helper for the analysis pipeline.
//!
//! The analyzer's parallel units (SCCs at one topological level, θ
//! projection probes within an SCC) are pure functions of immutable shared
//! inputs, so parallelism here is just a work-stealing index over a slice
//! plus a deterministic merge: results are reassembled **in input order**,
//! which makes every downstream artifact (reports, certificates, JSON)
//! byte-identical to a sequential run regardless of thread scheduling.
//!
//! `std::thread::scope` keeps lifetimes simple (no `'static` bounds, no
//! channels) and propagates worker panics to the caller.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a requested parallelism degree: `0` means "use the machine"
/// (`available_parallelism`), anything else is taken literally. The result
/// is additionally clamped to the number of work items.
pub fn effective_workers(requested: usize, items: usize) -> usize {
    let base = if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    };
    base.clamp(1, items.max(1))
}

/// Map `f` over `items` with up to `workers` OS threads, returning results
/// in input order. With `workers <= 1` (or one item) this degrades to a
/// plain sequential map on the calling thread — no threads, no overhead.
///
/// `f` receives `(index, &item)`. Work is claimed from a shared atomic
/// counter, so threads self-balance across items of uneven cost.
pub fn par_map_indexed<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let w = workers.clamp(1, n.max(1));
    if w <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..w)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            collected.extend(h.join().expect("analysis worker panicked"));
        }
    });
    collected.sort_unstable_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// A hash map split across independently locked shards, for caches shared
/// by the worker pool: concurrent inserts of *different* keys rarely
/// contend, and the lock is held only for one probe or insert, never while
/// computing a value.
///
/// Values are first-insert-wins: if two workers race to fill the same key,
/// the second insert is discarded — callers must only insert values that
/// are pure functions of the key, so the discarded value is identical and
/// the cache contents stay deterministic.
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// A map with a fixed small power-of-two shard count.
    pub fn new() -> ShardedMap<K, V> {
        ShardedMap { shards: (0..16).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut h = std::hash::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Clone the cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().expect("shard poisoned").get(key).cloned()
    }

    /// Insert `value` for `key` unless a value is already present; returns
    /// the value that ends up cached.
    pub fn insert_if_absent(&self, key: K, value: V) -> V {
        let mut map = self.shard(&key).lock().expect("shard poisoned");
        map.entry(key).or_insert(value).clone()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("shard poisoned").len()).sum()
    }

    /// True iff no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_map_first_insert_wins() {
        let m: ShardedMap<u32, u32> = ShardedMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        assert_eq!(m.insert_if_absent(1, 10), 10);
        assert_eq!(m.insert_if_absent(1, 99), 10, "second insert discarded");
        assert_eq!(m.get(&1), Some(10));
        for k in 0..100 {
            m.insert_if_absent(k, k * 2);
        }
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn sharded_map_is_shared_across_threads() {
        let m: ShardedMap<usize, usize> = ShardedMap::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let m = &m;
                scope.spawn(move || {
                    for k in 0..50 {
                        m.insert_if_absent(k, k + t); // racy values, same keys
                    }
                });
            }
        });
        assert_eq!(m.len(), 50);
    }

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 4, 7] {
            let out = par_map_indexed(&items, workers, |i, &x| {
                // Uneven cost to shuffle completion order.
                if i % 3 == 0 {
                    std::thread::yield_now();
                }
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_indexed(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map_indexed(&[7u8], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn effective_worker_resolution() {
        assert_eq!(effective_workers(1, 100), 1);
        assert_eq!(effective_workers(4, 2), 2, "clamped to item count");
        assert_eq!(effective_workers(4, 0), 1, "no items still means one worker");
        assert!(effective_workers(0, 100) >= 1, "auto resolves to at least one");
    }

    #[test]
    fn index_matches_item() {
        let items = vec!["a", "b", "c", "d"];
        let out = par_map_indexed(&items, 3, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }
}
