//! The adorned-program construction.
//!
//! The paper assumes "preprocessing has arranged that every predicate has
//! the same bound-free adornment" (§3). When a predicate is called with two
//! different adornments — e.g. `append` in the `perm` rule of Example 3.1,
//! called once with only its third argument bound and once with its first
//! two bound — that assumption is established by the classic *adornment
//! renaming*: one copy of the predicate per distinct calling adornment,
//! with call sites rewritten to the matching copy. Copies are named
//! `name__adornment` (e.g. `append__bbf`); a predicate reached with a
//! single adornment keeps its original name, so the paper's examples keep
//! their familiar spelling.

use crate::groundness::{
    analyze_groundness, apply_groundness, call_adornment as ground_call_adornment,
};
use crate::intern::Sym;
use crate::modes::{is_builtin, Adornment, Mode, ModeMap};
use crate::program::{Atom, Literal, PredKey, ProcIndex, Program, Rule};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Result of adorning a program for a query.
#[derive(Debug, Clone)]
pub struct AdornedProgram {
    /// The rewritten program: one predicate copy per (predicate, adornment).
    pub program: Program,
    /// The (now unique) adornment of every adorned IDB predicate.
    pub modes: ModeMap,
    /// Adorned predicate → original predicate.
    pub origin: BTreeMap<PredKey, PredKey>,
    /// The adorned name of the query predicate.
    pub query: PredKey,
}

/// Construct the adorned program for `query` called with `adornment`.
///
/// EDB predicates (no rules) and builtins are never renamed — their
/// adornment is irrelevant to rule rewriting. IDB predicates reached with
/// exactly one adornment keep their name; others get one copy per
/// adornment, named `name__adornment`.
pub fn adorn_program(program: &Program, query: &PredKey, adornment: Adornment) -> AdornedProgram {
    assert_eq!(query.arity, adornment.arity(), "query adornment arity mismatch");
    let idb = program.idb_predicates();

    // Pass 1: success-groundness fixpoint, which also discovers every
    // reachable (predicate, call adornment) pair under the refined
    // semantics (a subgoal only grounds the variables its success is
    // guaranteed to ground — see [`crate::groundness`]).
    let groundness = analyze_groundness(program, query, adornment.clone());
    let mut discovered: BTreeMap<PredKey, BTreeSet<Adornment>> = BTreeMap::new();
    for ((pred, adn), _) in groundness.pairs() {
        discovered.entry(pred.clone()).or_default().insert(adn.clone());
    }
    discovered.entry(query.clone()).or_default().insert(adornment.clone());

    // Naming: single-adornment IDB predicates keep their name.
    let adorned_name = |pred: &PredKey, adn: &Adornment| -> Sym {
        let multi = discovered.get(pred).map(|s| s.len() > 1).unwrap_or(false);
        if multi && idb.contains(pred) {
            Sym::new(format!("{}__{}", pred.name, adn))
        } else {
            pred.name
        }
    };

    // Pass 2: emit adorned rules.
    let index = ProcIndex::build(program);
    let mut rules = Vec::new();
    let mut modes = ModeMap::default();
    let mut origin = BTreeMap::new();
    let mut ground: HashSet<Sym> = HashSet::new();
    for (pred, adns) in &discovered {
        if !idb.contains(pred) {
            continue;
        }
        for adn in adns {
            let new_name = adorned_name(pred, adn);
            let new_key = PredKey { name: new_name, arity: pred.arity };
            modes.insert(new_key.clone(), adn.clone());
            origin.insert(new_key, pred.clone());
            for rule in index.procedure(program, pred) {
                ground.clear();
                for (i, arg) in rule.head.args.iter().enumerate() {
                    if adn.0[i] == Mode::Bound {
                        arg.add_vars_to(&mut ground);
                    }
                }
                let mut new_body = Vec::new();
                for lit in &rule.body {
                    let key = lit.atom.key();
                    let new_atom = if is_builtin(&key) || !idb.contains(&key) {
                        lit.atom.clone()
                    } else {
                        let sub_adn = ground_call_adornment(&lit.atom, &ground);
                        Atom {
                            name: adorned_name(&key, &sub_adn),
                            args: lit.atom.args.clone(),
                            span: lit.atom.span,
                        }
                    };
                    new_body.push(Literal {
                        atom: new_atom,
                        positive: lit.positive,
                        span: lit.span,
                    });
                    let mut lookup = |p: &PredKey, a: &Adornment| groundness.success_ground(p, a);
                    apply_groundness(lit, &mut ground, &mut lookup);
                }
                rules.push(Rule {
                    head: Atom {
                        name: new_name,
                        args: rule.head.args.clone(),
                        span: rule.head.span,
                    },
                    body: new_body,
                    span: rule.span,
                });
            }
        }
    }

    let adorned_query = PredKey { name: adorned_name(query, &adornment), arity: query.arity };
    AdornedProgram { program: Program::from_rules(rules), modes, origin, query: adorned_query }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn perm_splits_append_by_adornment() {
        let p = parse_program(
            "perm([], []).\n\
             perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
             append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        )
        .unwrap();
        let adorned = adorn_program(&p, &PredKey::new("perm", 2), Adornment::parse("bf").unwrap());
        // perm keeps its name (unique adornment bf).
        assert_eq!(adorned.query, PredKey::new("perm", 2));
        assert_eq!(adorned.modes.get(&PredKey::new("perm", 2)).unwrap().to_string(), "bf");
        // append is split into ffb and bbf copies.
        let ffb = PredKey::new("append__ffb", 3);
        let bbf = PredKey::new("append__bbf", 3);
        assert_eq!(adorned.modes.get(&ffb).unwrap().to_string(), "ffb");
        assert_eq!(adorned.modes.get(&bbf).unwrap().to_string(), "bbf");
        assert_eq!(adorned.origin[&ffb], PredKey::new("append", 3));
        // The perm rule's two append calls reference the two copies.
        let perm_rules = adorned.program.procedure(&PredKey::new("perm", 2));
        let rec = perm_rules.iter().find(|r| r.body.len() == 3).unwrap();
        assert_eq!(&*rec.body[0].atom.name, "append__ffb");
        assert_eq!(&*rec.body[1].atom.name, "append__bbf");
        // Each append copy is self-recursive with its own adornment.
        let ffb_rules = adorned.program.procedure(&ffb);
        assert_eq!(ffb_rules.len(), 2);
        assert!(ffb_rules.iter().any(|r| r.body.iter().any(|l| l.atom.key() == ffb)));
    }

    #[test]
    fn single_adornment_keeps_names() {
        let p = parse_program(
            "merge([], Ys, Ys).\n\
             merge(Xs, [], Xs).\n\
             merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
             merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).",
        )
        .unwrap();
        let adorned =
            adorn_program(&p, &PredKey::new("merge", 3), Adornment::parse("bbf").unwrap());
        assert_eq!(adorned.query, PredKey::new("merge", 3));
        assert_eq!(adorned.program.rules.len(), 4);
        assert_eq!(adorned.program.to_string(), p.to_string());
    }

    #[test]
    fn edb_predicates_not_renamed() {
        let p = parse_program("p(X, Y) :- e(X, Z), p(Z, Y).\np(X, X).").unwrap();
        let adorned = adorn_program(&p, &PredKey::new("p", 2), Adornment::parse("bf").unwrap());
        let rules = adorned.program.procedure(&PredKey::new("p", 2));
        assert!(rules.iter().flat_map(|r| &r.body).any(|l| &*l.atom.name == "e"));
        // e has no adornment entry.
        assert!(adorned.modes.get(&PredKey::new("e", 2)).is_none());
    }

    #[test]
    fn builtins_untouched() {
        let p = parse_program("len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.").unwrap();
        let adorned = adorn_program(&p, &PredKey::new("len", 2), Adornment::parse("bf").unwrap());
        let rules = adorned.program.procedure(&PredKey::new("len", 2));
        assert_eq!(rules.len(), 2);
        assert!(rules.iter().flat_map(|r| &r.body).any(|l| &*l.atom.name == "is"));
    }

    #[test]
    fn unreachable_rules_dropped() {
        let p = parse_program("p(a).\nunrelated(b).").unwrap();
        let adorned = adorn_program(&p, &PredKey::new("p", 1), Adornment::parse("b").unwrap());
        assert_eq!(adorned.program.rules.len(), 1);
    }
}
