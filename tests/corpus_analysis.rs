//! Whole-corpus integration: for every corpus entry, the analyzer must
//! (a) reach exactly the verdict the entry pins (`expected_provable`), and
//! (b) never prove a mode whose ground truth is nontermination — the
//! soundness property that makes the paper's method usable in a capture
//! rule.

use argus::prelude::*;

#[test]
fn analyzer_matches_corpus_pins() {
    let mut failures = Vec::new();
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
        let proved = report.verdict == Verdict::Terminates;
        if proved != entry.expected_provable {
            failures.push(format!(
                "{}: expected provable={}, got {:?}\n{report}",
                entry.name, entry.expected_provable, report.verdict
            ));
        }
        if proved && !entry.terminates {
            panic!("SOUNDNESS VIOLATION on {}: proved a nonterminating mode\n{report}", entry.name);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n---\n"));
}

#[test]
fn zero_weight_cycle_reported_for_loop_mutual() {
    let entry = argus::corpus::find("loop_mutual").unwrap();
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
    assert_eq!(report.verdict, Verdict::ZeroWeightCycle, "{report}");
}

/// Empirical soundness: every proved program completes its sample queries
/// within the interpreter budget; the nonterminating controls exhaust it.
#[test]
fn proved_programs_terminate_empirically() {
    use argus::interp::sld::{solve, InterpOptions};
    for entry in argus::corpus::corpus() {
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
        if report.verdict != Verdict::Terminates {
            continue;
        }
        for q in entry.sample_queries {
            let goals = argus::logic::parser::parse_query(q).unwrap();
            let out = solve(&program, &goals, &InterpOptions::default());
            assert!(
                out.terminated(),
                "{}: proved terminating but query {q} ran out of budget ({} steps)",
                entry.name,
                out.steps()
            );
        }
    }
}

/// The nonterminating controls really do run away under the interpreter.
#[test]
fn nonterminating_controls_exhaust_budget() {
    use argus::interp::sld::{solve, InterpOptions};
    for name in ["loop_direct", "loop_mutual", "transitive_closure"] {
        let entry = argus::corpus::find(name).unwrap();
        let program = entry.program().unwrap();
        let goals = argus::logic::parser::parse_query(entry.sample_queries[0]).unwrap();
        let out = solve(
            &program,
            &goals,
            &InterpOptions { max_steps: 20_000, ..InterpOptions::default() },
        );
        assert!(!out.terminated(), "{name} unexpectedly terminated");
    }
}

/// Capture-rule contrast (paper §1): transitive closure over a cyclic graph
/// diverges top-down but saturates bottom-up; nat-generation does the
/// opposite (bottom-up diverges, top-down with a bound goal terminates).
#[test]
fn capture_rule_contrast() {
    use argus::interp::bottomup::{saturate, BottomUpOptions};
    use argus::interp::sld::{solve, InterpOptions};

    let tc = argus::corpus::find("transitive_closure").unwrap();
    let program = tc.program().unwrap();
    // Bottom-up: converges.
    assert!(saturate(&program, &BottomUpOptions::default()).converged());
    // Top-down: diverges.
    let goals = argus::logic::parser::parse_query("tc(a, Y)").unwrap();
    let out =
        solve(&program, &goals, &InterpOptions { max_steps: 20_000, ..InterpOptions::default() });
    assert!(!out.terminated());

    // nat: top-down with bound argument terminates, bottom-up diverges.
    let nat = argus::logic::parser::parse_program("nat(z).\nnat(s(N)) :- nat(N).").unwrap();
    let goals = argus::logic::parser::parse_query("nat(s(s(z)))").unwrap();
    assert!(solve(&nat, &goals, &InterpOptions::default()).terminated());
    use argus::interp::bottomup::Saturation;
    let sat = saturate(&nat, &BottomUpOptions { max_facts: 500, max_iterations: 10_000 });
    assert!(matches!(sat, Saturation::Diverged { .. }));
}

/// The witnesses the analyzer returns are genuine: re-check the decrease
/// condition for each proved SCC by LP on the primal side.
#[test]
fn witnesses_are_certified() {
    for name in ["perm", "merge", "expr_parser", "append_bff", "quicksort"] {
        let entry = argus::corpus::find(name).unwrap();
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
        assert_eq!(report.verdict, Verdict::Terminates, "{name}");
        for scc in &report.sccs {
            if let argus::core::SccOutcome::Proved { witness, .. } = &scc.outcome {
                for (pred, theta) in witness {
                    // θ is nonnegative and, for the queried SCC, nonzero.
                    assert!(theta.iter().all(|t| !t.is_negative()), "{name}/{pred}");
                }
            }
        }
    }
}
