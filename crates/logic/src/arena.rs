//! Arena-allocated flat terms.
//!
//! [`Term`] is a pointer tree: every `App` owns a `Vec` of children, so a
//! million-clause program pays one heap allocation per compound subterm
//! and a pointer chase per edge on every traversal. [`TermArena`] stores
//! the same terms as index-linked flat nodes: a node is a [`Sym`] plus a
//! packed `(start, len)` range into one shared argument buffer, and a
//! [`TermId`] is a 4-byte handle. Nodes are *hash-consed* — structurally
//! equal subterms get the same id — so equality of interned terms is an
//! id compare, repeated subterms are stored once, and per-node analyses
//! (groundness, size polynomials) can be memoized by id.
//!
//! The arena is a cache-friendly *view* of the substrate, not a
//! replacement for it: [`TermArena::insert`] brings a [`Term`] in,
//! [`TermArena::view`] materializes one back out, and the traversals the
//! analysis pipeline runs per fixpoint iteration — size-norm polynomials
//! ([`TermArena::size_polynomial_into`], [`TermArena::right_spine_into`])
//! and unification ([`TermArena::unify_ids`]) — run on indices without
//! touching the tree form at all.
//!
//! Ids are arena-local and assigned in insertion order; nothing
//! output-visible may depend on them (the same discipline as interner
//! ids — see [`crate::intern`]).

use crate::intern::Sym;
use crate::term::{SizePolynomial, Term};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes currently held by all live [`TermArena`]s in the process (node,
/// argument, and dedup-table storage). A gauge, not a counter: arenas
/// subtract themselves on drop. Surfaced by `argus analyze --stats`.
static ARENA_BYTES: AtomicU64 = AtomicU64::new(0);

/// Current process-wide [`TermArena`] footprint in bytes.
pub fn arena_bytes() -> u64 {
    ARENA_BYTES.load(Ordering::Relaxed)
}

/// Handle to a term in a [`TermArena`]. 4 bytes, `Copy`; equal ids mean
/// structurally equal terms *within the same arena*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(u32);

impl TermId {
    fn ix(self) -> usize {
        self.0 as usize
    }
}

/// Packed argument range: `args[start..start + len]` in the arena's
/// shared argument buffer.
#[derive(Debug, Clone, Copy)]
struct ArgRange {
    start: u32,
    len: u32,
}

#[derive(Debug, Clone, Copy)]
enum Node {
    Var(Sym),
    App(Sym, ArgRange),
}

/// A borrowed view of one arena node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef<'a> {
    /// A logical variable.
    Var(Sym),
    /// A function symbol applied to already-interned arguments.
    App(Sym, &'a [TermId]),
}

/// A bump arena of hash-consed flat term nodes.
#[derive(Debug, Default)]
pub struct TermArena {
    nodes: Vec<Node>,
    /// Groundness bit per node, computed at insertion (children precede
    /// parents, so it is O(arity) per node and O(1) to query).
    ground: Vec<bool>,
    /// Shared argument buffer; each `App` owns one contiguous range.
    args: Vec<TermId>,
    /// Hash-cons table: node hash → candidate ids (collision chain).
    dedup: HashMap<u64, Vec<u32>>,
    /// Total ids across all dedup chains (so [`TermArena::bytes`] is O(1)).
    dedup_entries: usize,
    /// Bytes last reported into the process-wide gauge.
    reported_bytes: u64,
}

impl TermArena {
    /// An empty arena.
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Number of distinct nodes (hash-consed subterms).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap footprint of this arena in bytes.
    pub fn bytes(&self) -> u64 {
        let nodes = self.nodes.capacity() * std::mem::size_of::<Node>();
        let ground = self.ground.capacity();
        let args = self.args.capacity() * std::mem::size_of::<TermId>();
        let dedup = self.dedup.capacity()
            * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u32>>())
            + self.dedup_entries * std::mem::size_of::<u32>();
        (nodes + ground + args + dedup) as u64
    }

    fn sync_gauge(&mut self) {
        let now = self.bytes();
        if now >= self.reported_bytes {
            ARENA_BYTES.fetch_add(now - self.reported_bytes, Ordering::Relaxed);
        } else {
            ARENA_BYTES.fetch_sub(self.reported_bytes - now, Ordering::Relaxed);
        }
        self.reported_bytes = now;
    }

    /// The node behind `id`.
    pub fn get(&self, id: TermId) -> NodeRef<'_> {
        match self.nodes[id.ix()] {
            Node::Var(v) => NodeRef::Var(v),
            Node::App(f, r) => {
                NodeRef::App(f, &self.args[r.start as usize..(r.start + r.len) as usize])
            }
        }
    }

    /// True iff the term behind `id` contains no variables. O(1).
    pub fn is_ground(&self, id: TermId) -> bool {
        self.ground[id.ix()]
    }

    /// Intern a variable node.
    pub fn var(&mut self, v: Sym) -> TermId {
        self.intern_node(Node::Var(v), &[])
    }

    /// Intern an application node over already-interned arguments.
    pub fn app(&mut self, functor: Sym, args: &[TermId]) -> TermId {
        self.intern_node(Node::App(functor, ArgRange { start: 0, len: 0 }), args)
    }

    /// Intern a whole [`Term`] tree, returning the id of its root.
    /// Structurally equal subterms (within this arena) share ids.
    pub fn insert(&mut self, t: &Term) -> TermId {
        match t {
            Term::Var(v) => self.var(*v),
            Term::App(f, children) => {
                let ids: Vec<TermId> = children.iter().map(|c| self.insert(c)).collect();
                self.app(*f, &ids)
            }
        }
    }

    fn intern_node(&mut self, node: Node, args: &[TermId]) -> TermId {
        let h = node_hash(&node, args);
        if let Some(cands) = self.dedup.get(&h) {
            for &id in cands {
                if self.node_matches(id, &node, args) {
                    return TermId(id);
                }
            }
        }
        let id = u32::try_from(self.nodes.len()).expect("term arena capacity exceeded");
        let (stored, ground) = match node {
            Node::Var(v) => (Node::Var(v), false),
            Node::App(f, _) => {
                let start = u32::try_from(self.args.len()).expect("term arena args exceeded");
                self.args.extend_from_slice(args);
                let ground = args.iter().all(|a| self.ground[a.ix()]);
                (Node::App(f, ArgRange { start, len: args.len() as u32 }), ground)
            }
        };
        self.nodes.push(stored);
        self.ground.push(ground);
        self.dedup.entry(h).or_default().push(id);
        self.dedup_entries += 1;
        self.sync_gauge();
        TermId(id)
    }

    fn node_matches(&self, id: u32, node: &Node, args: &[TermId]) -> bool {
        match (&self.nodes[id as usize], node) {
            (Node::Var(a), Node::Var(b)) => a == b,
            (Node::App(f, r), Node::App(g, _)) => {
                f == g
                    && r.len as usize == args.len()
                    && &self.args[r.start as usize..(r.start + r.len) as usize] == args
            }
            _ => false,
        }
    }

    /// Materialize the term behind `id` back into tree form.
    pub fn view(&self, id: TermId) -> Term {
        match self.get(id) {
            NodeRef::Var(v) => Term::Var(v),
            NodeRef::App(f, args) => Term::App(f, args.iter().map(|&a| self.view(a)).collect()),
        }
    }

    /// Append the distinct variables of `id` to `out` in first-occurrence
    /// depth-first order (deduplicated against existing contents, like
    /// [`Term::vars_into`]).
    pub fn vars_into(&self, id: TermId, out: &mut Vec<Sym>) {
        if self.is_ground(id) {
            return;
        }
        match self.get(id) {
            NodeRef::Var(v) => {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            NodeRef::App(_, args) => {
                for &a in args {
                    self.vars_into(a, out);
                }
            }
        }
    }

    /// Accumulate the structural-size polynomial of `id` into `p`
    /// (paper §2.2): constant += arity per application node, coefficient
    /// += 1 per variable occurrence. Iterative, so deep right-spine lists
    /// cannot overflow the stack.
    pub fn size_polynomial_into(&self, id: TermId, p: &mut SizePolynomial) {
        let mut stack = vec![id];
        while let Some(id) = stack.pop() {
            match self.get(id) {
                NodeRef::Var(v) => *p.coeffs.entry(v).or_insert(0) += 1,
                NodeRef::App(_, args) => {
                    p.constant += args.len() as u64;
                    stack.extend_from_slice(args);
                }
            }
        }
    }

    /// Accumulate the right-spine (list-length) polynomial of `id` into
    /// `p`: `|v| = v`, `|c| = 0`, `|f(t1…tn)| = 1 + |tn|`.
    pub fn right_spine_into(&self, id: TermId, p: &mut SizePolynomial) {
        let mut cur = id;
        loop {
            match self.get(cur) {
                NodeRef::Var(v) => {
                    *p.coeffs.entry(v).or_insert(0) += 1;
                    return;
                }
                NodeRef::App(_, args) => match args.last() {
                    None => return,
                    Some(&last) => {
                        p.constant += 1;
                        cur = last;
                    }
                },
            }
        }
    }

    /// Resolve `id` under `s` into tree form (substitution applied
    /// recursively, like `Subst::resolve`).
    pub fn resolve(&self, id: TermId, s: &IdSubst) -> Term {
        let id = self.walk(id, s);
        match self.get(id) {
            NodeRef::Var(v) => Term::Var(v),
            NodeRef::App(f, args) => {
                Term::App(f, args.iter().map(|&a| self.resolve(a, s)).collect())
            }
        }
    }

    fn walk(&self, mut id: TermId, s: &IdSubst) -> TermId {
        while let NodeRef::Var(v) = self.get(id) {
            match s.map.get(&v) {
                Some(&next) if next != id => id = next,
                _ => break,
            }
        }
        id
    }

    fn occurs(&self, v: Sym, id: TermId, s: &IdSubst) -> bool {
        let id = self.walk(id, s);
        match self.get(id) {
            NodeRef::Var(w) => w == v,
            NodeRef::App(_, args) => args.iter().any(|&a| self.occurs(v, a, s)),
        }
    }

    /// Unify the terms behind `a` and `b`, extending `s` with bindings to
    /// ids. Mirrors [`crate::unify::unify`]: variables bind to unwalked
    /// ids, `occurs_check` rejects cyclic bindings.
    pub fn unify_ids(&self, a: TermId, b: TermId, s: &mut IdSubst, occurs_check: bool) -> bool {
        let a = self.walk(a, s);
        let b = self.walk(b, s);
        if a == b && !matches!(self.get(a), NodeRef::Var(_)) {
            // Hash-consing bonus: identical ground-or-shared subterms
            // unify without traversal. (Equal variables fall through to
            // the Var/Var case below, which also succeeds.)
            return true;
        }
        match (self.get(a), self.get(b)) {
            (NodeRef::Var(x), NodeRef::Var(y)) if x == y => true,
            (NodeRef::Var(x), _) => {
                if occurs_check && self.occurs(x, b, s) {
                    return false;
                }
                s.map.insert(x, b);
                true
            }
            (_, NodeRef::Var(y)) => {
                if occurs_check && self.occurs(y, a, s) {
                    return false;
                }
                s.map.insert(y, a);
                true
            }
            (NodeRef::App(f, fa), NodeRef::App(g, ga)) => {
                if f != g || fa.len() != ga.len() {
                    return false;
                }
                // The arg slices alias `self.args`; copy the ids (4 bytes
                // each) so unification can walk `self` mutably-free.
                let pairs: Vec<(TermId, TermId)> =
                    fa.iter().copied().zip(ga.iter().copied()).collect();
                pairs.into_iter().all(|(x, y)| self.unify_ids(x, y, s, occurs_check))
            }
        }
    }
}

impl Drop for TermArena {
    fn drop(&mut self) {
        ARENA_BYTES.fetch_sub(self.reported_bytes, Ordering::Relaxed);
    }
}

/// A substitution over arena ids: variable symbol → bound [`TermId`].
#[derive(Debug, Default)]
pub struct IdSubst {
    map: HashMap<Sym, TermId>,
}

impl IdSubst {
    /// An empty substitution.
    pub fn new() -> IdSubst {
        IdSubst::default()
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

fn node_hash(node: &Node, args: &[TermId]) -> u64 {
    // FNV-1a over the node's shape. Sym ids are stable within a process,
    // which is all a private dedup table needs.
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    match node {
        Node::Var(v) => {
            mix(1);
            mix(v.id() as u64);
        }
        Node::App(f, _) => {
            mix(2);
            mix(f.id() as u64);
            mix(args.len() as u64);
            for a in args {
                mix(a.0 as u64);
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_term;
    use crate::unify::mgu;

    fn t(src: &str) -> Term {
        parse_term(src).unwrap()
    }

    #[test]
    fn insert_view_round_trips() {
        let mut arena = TermArena::new();
        for src in ["X", "a", "[]", "f(X, g(Y, a), [1, 2 | T])", "[a, b, c]", "'it''s'(X)"] {
            let term = t(src);
            let id = arena.insert(&term);
            assert_eq!(arena.view(id), term, "{src}");
            assert_eq!(arena.view(id).to_string(), term.to_string(), "{src}");
        }
    }

    #[test]
    fn hash_consing_shares_subterms() {
        let mut arena = TermArena::new();
        let a = arena.insert(&t("f(g(X), g(X))"));
        let before = arena.node_count();
        // g(X), X, f-node: the two g(X) occurrences share one node.
        assert_eq!(before, 3);
        let b = arena.insert(&t("f(g(X), g(X))"));
        assert_eq!(a, b, "equal terms must get equal ids");
        assert_eq!(arena.node_count(), before, "re-insert allocates nothing");
        let c = arena.insert(&t("f(g(X), g(Y))"));
        assert_ne!(a, c);
    }

    #[test]
    fn groundness_is_precomputed() {
        let mut arena = TermArena::new();
        let ground = arena.insert(&t("f(a, [b, c])"));
        let open = arena.insert(&t("f(a, [b | T])"));
        let var = arena.insert(&t("X"));
        assert!(arena.is_ground(ground));
        assert!(!arena.is_ground(open));
        assert!(!arena.is_ground(var));
    }

    #[test]
    fn vars_match_tree_form() {
        let mut arena = TermArena::new();
        for src in ["f(B, A, B)", "f(X, g(Y, X), Z)", "a", "[H | T]"] {
            let term = t(src);
            let id = arena.insert(&term);
            let mut got = Vec::new();
            arena.vars_into(id, &mut got);
            assert_eq!(got, term.vars(), "{src}");
        }
    }

    #[test]
    fn size_polynomial_matches_tree_form() {
        let mut arena = TermArena::new();
        for src in ["f(v1, g(v2), v2)", "[a, b, c]", "X", "f(u, v, a)"] {
            let term = t(src);
            let id = arena.insert(&term);
            let mut p = SizePolynomial::default();
            arena.size_polynomial_into(id, &mut p);
            assert_eq!(p, term.size_polynomial(), "{src}");
        }
    }

    #[test]
    fn right_spine_matches_norm() {
        let mut arena = TermArena::new();
        for src in ["[a, b | T]", "node(Big, x, leaf)", "[]", "X", "[f(f(a))]"] {
            let term = t(src);
            let id = arena.insert(&term);
            let mut p = SizePolynomial::default();
            arena.right_spine_into(id, &mut p);
            assert_eq!(p, crate::Norm::ListLength.polynomial(&term), "{src}");
        }
    }

    #[test]
    fn deep_list_does_not_overflow() {
        // 100k-element list, built directly on indices — a depth the
        // pointer-tree `Term` cannot even *drop* without overflowing.
        // The iterative polynomial walks must survive it.
        let mut arena = TermArena::new();
        let cons = crate::term::sym_cons();
        let mut id = arena.app(crate::term::sym_nil(), &[]);
        for i in 0..100_000u32 {
            let elem = arena.app(Sym::new(i.to_string()), &[]);
            id = arena.app(cons, &[elem, id]);
        }
        let mut p = SizePolynomial::default();
        arena.size_polynomial_into(id, &mut p);
        assert_eq!(p.constant, 200_000);
        let mut spine = SizePolynomial::default();
        arena.right_spine_into(id, &mut spine);
        assert_eq!(spine.constant, 100_000);
    }

    #[test]
    fn unify_agrees_with_tree_unifier() {
        let cases = [
            ("f(X, b)", "f(a, Y)"),
            ("f(X, X)", "f(a, b)"),
            ("f(X, g(X))", "f(g(Y), Z)"),
            ("X", "f(X)"),
            ("[H | T]", "[a, b, c]"),
            ("f(a)", "g(a)"),
            ("f(a)", "f(a, b)"),
            ("X", "Y"),
            ("p(X, Y, Z)", "p(f(Y), f(Z), a)"),
        ];
        for (sa, sb) in cases {
            let (ta, tb) = (t(sa), t(sb));
            let mut arena = TermArena::new();
            let (ia, ib) = (arena.insert(&ta), arena.insert(&tb));
            let mut s = IdSubst::new();
            let ok = arena.unify_ids(ia, ib, &mut s, true);
            assert_eq!(ok, mgu(&ta, &tb, true).is_some(), "{sa} = {sb}");
            if ok {
                assert_eq!(
                    arena.resolve(ia, &s),
                    arena.resolve(ib, &s),
                    "{sa} = {sb}: unifier must equalize both sides"
                );
            }
        }
    }

    #[test]
    fn byte_gauge_rises_and_falls() {
        let before = arena_bytes();
        let mut arena = TermArena::new();
        for i in 0..256 {
            arena.insert(&t(&format!("gauge_fn_{i}(X, [a, b])")));
        }
        assert!(arena.bytes() > 0);
        assert!(arena_bytes() >= before + arena.bytes());
        let high = arena.bytes();
        drop(arena);
        assert!(arena_bytes() + high >= before + high, "gauge must not underflow");
        assert!(arena_bytes() < before + high, "drop must release the footprint");
    }
}
