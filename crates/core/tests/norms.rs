//! Norm sensitivity: the analysis is parametric in the term-size measure,
//! and the choice matters — each norm proves programs the other cannot
//! (the §1.1 trade-off between structural size and [UVG88]'s right-spine
//! length, realized as a switch).

use argus_core::{analyze, AnalysisOptions, Verdict};
use argus_logic::parser::parse_program;
use argus_logic::{Adornment, Norm, PredKey};

fn run(src: &str, name: &str, arity: usize, adn: &str, norm: Norm) -> Verdict {
    let program = parse_program(src).unwrap();
    let options = AnalysisOptions { norm, ..AnalysisOptions::default() };
    analyze(&program, &PredKey::new(name, arity), Adornment::parse(adn).unwrap(), &options).verdict
}

/// Head [X, Y | Xs] → subgoal [f(X, Y) | Xs]: the list gets SHORTER while
/// its structural size stays exactly equal (two cells collapse into one
/// compound element). List-length proves it; structural size cannot.
#[test]
fn element_fusion_needs_list_length() {
    let src = "p([]).\np([X]).\np([X, Y|Xs]) :- p([f(X, Y)|Xs]).";
    assert_eq!(
        run(src, "p", 1, "b", Norm::ListLength),
        Verdict::Terminates,
        "spine shrinks by one per call"
    );
    assert_ne!(
        run(src, "p", 1, "b", Norm::StructuralSize),
        Verdict::Terminates,
        "structural size is preserved: 4+X+Y+Xs -> 4+X+Y+Xs"
    );
}

/// Recursion into the LEFT subtree of a binary tree: invisible on the
/// right spine, obvious structurally.
#[test]
fn left_descent_needs_structural_size() {
    let src = "t(leaf).\nt(node(L, R)) :- t(L).";
    assert_eq!(run(src, "t", 1, "b", Norm::StructuralSize), Verdict::Terminates, "2 + L + R > L");
    assert_ne!(
        run(src, "t", 1, "b", Norm::ListLength),
        Verdict::Terminates,
        "the right spine says nothing about the left child"
    );
}

/// The paper's examples are provable under the paper's norm AND under
/// list-length (their recursions shorten lists, which both measures see).
#[test]
fn paper_examples_provable_under_both_norms() {
    let merge = "merge([], Ys, Ys).\n\
                 merge(Xs, [], Xs).\n\
                 merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
                 merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).";
    for norm in [Norm::StructuralSize, Norm::ListLength] {
        assert_eq!(
            run(merge, "merge", 3, "bbf", norm),
            Verdict::Terminates,
            "merge under {}",
            norm.name()
        );
    }
    let perm = "perm([], []).\n\
                perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
                append([], Ys, Ys).\n\
                append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";
    for norm in [Norm::StructuralSize, Norm::ListLength] {
        assert_eq!(
            run(perm, "perm", 2, "bf", norm),
            Verdict::Terminates,
            "perm under {} (append's length relation |a1|+|a2|=|a3| holds \
             under both measures)",
            norm.name()
        );
    }
}

/// Sanity: nonterminating controls stay unprovable under every norm.
#[test]
fn loops_unprovable_under_all_norms() {
    for norm in [Norm::StructuralSize, Norm::ListLength] {
        assert_ne!(run("p(X) :- p(X).", "p", 1, "b", norm), Verdict::Terminates);
        assert_ne!(
            run("p([X|Xs]) :- p([a, X|Xs]).\np([]).", "p", 1, "b", norm),
            Verdict::Terminates,
            "growing list under {}",
            norm.name()
        );
    }
}

/// The size relations themselves differ by norm: append's sum equality
/// holds for both, but the CONSTANTS differ (cons costs 2 edges
/// structurally, 1 spine step under list-length).
#[test]
fn size_relations_reflect_the_norm() {
    use argus_sizerel::{infer_size_relations, InferOptions};
    let program =
        parse_program("append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).")
            .unwrap();
    let app = PredKey::new("append", 3);
    for norm in [Norm::StructuralSize, Norm::ListLength] {
        let rels =
            infer_size_relations(&program, &InferOptions { norm, ..InferOptions::default() });
        assert!(rels.entails_sum_equality(&app, &[0, 1], 2), "a1 + a2 = a3 under {}", norm.name());
    }
}

/// The lexicographic extension (off by default) lifts the §7 limitation:
/// Ackermann flips from Unknown to Terminates when it is enabled, while
/// genuine loops remain unprovable.
#[test]
fn lexicographic_mode_proves_ackermann() {
    let src = "ack(z, N, s(N)).\n\
               ack(s(M), z, R) :- ack(M, s(z), R).\n\
               ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).";
    let program = parse_program(src).unwrap();
    let query = PredKey::new("ack", 3);
    let adn = Adornment::parse("bbf").unwrap();

    let base = analyze(&program, &query, adn.clone(), &AnalysisOptions::default());
    assert_eq!(base.verdict, Verdict::Unknown, "paper method cannot prove Ackermann");

    let options = AnalysisOptions { lexicographic: true, ..AnalysisOptions::default() };
    let lex = analyze(&program, &query, adn, &options);
    assert_eq!(lex.verdict, Verdict::Terminates, "{lex}");
    assert!(lex.to_string().contains("lexicographic"), "{lex}");

    // Still sound: loops stay unprovable with the extension on.
    let loop_program = parse_program("p(X) :- p(X).").unwrap();
    let looped =
        analyze(&loop_program, &PredKey::new("p", 1), Adornment::parse("b").unwrap(), &options);
    assert_ne!(looped.verdict, Verdict::Terminates);
}
