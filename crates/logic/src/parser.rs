//! A parser for the Prolog-like rule syntax used throughout the paper.
//!
//! Supported syntax:
//!
//! * clauses `head.` and `head :- g1, …, gn.`;
//! * `%` line comments and `/* … */` block comments;
//! * variables (`X`, `Xs`, `_foo`), unquoted atoms (`append`), quoted atoms
//!   (`'+'`), integers;
//! * compound terms `f(t1, …, tn)`, lists `[a, b | T]`;
//! * negation `\+ goal`;
//! * infix comparison goals `T1 =< T2` (also `<, >, >=, =, \=, ==, \==, is`);
//! * infix arithmetic term operators `+ - * //` with conventional
//!   precedence, producing ordinary compound terms.
//!
//! The grammar is deliberately the subset the paper's examples need (plus
//! arithmetic so the SLD interpreter can run realistic programs); there are
//! no user-defined operators.

use crate::program::{Atom, Literal, Program, Rule};
use crate::span::{Span, SpanSlot};
use crate::term::Term;
use std::fmt;

/// Position-annotated parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column, counted in chars (not bytes).
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Atom(String),
    Var(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Bar,
    EndClause,
    Neck,    // :-
    NotSign, // \+
    Op(String),
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    /// Byte offset of the first byte of the token.
    start: usize,
    /// Byte offset one past the last byte of the token.
    end: usize,
    line: usize,
    col: usize,
}

impl SpannedTok {
    fn span(&self) -> Span {
        Span::new(self.start, self.end, self.line, self.col)
    }
}

/// Is `b` a UTF-8 continuation byte (never the start of a char)?
fn is_continuation(b: u8) -> bool {
    b & 0xC0 == 0x80
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { line: self.line, col: self.col, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if !is_continuation(c) {
            // Columns count chars, not bytes: continuation bytes of a
            // multi-byte UTF-8 char (inside comments and quoted atoms) do
            // not advance the column.
            self.col += 1;
        }
        Some(c)
    }

    fn skip_layout(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b'/') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<SpannedTok>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_layout()?;
            let (start, line, col) = (self.pos, self.line, self.col);
            let Some(c) = self.peek() else { break };
            let tok = match c {
                b'(' => {
                    self.bump();
                    Tok::LParen
                }
                b')' => {
                    self.bump();
                    Tok::RParen
                }
                b'[' => {
                    self.bump();
                    Tok::LBracket
                }
                b']' => {
                    self.bump();
                    Tok::RBracket
                }
                b',' => {
                    self.bump();
                    Tok::Comma
                }
                b'|' => {
                    self.bump();
                    Tok::Bar
                }
                b'.' => {
                    // End of clause if followed by layout/EOF; else error
                    // (we never lex '.' as a functor — lists cover cons).
                    self.bump();
                    match self.peek() {
                        None => Tok::EndClause,
                        Some(c2) if c2.is_ascii_whitespace() || c2 == b'%' => Tok::EndClause,
                        _ => return Err(self.err("unexpected '.' inside term")),
                    }
                }
                b':' if self.peek2() == Some(b'-') => {
                    self.bump();
                    self.bump();
                    Tok::Neck
                }
                b'\\' if self.peek2() == Some(b'+') => {
                    self.bump();
                    self.bump();
                    Tok::NotSign
                }
                b'\\' if self.peek2() == Some(b'=') => {
                    self.bump();
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op("\\==".into())
                    } else {
                        Tok::Op("\\=".into())
                    }
                }
                b'=' => {
                    self.bump();
                    match self.peek() {
                        Some(b'<') => {
                            self.bump();
                            Tok::Op("=<".into())
                        }
                        Some(b'=') => {
                            self.bump();
                            Tok::Op("==".into())
                        }
                        _ => Tok::Op("=".into()),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Op(">=".into())
                    } else {
                        Tok::Op(">".into())
                    }
                }
                b'<' => {
                    self.bump();
                    Tok::Op("<".into())
                }
                b'+' => {
                    self.bump();
                    Tok::Op("+".into())
                }
                b'-' => {
                    self.bump();
                    Tok::Op("-".into())
                }
                b'*' => {
                    self.bump();
                    Tok::Op("*".into())
                }
                b'/' if self.peek2() == Some(b'/') => {
                    self.bump();
                    self.bump();
                    Tok::Op("//".into())
                }
                b'\'' => {
                    self.bump();
                    // Collect raw bytes so multi-byte UTF-8 chars inside the
                    // quotes survive intact.
                    let mut bytes = Vec::new();
                    loop {
                        match self.bump() {
                            Some(b'\'') => {
                                // '' is an escaped quote.
                                if self.peek() == Some(b'\'') {
                                    self.bump();
                                    bytes.push(b'\'');
                                } else {
                                    break;
                                }
                            }
                            Some(c2) => bytes.push(c2),
                            None => return Err(self.err("unterminated quoted atom")),
                        }
                    }
                    let s = String::from_utf8(bytes)
                        .map_err(|_| self.err("invalid UTF-8 in quoted atom"))?;
                    Tok::Atom(s)
                }
                c if c.is_ascii_digit() => {
                    let mut s = String::new();
                    while let Some(c2) = self.peek() {
                        if c2.is_ascii_digit() {
                            s.push(c2 as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let v: i64 = s
                        .parse()
                        .map_err(|_| self.err(format!("integer literal out of range: {s}")))?;
                    Tok::Int(v)
                }
                c if c.is_ascii_lowercase() => {
                    let mut s = String::new();
                    while let Some(c2) = self.peek() {
                        if c2.is_ascii_alphanumeric() || c2 == b'_' {
                            s.push(c2 as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if s == "is" {
                        Tok::Op("is".into())
                    } else {
                        Tok::Atom(s)
                    }
                }
                c if c.is_ascii_uppercase() || c == b'_' => {
                    let mut s = String::new();
                    while let Some(c2) = self.peek() {
                        if c2.is_ascii_alphanumeric() || c2 == b'_' {
                            s.push(c2 as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    Tok::Var(s)
                }
                other => {
                    // Decode the whole char, not just its lead byte, so a
                    // stray `é` is reported as 'é' rather than 'Ã'.
                    let shown = std::str::from_utf8(&self.src[self.pos..])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .unwrap_or(other as char);
                    return Err(self.err(format!("unexpected character {shown:?}")));
                }
            };
            out.push(SpannedTok { tok, start, end: self.pos, line, col });
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    /// Counter for anonymous `_` variables, which must each be fresh.
    anon: usize,
}

const COMPARISONS: &[&str] = &["=", "\\=", "==", "\\==", "<", ">", "=<", ">=", "is"];

impl Parser {
    fn err_here(&self, message: impl Into<String>) -> ParseError {
        match self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))) {
            Some(t) => ParseError { line: t.line, col: t.col, message: message.into() },
            None => ParseError { line: 0, col: 0, message: message.into() },
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            Some(t) => Err(self.err_here(format!("expected {what}, found {t:?}"))),
            None => Err(self.err_here(format!("expected {what}, found end of input"))),
        }
    }

    /// Span covering the token range `[from, to)` (token indices). Empty
    /// slot when the range is empty or out of bounds.
    fn span_between(&self, from: usize, to: usize) -> SpanSlot {
        match (self.toks.get(from), to.checked_sub(1).and_then(|i| self.toks.get(i))) {
            (Some(a), Some(b)) if from < to => SpanSlot::some(a.span().join(&b.span())),
            _ => SpanSlot::none(),
        }
    }

    fn fresh_anon(&mut self) -> Term {
        self.anon += 1;
        Term::var(format!("_G{}", self.anon))
    }

    /// term := arith_expr (arith covers plain primaries too)
    fn parse_term(&mut self) -> Result<Term, ParseError> {
        self.parse_additive()
    }

    fn parse_additive(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        while let Some(Tok::Op(op)) = self.peek() {
            let op = op.clone();
            if op == "+" || op == "-" {
                self.bump();
                let rhs = self.parse_multiplicative()?;
                lhs = Term::app(&op, vec![lhs, rhs]);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Term, ParseError> {
        let mut lhs = self.parse_primary()?;
        while let Some(Tok::Op(op)) = self.peek() {
            let op = op.clone();
            if op == "*" || op == "//" {
                self.bump();
                let rhs = self.parse_primary()?;
                lhs = Term::app(&op, vec![lhs, rhs]);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Term::int(v)),
            Some(Tok::Op(op)) if op == "-" => {
                // Negative integer literal.
                match self.bump() {
                    Some(Tok::Int(v)) => Ok(Term::int(-v)),
                    _ => Err(self.err_here("expected integer after unary '-'")),
                }
            }
            Some(Tok::Var(v)) => {
                if v == "_" {
                    Ok(self.fresh_anon())
                } else {
                    Ok(Term::var(v))
                }
            }
            Some(Tok::Atom(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.bump();
                    let args = self.parse_term_list()?;
                    self.expect(&Tok::RParen, "')'")?;
                    Ok(Term::app(&name, args))
                } else {
                    Ok(Term::atom(&name))
                }
            }
            Some(Tok::LParen) => {
                let t = self.parse_term()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(t)
            }
            Some(Tok::LBracket) => self.parse_list(),
            Some(other) => Err(self.err_here(format!("expected term, found {other:?}"))),
            None => Err(self.err_here("expected term, found end of input")),
        }
    }

    fn parse_list(&mut self) -> Result<Term, ParseError> {
        if self.peek() == Some(&Tok::RBracket) {
            self.bump();
            return Ok(Term::nil());
        }
        let mut items = vec![self.parse_term()?];
        loop {
            match self.peek() {
                Some(Tok::Comma) => {
                    self.bump();
                    items.push(self.parse_term()?);
                }
                Some(Tok::Bar) => {
                    self.bump();
                    let tail = self.parse_term()?;
                    self.expect(&Tok::RBracket, "']'")?;
                    return Ok(items.into_iter().rev().fold(tail, |acc, t| Term::cons(t, acc)));
                }
                Some(Tok::RBracket) => {
                    self.bump();
                    return Ok(Term::list(items));
                }
                _ => return Err(self.err_here("expected ',', '|', or ']' in list")),
            }
        }
    }

    fn parse_term_list(&mut self) -> Result<Vec<Term>, ParseError> {
        let mut out = vec![self.parse_term()?];
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            out.push(self.parse_term()?);
        }
        Ok(out)
    }

    /// goal := '\+' goal | term (CMP term)?
    fn parse_goal(&mut self) -> Result<Literal, ParseError> {
        let start = self.pos;
        if self.peek() == Some(&Tok::NotSign) {
            self.bump();
            let inner = self.parse_goal()?;
            if !inner.positive {
                return Err(self.err_here("double negation is not supported"));
            }
            return Ok(Literal::neg(inner.atom).with_span(self.span_between(start, self.pos)));
        }
        let lhs = self.parse_term()?;
        if let Some(Tok::Op(op)) = self.peek() {
            if COMPARISONS.contains(&op.as_str()) {
                let op = op.clone();
                self.bump();
                let rhs = self.parse_term()?;
                let span = self.span_between(start, self.pos);
                return Ok(Literal::pos(Atom::new(&op, vec![lhs, rhs]).with_span(span)));
            }
        }
        let span = self.span_between(start, self.pos);
        // A plain goal must be an atom (not a variable or an arith term).
        match lhs {
            Term::App(name, args) => Ok(Literal::pos(Atom { name, args, span })),
            Term::Var(_) => Err(self.err_here("a goal cannot be a variable")),
        }
    }

    fn parse_clause(&mut self) -> Result<Rule, ParseError> {
        let start = self.pos;
        let head_term = self.parse_term()?;
        let head_span = self.span_between(start, self.pos);
        let head = match head_term {
            Term::App(name, args) => Atom { name, args, span: head_span },
            Term::Var(_) => return Err(self.err_here("clause head cannot be a variable")),
        };
        let mut body = Vec::new();
        if self.peek() == Some(&Tok::Neck) {
            self.bump();
            body.push(self.parse_goal()?);
            while self.peek() == Some(&Tok::Comma) {
                self.bump();
                body.push(self.parse_goal()?);
            }
        }
        self.expect(&Tok::EndClause, "'.' ending the clause")?;
        Ok(Rule { head, body, span: self.span_between(start, self.pos) })
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut rules = Vec::new();
        while self.peek().is_some() {
            rules.push(self.parse_clause()?);
        }
        Ok(Program::from_rules(rules))
    }
}

/// Parse a complete program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    Parser { toks, pos: 0, anon: 0 }.parse_program()
}

/// Parse a single term (no trailing `.`).
pub fn parse_term(src: &str) -> Result<Term, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0, anon: 0 };
    let t = p.parse_term()?;
    if p.peek().is_some() {
        return Err(p.err_here("trailing input after term"));
    }
    Ok(t)
}

/// Every variable occurrence in `src`, in source order, with its span.
///
/// This is a lexer-level view: it reports each *occurrence* (not each
/// distinct variable), including anonymous `_`, so lint passes can point
/// at the exact token (e.g. the singleton-variable lint). Returns an empty
/// list if `src` does not lex.
pub fn variable_spans(src: &str) -> Vec<(String, Span)> {
    match Lexer::new(src).tokenize() {
        Ok(toks) => toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Var(ref name) => Some((name.clone(), t.span())),
                _ => None,
            })
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Parse a query: a comma-separated goal list with optional trailing `.`.
pub fn parse_query(src: &str) -> Result<Vec<Literal>, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser { toks, pos: 0, anon: 0 };
    let mut goals = vec![p.parse_goal()?];
    while p.peek() == Some(&Tok::Comma) {
        p.bump();
        goals.push(p.parse_goal()?);
    }
    if p.peek() == Some(&Tok::EndClause) {
        p.bump();
    }
    if p.peek().is_some() {
        return Err(p.err_here("trailing input after query"));
    }
    Ok(goals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_and_rules() {
        let p = parse_program(
            "append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].body.len(), 0);
        assert_eq!(p.rules[1].body.len(), 1);
        assert_eq!(&*p.rules[1].head.name, "append");
    }

    #[test]
    fn paper_perm_example_parses() {
        // Example 3.1 of the paper.
        let p = parse_program(
            "perm([], []).\n\
             perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        let r = &p.rules[1];
        assert_eq!(r.body.len(), 3);
        assert_eq!(&*r.body[0].atom.name, "append");
        assert_eq!(&*r.body[2].atom.name, "perm");
    }

    #[test]
    fn paper_merge_example_parses() {
        // Example 5.1 with =< comparison goals.
        let p = parse_program(
            "merge([], Ys, Ys).\n\
             merge(Xs, [], Xs).\n\
             merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
             merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert_eq!(&*p.rules[2].body[0].atom.name, "=<");
        assert_eq!(p.rules[2].body[0].atom.args.len(), 2);
    }

    #[test]
    fn paper_parser_example_parses() {
        // Example 6.1 with quoted atoms inside lists.
        let p = parse_program(
            "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
             e(L, T) :- t(L, T).\n\
             t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
             t(L, T) :- n(L, T).\n\
             n(['('|A], T) :- e(A, [')'|T]).\n\
             n([L|T], T) :- z(L).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 6);
        // ['+'|C] is cons('+', C).
        let arg = &p.rules[0].body[0].atom.args[1];
        assert_eq!(arg.to_string(), "['+' | C]");
    }

    #[test]
    fn negation() {
        let p = parse_program("p(X) :- q(X), \\+ r(X).").unwrap();
        assert!(p.rules[0].body[0].positive);
        assert!(!p.rules[0].body[1].positive);
    }

    #[test]
    fn comments_and_layout() {
        let p = parse_program(
            "% line comment\n\
             p(a). /* block\n comment */ p(b).\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn anonymous_vars_are_fresh() {
        let p = parse_program("p(_, _).").unwrap();
        let args = &p.rules[0].head.args;
        assert_ne!(args[0], args[1]);
    }

    #[test]
    fn arithmetic_terms() {
        let t = parse_term("1 + 2 * 3").unwrap();
        assert_eq!(t.to_string(), "'+'(1, '*'(2, 3))");
        let t2 = parse_term("(1 + 2) * 3").unwrap();
        assert_eq!(t2.to_string(), "'*'('+'(1, 2), 3)");
    }

    #[test]
    fn is_goal() {
        let p = parse_program("len([], 0).\nlen([_|T], N) :- len(T, M), N is M + 1.").unwrap();
        let g = &p.rules[1].body[1];
        assert_eq!(&*g.atom.name, "is");
    }

    #[test]
    fn open_and_closed_lists() {
        assert_eq!(parse_term("[]").unwrap(), Term::nil());
        assert_eq!(parse_term("[a, b]").unwrap(), Term::list([Term::atom("a"), Term::atom("b")]));
        assert_eq!(parse_term("[H|T]").unwrap(), Term::cons(Term::var("H"), Term::var("T")));
        assert_eq!(
            parse_term("[a, b | T]").unwrap(),
            Term::cons(Term::atom("a"), Term::cons(Term::atom("b"), Term::var("T")))
        );
    }

    #[test]
    fn quoted_atoms() {
        assert_eq!(parse_term("'hello world'").unwrap(), Term::atom("hello world"));
        assert_eq!(parse_term("'it''s'").unwrap(), Term::atom("it's"));
    }

    #[test]
    fn parse_errors_have_positions() {
        let e = parse_program("p(a)\nq(b).").unwrap_err();
        assert_eq!(e.line, 2, "error should point at the offending token");
        assert!(parse_program("p(.").is_err());
        assert!(parse_program("p() :- .").is_err());
        assert!(parse_program("X :- p.").is_err());
        assert!(parse_program("p :- X.").is_err());
    }

    #[test]
    fn negative_integers() {
        assert_eq!(parse_term("-5").unwrap(), Term::int(-5));
        let p = parse_program("p(-3).").unwrap();
        assert_eq!(p.rules[0].head.args[0], Term::int(-3));
    }

    #[test]
    fn query_parsing() {
        let goals = parse_query("append(X, Y, [a]), X = [].").unwrap();
        assert_eq!(goals.len(), 2);
        assert_eq!(&*goals[1].atom.name, "=");
    }

    #[test]
    fn display_parse_roundtrip() {
        let src = "perm(P, [X | L]) :- append(E, [X | F], P), append(E, F, P1), perm(P1, L).\n";
        let p = parse_program(src).unwrap();
        let printed = p.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn zero_arity_predicates() {
        let p = parse_program("go :- init, run.\ninit.\nrun.").unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].body.len(), 2);
        assert_eq!(p.rules[1].head.args.len(), 0);
    }

    #[test]
    fn error_columns_count_chars_not_bytes() {
        // 'é' is two bytes but one char; the bad '?' sits at char column 13.
        let e = parse_program("p('résumé') ? q.").unwrap_err();
        assert_eq!((e.line, e.col), (1, 13));
        // Same with a multi-byte char inside a comment.
        let e2 = parse_program("% café\np(a) ? q.").unwrap_err();
        assert_eq!((e2.line, e2.col), (2, 6));
    }

    #[test]
    fn error_reports_whole_char_not_lead_byte() {
        // A stray multi-byte char is reported as itself ('é'), not as its
        // Latin-1-decoded lead byte ('Ã').
        let e = parse_program("caf é(a).").unwrap_err();
        assert!(e.message.contains('é'), "{}", e.message);
        assert_eq!((e.line, e.col), (1, 5));
    }

    #[test]
    fn rules_carry_spans() {
        let src = "p(a).\nq(X) :- p(X), \\+ r(X).\n";
        let p = parse_program(src).unwrap();
        let s0 = p.rules[0].span.get().unwrap();
        assert_eq!(s0.slice(src), Some("p(a)."));
        assert_eq!((s0.line, s0.col), (1, 1));
        let s1 = p.rules[1].span.get().unwrap();
        assert_eq!(s1.slice(src), Some("q(X) :- p(X), \\+ r(X)."));
        assert_eq!((s1.line, s1.col), (2, 1));
        let head = p.rules[1].head.span.get().unwrap();
        assert_eq!(head.slice(src), Some("q(X)"));
        let lit0 = p.rules[1].body[0].span.get().unwrap();
        assert_eq!(lit0.slice(src), Some("p(X)"));
        // A negated literal's span includes the `\+`; its atom's does not.
        let lit1 = p.rules[1].body[1].span.get().unwrap();
        assert_eq!(lit1.slice(src), Some("\\+ r(X)"));
        let atom1 = p.rules[1].body[1].atom.span.get().unwrap();
        assert_eq!(atom1.slice(src), Some("r(X)"));
    }

    #[test]
    fn comparison_goals_carry_spans() {
        let src = "p(X, Y) :- X =< Y, q(X).";
        let p = parse_program(src).unwrap();
        let cmp = p.rules[0].body[0].atom.span.get().unwrap();
        assert_eq!(cmp.slice(src), Some("X =< Y"));
    }

    #[test]
    fn spans_do_not_affect_equality() {
        let src = "p(X) :- q(X).";
        let parsed = parse_program(src).unwrap();
        let built = Program::from_rules(vec![Rule::new(
            Atom::new("p", vec![Term::var("X")]),
            vec![Literal::pos(Atom::new("q", vec![Term::var("X")]))],
        )]);
        assert_eq!(parsed, built);
        assert!(built.rules[0].span.get().is_none());
        assert!(parsed.rules[0].span.get().is_some());
    }

    #[test]
    fn variable_spans_reports_occurrences() {
        let src = "p(X, Y) :- q(X).";
        let vs = variable_spans(src);
        let names: Vec<&str> = vs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["X", "Y", "X"]);
        assert_eq!(vs[1].1.slice(src), Some("Y"));
        assert_eq!((vs[1].1.line, vs[1].1.col), (1, 6));
    }
}
