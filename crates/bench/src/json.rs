//! Minimal hand-rolled JSON emission (and a tiny scanner for our own
//! output), mirroring the dependency-free style of `argus-core`'s JSON
//! module. The bench crate writes `BENCH_argus.json` and the experiment
//! logs without a serialization dependency.

use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A quoted, escaped JSON string.
pub fn json_str(s: &str) -> String {
    format!("\"{}\"", esc(s))
}

/// A JSON array of already-rendered items.
pub fn json_array(items: &[String]) -> String {
    format!("[{}]", items.join(", "))
}

/// Render an `f64` so it is always valid JSON (never NaN/inf literals).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

/// Extract the string value of `"key": "…"` from a single JSON object
/// rendered on one line. Only supports the exact format this crate emits
/// (used to read back a baseline `BENCH_argus.json`).
pub fn scan_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extract the numeric value of `"key": 123.4` from a single-line object.
pub fn scan_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '-' || *c == '+' || *c == '.' || *c == 'e')
        .collect();
    rest.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_and_quotes() {
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn scan_roundtrip() {
        let line = format!(
            "{{\"name\": {}, \"ns_per_iter\": {}}}",
            json_str("fm/rows/8"),
            json_f64(123.4)
        );
        assert_eq!(scan_str_field(&line, "name").as_deref(), Some("fm/rows/8"));
        assert_eq!(scan_num_field(&line, "ns_per_iter"), Some(123.4));
    }

    #[test]
    fn nonfinite_is_null() {
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
