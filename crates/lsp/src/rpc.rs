//! JSON-RPC 2.0 message model over [`argus_serve::jsonval`].
//!
//! Incoming frames are parsed into [`Incoming`] — requests carry an `id`,
//! notifications do not. Outgoing messages are built as strings: results
//! and params arrive pre-rendered (the diagnostic payloads come out of
//! `argus_diag::lsp` as JSON text already), so the writers just splice
//! them into the envelope.

use argus_serve::jsonval::{self, json_str, Json};

/// JSON-RPC: the payload was not valid JSON.
pub const PARSE_ERROR: i64 = -32700;
/// JSON-RPC: the payload was JSON but not a valid request object.
pub const INVALID_REQUEST: i64 = -32600;
/// JSON-RPC: no such method.
pub const METHOD_NOT_FOUND: i64 = -32601;
/// JSON-RPC: the method exists but the params are malformed.
pub const INVALID_PARAMS: i64 = -32602;

/// One parsed incoming message.
#[derive(Debug, Clone)]
pub struct Incoming {
    /// Request id; `None` for notifications.
    pub id: Option<Json>,
    /// Method name.
    pub method: String,
    /// Params value (`Json::Null` when absent).
    pub params: Json,
}

/// Parse one frame payload into an [`Incoming`].
pub fn parse_message(payload: &str) -> Result<Incoming, String> {
    let v = jsonval::parse(payload).map_err(|e| e.to_string())?;
    if !matches!(v, Json::Obj(_)) {
        return Err(format!("message is {}, not an object", v.type_name()));
    }
    if v.get("jsonrpc").and_then(Json::as_str) != Some("2.0") {
        return Err("missing `\"jsonrpc\": \"2.0\"`".to_string());
    }
    let method = v
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing `method`".to_string())?
        .to_string();
    let id = match v.get("id") {
        None | Some(Json::Null) => None,
        Some(id @ (Json::Num(_) | Json::Str(_))) => Some(id.clone()),
        Some(other) => {
            return Err(format!("id must be a number or string, got {}", other.type_name()))
        }
    };
    let params = v.get("params").cloned().unwrap_or(Json::Null);
    Ok(Incoming { id, method, params })
}

/// Render a request id back to JSON text (`null` when absent).
pub fn render_id(id: Option<&Json>) -> String {
    match id {
        Some(Json::Num(n)) if n.fract() == 0.0 && n.abs() < 9e15 => format!("{}", *n as i64),
        Some(Json::Num(n)) => format!("{n}"),
        Some(Json::Str(s)) => json_str(s),
        _ => "null".to_string(),
    }
}

/// A success response. `result` is pre-rendered JSON text.
pub fn response(id: &str, result: &str) -> String {
    format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"result\":{result}}}")
}

/// An error response. `id` is pre-rendered (use `"null"` when the request
/// id is unknown, e.g. for unparsable payloads).
pub fn error_response(id: &str, code: i64, message: &str) -> String {
    format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":{id},\"error\":{{\"code\":{code},\"message\":{}}}}}",
        json_str(message)
    )
}

/// A notification. `params` is pre-rendered JSON text.
pub fn notification(method: &str, params: &str) -> String {
    format!("{{\"jsonrpc\":\"2.0\",\"method\":{},\"params\":{params}}}", json_str(method))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_notifications_parse() {
        let req =
            parse_message("{\"jsonrpc\":\"2.0\",\"id\":3,\"method\":\"initialize\",\"params\":{}}")
                .unwrap();
        assert_eq!(req.method, "initialize");
        assert_eq!(render_id(req.id.as_ref()), "3");

        let note = parse_message("{\"jsonrpc\":\"2.0\",\"method\":\"initialized\"}").unwrap();
        assert!(note.id.is_none());
        assert_eq!(note.params, Json::Null);
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert!(parse_message("[1,2]").is_err());
        assert!(parse_message("{\"jsonrpc\":\"1.0\",\"method\":\"m\"}").is_err());
        assert!(parse_message("{\"jsonrpc\":\"2.0\"}").is_err());
        assert!(parse_message("{\"jsonrpc\":\"2.0\",\"method\":\"m\",\"id\":[1]}").is_err());
        assert!(parse_message("not json").is_err());
    }

    #[test]
    fn envelopes_render_stably() {
        assert_eq!(response("7", "null"), "{\"jsonrpc\":\"2.0\",\"id\":7,\"result\":null}");
        assert_eq!(
            error_response("null", PARSE_ERROR, "bad \"json\""),
            "{\"jsonrpc\":\"2.0\",\"id\":null,\"error\":{\"code\":-32700,\
             \"message\":\"bad \\\"json\\\"\"}}"
        );
        assert_eq!(
            notification("exit", "null"),
            "{\"jsonrpc\":\"2.0\",\"method\":\"exit\",\"params\":null}"
        );
    }

    #[test]
    fn string_ids_round_trip() {
        let req = parse_message("{\"jsonrpc\":\"2.0\",\"id\":\"a-1\",\"method\":\"m\"}").unwrap();
        assert_eq!(render_id(req.id.as_ref()), "\"a-1\"");
    }
}
