% Demonstration program for `argus lint`: one small file exercising every
% lint code. Try:
%
%   argus lint examples/lint_demo.pl --query main/1 --mode b
%   argus lint examples/lint_demo.pl --query main/1 --mode b --json

main(Xs) :-
    lenght(Xs, N),          % L002 undefined predicate, L005 typo of length/2
    limit(Limit),
    N > Limit,              % L007 N is never bound (lenght/2 cannot succeed)
    grow(Xs, Zs),
    loop(Zs),
    \+ member(Y, Xs).       % L008 Y is unbound under negation

length([], 0).
length([_|T], N) :- length(T, M), N is M + 1.

limit(7).

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

grow([], _).
grow([X|Xs], Ys) :- grow([X, X|Xs], Ys).    % L009 first argument grows

loop(X) :- hoop(X).
hoop(X) :- loop(X).                         % L010 zero-weight cycle

orphan(X) :- member(X, [a, b, c]).          % L003 unreachable from main/1

check(Xs) :- length(Xs).                    % L004 length is used with arity 2

bad_fact(X, 7).                             % L001 singleton X, L006 not range-restricted
