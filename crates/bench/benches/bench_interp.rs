//! E7e — interpreter engine comparison: the cloning reference interpreter
//! vs the trail-based machine. The machine's O(1) backtracking shows on
//! backtracking-heavy workloads (perm enumerates n! answers).
//! Plain fixed-iteration harness; pass `--smoke` for CI-sized systems.

use argus_bench::timing::{bench_case, render_line};
use argus_interp::machine::solve_iterative;
use argus_interp::sld::{solve, InterpOptions};
use argus_logic::parser::{parse_program, parse_query};
use std::hint::black_box;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 3 } else { 10 };

    let perm_src = "perm([], []).\n\
                    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
                    append([], Ys, Ys).\n\
                    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";
    let program = parse_program(perm_src).unwrap();
    let opts = InterpOptions { max_steps: 10_000_000, ..InterpOptions::default() };

    let sizes: &[usize] = if smoke { &[3, 4] } else { &[3, 4, 5] };
    for &n in sizes {
        let atoms: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let q = format!("perm([{}], Q)", atoms.join(", "));
        let goals = parse_query(&q).unwrap();
        let s = bench_case("interp", &format!("perm-enumerate/reference/{n}"), 1, iters, || {
            black_box(solve(&program, &goals, &opts))
        });
        println!("{}", render_line(&s));
        let s =
            bench_case("interp", &format!("perm-enumerate/trail-machine/{n}"), 1, iters, || {
                black_box(solve_iterative(&program, &goals, &opts))
            });
        println!("{}", render_line(&s));
    }

    // Deterministic deep descent (little backtracking): costs should be
    // closer, dominated by unification itself.
    let nrev_src = "app([], Ys, Ys).\napp([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).\n\
                    nrev([], []).\nnrev([X|Xs], R) :- nrev(Xs, R1), app(R1, [X], R).";
    let program = parse_program(nrev_src).unwrap();
    let sizes: &[usize] = if smoke { &[8, 16] } else { &[8, 16, 24] };
    for &n in sizes {
        let atoms: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let q = format!("nrev([{}], R)", atoms.join(", "));
        let goals = parse_query(&q).unwrap();
        let s = bench_case("interp", &format!("nrev/reference/{n}"), 1, iters, || {
            black_box(solve(&program, &goals, &opts))
        });
        println!("{}", render_line(&s));
        let s = bench_case("interp", &format!("nrev/trail-machine/{n}"), 1, iters, || {
            black_box(solve_iterative(&program, &goals, &opts))
        });
        println!("{}", render_line(&s));
    }
}
