//! Incremental per-SCC analysis: a content-addressed memo over the two
//! per-SCC computations of the pipeline, backed by an optional persistent
//! on-disk store.
//!
//! The paper's method is SCC-modular: an SCC's θ-vectors depend only on its
//! own rules plus the size relations imported from its callee SCCs (§6.2).
//! The same is true of the size-relation inference itself — each SCC's
//! fixpoint reads only its rules and the already-inferred callee polyhedra.
//! Both computations are therefore memoizable on a *content key*:
//!
//! - **Size entry** (phase A): keyed on the SCC's rules (canonical,
//!   span-transparent digests via [`argus_logic::hash`]), the inference
//!   options, and the *work-state* polyhedra of every callee predicate the
//!   rules mention. Stores, per member, the work-state polyhedron (the
//!   value downstream fixpoints consume) and its minimized form (the value
//!   the θ analysis consumes).
//! - **θ entry** (phase B): keyed on the SCC's rules, the analysis options
//!   that affect results (δ mode, norm, lexicographic fallback, FM tier),
//!   each mentioned predicate's adornment, and the final (minimized,
//!   post-import, post-restriction) size relation of every predicate the
//!   rules mention. Stores the outcome, the reduced θ system, blame (as
//!   indices into the SCC's rule list, so spans are re-attached from the
//!   *current* program text on a hit), and the deterministic FM counters.
//!
//! After an edit, every SCC whose key is unchanged — everything outside the
//! dirty cone — is a pure hit, and the replayed result is byte-identical
//! to a cold run (the fuzz oracle `argus fuzz --incremental` and the
//! byte-identity test tier enforce this). Keys deliberately exclude source
//! spans, worker counts, the projection-cache knob, and the deadline; the
//! first is rendering-only metadata re-derived on hit, the rest are
//! byte-identical knobs (a deadline that actually fired suppresses the
//! `put`, so degraded results are never cached).
//!
//! The on-disk format (one file per entry under `--cache-dir`, default
//! `$ARGUS_CACHE_DIR`, `$XDG_CACHE_HOME/argus`, or `~/.cache/argus`) is a
//! fixed header — magic, schema version, payload length, FNV-1a64 checksum
//! — followed by the full canonical key and the entry body. Readers verify
//! all four plus the key bytes; *any* mismatch (truncation, bit flips, a
//! foreign schema, a 64-bit filename collision) is silently a miss, never
//! an error and never a wrong answer. Writers create a temp file and
//! `rename` it into place, so concurrent writers — multiple CLI runs, or a
//! CLI run racing `argus serve` — can share a directory without torn
//! entries.

use crate::analyze::{BlameKind, PairBlame, SccAnalysis, SccOutcome, SccStats};
use crate::lexico::LexicographicProof;
use crate::theta::ThetaSpace;
use argus_linear::fm::FmStats;
use argus_linear::{Constraint, ConstraintSystem, LinExpr, Poly, Rat, Rel};
use argus_logic::hash::{hash_rule, Fnv64};
use argus_logic::modes::ModeMap;
use argus_logic::{PredKey, Rule};
use argus_sizerel::{InferOptions, SizeRelations};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Version tag of both the key grammar and the entry encoding. Bump on any
/// change to either; old entries then miss and age out.
pub const SCHEMA_VERSION: u32 = 1;

/// Magic prefix of on-disk entry files.
const MAGIC: &[u8; 8] = b"ARGSCC\x01\n";

/// Fixed per-entry overhead charged against the in-memory byte budget.
const ENTRY_OVERHEAD: usize = 96;

/// Counters of one incremental run (`--stats` only; never part of the
/// default report, which must stay byte-identical to a cold run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalRunStats {
    /// Size-relation SCCs answered from the memo.
    pub size_hits: u64,
    /// Size-relation SCCs recomputed.
    pub size_misses: u64,
    /// θ-analysis SCCs answered from the memo.
    pub theta_hits: u64,
    /// θ-analysis SCCs recomputed (the dirty cone, plus any entry the
    /// deadline kept out of the cache).
    pub theta_misses: u64,
}

impl IncrementalRunStats {
    /// SCC computations that had to run (both phases).
    pub fn dirty(&self) -> u64 {
        self.size_misses + self.theta_misses
    }

    /// SCC computations considered (both phases).
    pub fn total(&self) -> u64 {
        self.size_hits + self.size_misses + self.theta_hits + self.theta_misses
    }
}

// ---------------------------------------------------------------------------
// Canonical keys
// ---------------------------------------------------------------------------

/// Digest of a polyhedron: dimension, emptiness, and every constraint row
/// in stored order (row order is semantically redundant but determinism-
/// relevant — downstream FM walks rows in order — so it is part of the
/// content).
pub(crate) fn poly_digest(p: &Poly) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(p.dim());
    h.write(&[u8::from(p.is_empty())]);
    let rows = p.constraints().constraints();
    h.write_usize(rows.len());
    for c in rows {
        h.write(&[match c.rel {
            Rel::Le => 0x01,
            Rel::Eq => 0x02,
        }]);
        h.write_str(&c.expr.constant_term().to_string());
        for (v, k) in c.expr.terms() {
            h.write_usize(v);
            h.write_str(&k.to_string());
        }
    }
    h.finish()
}

/// Digest of a rule sequence in consumption order.
fn rules_digest<'a>(rules: impl Iterator<Item = &'a Rule>) -> u64 {
    let mut h = Fnv64::new();
    for r in rules {
        hash_rule(&mut h, r);
    }
    h.finish()
}

/// Render one `name/arity:digest` environment component (`:T` when the
/// predicate has no relation — the implicit top element).
fn poly_component(key: &mut String, p: &PredKey, digest: Option<u64>) {
    use std::fmt::Write as _;
    match digest {
        None => {
            let _ = write!(key, "{p}:T");
        }
        Some(d) => {
            let _ = write!(key, "{p}:{d:016x}");
        }
    }
}

/// Canonical key of one phase-A (size-relation) SCC computation.
///
/// `members` must be the SCC's rule-bearing predicates in
/// [`argus_logic::DepGraph::scc`] order; `callee_rels` holds the work-state
/// polyhedra of every earlier SCC; `digest_memo` caches per-predicate poly
/// digests across SCCs (a callee is consulted by every caller).
/// `body_preds` lists every predicate occurring in a member rule body that
/// is not itself a member (a superset is sound: it can only cause spurious
/// misses, never stale hits).
pub(crate) fn size_key(
    members: &[PredKey],
    recursive: bool,
    member_rules: &[&Rule],
    body_preds: &[PredKey],
    callee_rels: &SizeRelations,
    digest_memo: &mut HashMap<PredKey, u64>,
    options: &InferOptions,
) -> String {
    use std::fmt::Write as _;
    let mut key = format!(
        "A{SCHEMA_VERSION}|norm={:?}|wd={}|mi={}|rec={}|m=",
        options.norm,
        options.widening_delay,
        options.max_iterations,
        u8::from(recursive),
    );
    for p in members {
        let _ = write!(key, "{p},");
    }
    let _ = write!(key, "|r={:016x}|env=", rules_digest(member_rules.iter().copied()));
    for p in body_preds {
        let digest = callee_rels
            .get(p)
            .map(|poly| *digest_memo.entry(p.clone()).or_insert_with(|| poly_digest(poly)));
        poly_component(&mut key, p, digest);
        key.push(',');
    }
    key
}

/// Canonical key of one phase-B (θ-analysis) SCC computation.
///
/// `members` is the full SCC ([`argus_logic::DepGraph::scc`] order,
/// including rule-less predicates — they get θ variables too); `rules` the
/// [`argus_logic::DepGraph::scc_rules`] list; `mentioned` every predicate
/// occurring in those rules (heads and bodies); `rel_digests` the
/// pre-computed digests of the final size relations the analysis consumes
/// (absent = top).
pub(crate) fn theta_key(
    members: &[PredKey],
    rules: &[&Rule],
    mentioned: &[PredKey],
    modes: &ModeMap,
    rel_digests: &HashMap<PredKey, u64>,
    options: &crate::analyze::AnalysisOptions,
) -> String {
    use std::fmt::Write as _;
    let mut key = format!(
        "B{SCHEMA_VERSION}|norm={:?}|delta={:?}|lex={}|tier={:?}|m=",
        options.norm,
        options.delta_mode,
        u8::from(options.lexicographic),
        options.fm_tier,
    );
    for p in members {
        let _ = write!(key, "{p}:");
        match modes.get(p) {
            Some(a) => {
                let _ = write!(key, "{a}");
            }
            None => key.push('-'),
        }
        key.push(',');
    }
    let _ = write!(key, "|r={:016x}|env=", rules_digest(rules.iter().copied()));
    for p in mentioned {
        poly_component(&mut key, p, rel_digests.get(p).copied());
        key.push(':');
        match modes.get(p) {
            Some(a) => {
                let _ = write!(key, "{a}");
            }
            None => key.push('-'),
        }
        key.push(',');
    }
    key
}

/// Phase A of an incremental run: per-SCC memoized size-relation
/// inference, byte-identical to [`argus_sizerel::infer_size_relations`].
///
/// Walks SCCs bottom-up exactly like the cold fixpoint, but keys each
/// SCC's computation on its rules plus its callees' *work-state* polyhedra
/// and answers unchanged SCCs from `memo`. Each entry stores, per member,
/// both the work-state polyhedron (what downstream fixpoints consume) and
/// its minimized form (what the cold path's final canonicalization pass
/// would produce); the returned map holds the minimized forms.
pub(crate) fn incremental_size_relations(
    program: &argus_logic::Program,
    graph: &argus_logic::DepGraph,
    index: &argus_logic::program::ProcIndex,
    options: &InferOptions,
    memo: &SccCache,
    stats: &mut IncrementalRunStats,
) -> SizeRelations {
    use std::collections::BTreeSet;
    let mut work = SizeRelations::new();
    let mut finals: BTreeMap<PredKey, Poly> = BTreeMap::new();
    let mut digest_memo: HashMap<PredKey, u64> = HashMap::new();
    for scc_id in graph.sccs_bottom_up() {
        let members: Vec<PredKey> =
            graph.scc(scc_id).into_iter().filter(|p| !index.rule_indices(p).is_empty()).collect();
        if members.is_empty() {
            continue; // EDB-only SCC; stays at implicit top.
        }
        let recursive = members.iter().any(|p| graph.is_recursive(p));
        let mut member_rules: Vec<&Rule> = Vec::new();
        for p in &members {
            for &ri in index.rule_indices(p) {
                member_rules.push(&program.rules[ri]);
            }
        }
        let member_set: BTreeSet<&PredKey> = members.iter().collect();
        let body_preds: Vec<PredKey> = member_rules
            .iter()
            .flat_map(|r| {
                r.body.iter().map(|l| PredKey { name: l.atom.name, arity: l.atom.args.len() })
            })
            .filter(|p| !member_set.contains(p))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let key = size_key(
            &members,
            recursive,
            &member_rules,
            &body_preds,
            &work,
            &mut digest_memo,
            options,
        );
        let decoded = memo.get(&key).and_then(|b| decode_size_entry(&b)).filter(|entry| {
            entry.len() == members.len() && entry.iter().zip(&members).all(|((p, _, _), m)| p == m)
        });
        match decoded {
            Some(entry) => {
                stats.size_hits += 1;
                for (p, w, f) in entry {
                    work.insert(p.clone(), w);
                    finals.insert(p, f);
                }
            }
            None => {
                stats.size_misses += 1;
                argus_sizerel::infer_scc_sizes(
                    program, index, &members, recursive, &mut work, options,
                );
                let mut encoded = Vec::with_capacity(members.len());
                for p in &members {
                    let w = work.get(p).cloned().unwrap_or_else(|| Poly::nonneg_universe(p.arity));
                    let f = w.minimized();
                    finals.insert(p.clone(), f.clone());
                    encoded.push((p.clone(), w, f));
                }
                memo.put(&key, &encode_size_entry(&encoded));
            }
        }
    }
    let mut rels = SizeRelations::new();
    for (p, f) in finals {
        rels.insert(p, f);
    }
    rels
}

// ---------------------------------------------------------------------------
// Entry encoding
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn new(tag: u8) -> Enc {
        Enc(vec![tag])
    }
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.0.extend_from_slice(s.as_bytes());
    }
    fn rat(&mut self, r: &Rat) {
        self.str(&r.to_string());
    }
    fn pred(&mut self, p: &PredKey) {
        self.str(p.name.as_str());
        self.usize(p.arity);
    }
    fn expr(&mut self, e: &LinExpr) {
        self.rat(e.constant_term());
        let terms: Vec<_> = e.terms().collect();
        self.usize(terms.len());
        for (v, k) in terms {
            self.usize(v);
            self.rat(k);
        }
    }
    fn constraint(&mut self, c: &Constraint) {
        self.u8(match c.rel {
            Rel::Le => 1,
            Rel::Eq => 2,
        });
        self.expr(&c.expr);
    }
    fn sys(&mut self, s: &ConstraintSystem) {
        let rows = s.constraints();
        self.usize(rows.len());
        for c in rows {
            self.constraint(c);
        }
    }
    fn poly(&mut self, p: &Poly) {
        self.usize(p.dim());
        self.u8(u8::from(p.is_empty()));
        self.sys(p.constraints());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }
    fn len(&mut self) -> Option<usize> {
        // Element-count fields gate allocations. Every encoded element is
        // at least one byte, so a count exceeding the remaining bytes is
        // malformed — rejecting it here keeps `with_capacity` bounded by
        // the file size even on corrupt input.
        let n = self.usize()?;
        (n <= self.buf.len().saturating_sub(self.pos)).then_some(n)
    }
    fn str(&mut self) -> Option<&'a str> {
        let n = self.usize()?;
        std::str::from_utf8(self.take(n)?).ok()
    }
    fn rat(&mut self) -> Option<Rat> {
        self.str()?.parse().ok()
    }
    fn pred(&mut self) -> Option<PredKey> {
        let name = self.str()?;
        let arity = self.usize()?;
        Some(PredKey::new(name, arity))
    }
    fn expr(&mut self) -> Option<LinExpr> {
        let constant = self.rat()?;
        let n = self.len()?;
        let mut terms = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let v = self.usize()?;
            let k = self.rat()?;
            terms.push((v, k));
        }
        Some(LinExpr::from_terms(terms, constant))
    }
    fn constraint(&mut self) -> Option<Constraint> {
        let rel = match self.u8()? {
            1 => Rel::Le,
            2 => Rel::Eq,
            _ => return None,
        };
        let expr = self.expr()?;
        Some(Constraint { expr, rel })
    }
    fn sys(&mut self) -> Option<ConstraintSystem> {
        let n = self.len()?;
        let mut rows = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            rows.push(self.constraint()?);
        }
        Some(ConstraintSystem::from_constraints(rows))
    }
    fn poly(&mut self) -> Option<Poly> {
        let dim = self.usize()?;
        let empty = match self.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let sys = self.sys()?;
        if sys.vars().iter().any(|&v| v >= dim) {
            return None;
        }
        Some(Poly::from_raw_parts(dim, sys, empty))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

const TAG_SIZE: u8 = 1;
const TAG_THETA: u8 = 2;

/// Encode a phase-A entry: per member, the work-state polyhedron and its
/// minimized (final) form.
pub(crate) fn encode_size_entry(members: &[(PredKey, Poly, Poly)]) -> Vec<u8> {
    let mut e = Enc::new(TAG_SIZE);
    e.usize(members.len());
    for (p, work, fin) in members {
        e.pred(p);
        e.poly(work);
        e.poly(fin);
    }
    e.0
}

/// Decode a phase-A entry; `None` on any malformation.
pub(crate) fn decode_size_entry(bytes: &[u8]) -> Option<Vec<(PredKey, Poly, Poly)>> {
    let mut d = Dec::new(bytes);
    if d.u8()? != TAG_SIZE {
        return None;
    }
    let n = d.len()?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let p = d.pred()?;
        let work = d.poly()?;
        let fin = d.poly()?;
        if work.dim() != p.arity || fin.dim() != p.arity {
            return None;
        }
        out.push((p, work, fin));
    }
    d.done().then_some(out)
}

/// Encode a phase-B entry from a finished [`SccAnalysis`]. `members`,
/// `theta_space` and blame's `Rule` are *not* stored — they are
/// reconstructed from the current program on decode, so spans track the
/// edited file. `wall_nanos` is re-measured on hit.
pub(crate) fn encode_theta_entry(a: &SccAnalysis) -> Vec<u8> {
    let mut e = Enc::new(TAG_THETA);
    match &a.outcome {
        SccOutcome::NonRecursive => e.u8(0),
        SccOutcome::Proved { witness, deltas } => {
            e.u8(1);
            e.usize(witness.len());
            for (p, th) in witness {
                e.pred(p);
                e.usize(th.len());
                for r in th {
                    e.rat(r);
                }
            }
            e.usize(deltas.len());
            for ((h, s), d) in deltas {
                e.pred(h);
                e.pred(s);
                e.rat(d);
            }
        }
        SccOutcome::ProvedLexicographic { proof } => {
            e.u8(2);
            e.usize(proof.levels.len());
            for level in &proof.levels {
                e.usize(level.len());
                for (p, th) in level {
                    e.pred(p);
                    e.usize(th.len());
                    for r in th {
                        e.rat(r);
                    }
                }
            }
            e.usize(proof.discharged_at.len());
            for ((ri, si), lv) in &proof.discharged_at {
                e.usize(*ri);
                e.usize(*si);
                e.usize(*lv);
            }
        }
        SccOutcome::ZeroWeightCycle(cycle) => {
            e.u8(3);
            e.usize(cycle.len());
            for p in cycle {
                e.pred(p);
            }
        }
        SccOutcome::NoLinearDecrease { refutation } => {
            e.u8(4);
            match refutation {
                None => e.u8(0),
                Some(cert) => {
                    e.u8(1);
                    e.usize(cert.multipliers.len());
                    for (idx, lambda) in &cert.multipliers {
                        e.usize(*idx);
                        e.rat(lambda);
                    }
                }
            }
        }
    }
    e.sys(&a.theta_constraints);
    e.usize(a.pair_count);
    match &a.blame {
        None => e.u8(0),
        Some(b) => {
            e.u8(1);
            e.pred(&b.head_pred);
            e.pred(&b.sub_pred);
            e.usize(b.rule_index);
            e.usize(b.subgoal_index);
            e.u8(match b.kind {
                BlameKind::Alone => 1,
                BlameKind::Conjunction => 2,
            });
        }
    }
    let fm = &a.stats.fm;
    for v in [
        fm.eliminations,
        fm.gauss_steps,
        fm.rows_in,
        fm.rows_out,
        fm.pairs_combined,
        fm.dedup_hits,
        fm.subsume_hits,
        fm.chernikov_drops,
        fm.lp_drops,
        fm.peak_rows,
        fm.small_combs,
        fm.big_combs,
        a.stats.projections,
    ] {
        e.u64(v);
    }
    e.0
}

/// Decode a phase-B entry against the *current* SCC context, rebuilding the
/// θ space from `members` + `modes` and re-attaching blame to the current
/// rule (so spans match a cold run on the edited file). `None` on any
/// malformation or index out of range.
pub(crate) fn decode_theta_entry(
    bytes: &[u8],
    members: &[PredKey],
    rules: &[&Rule],
    modes: &ModeMap,
) -> Option<SccAnalysis> {
    let mut d = Dec::new(bytes);
    if d.u8()? != TAG_THETA {
        return None;
    }
    let outcome = match d.u8()? {
        0 => SccOutcome::NonRecursive,
        1 => {
            let nw = d.len()?;
            let mut witness = BTreeMap::new();
            for _ in 0..nw {
                let p = d.pred()?;
                let nt = d.len()?;
                let mut th = Vec::with_capacity(nt.min(1024));
                for _ in 0..nt {
                    th.push(d.rat()?);
                }
                witness.insert(p, th);
            }
            let nd = d.len()?;
            let mut deltas = BTreeMap::new();
            for _ in 0..nd {
                let h = d.pred()?;
                let s = d.pred()?;
                let r = d.rat()?;
                deltas.insert((h, s), r);
            }
            SccOutcome::Proved { witness, deltas }
        }
        2 => {
            let nl = d.len()?;
            let mut levels = Vec::with_capacity(nl.min(1024));
            for _ in 0..nl {
                let np = d.len()?;
                let mut level = BTreeMap::new();
                for _ in 0..np {
                    let p = d.pred()?;
                    let nt = d.len()?;
                    let mut th = Vec::with_capacity(nt.min(1024));
                    for _ in 0..nt {
                        th.push(d.rat()?);
                    }
                    level.insert(p, th);
                }
                levels.push(level);
            }
            let nd = d.len()?;
            let mut discharged_at = BTreeMap::new();
            for _ in 0..nd {
                let ri = d.usize()?;
                let si = d.usize()?;
                let lv = d.usize()?;
                discharged_at.insert((ri, si), lv);
            }
            SccOutcome::ProvedLexicographic { proof: LexicographicProof { levels, discharged_at } }
        }
        3 => {
            let n = d.len()?;
            let mut cycle = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                cycle.push(d.pred()?);
            }
            SccOutcome::ZeroWeightCycle(cycle)
        }
        4 => {
            let refutation = match d.u8()? {
                0 => None,
                1 => {
                    let n = d.len()?;
                    let mut multipliers = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        let idx = d.usize()?;
                        let lambda = d.rat()?;
                        multipliers.push((idx, lambda));
                    }
                    Some(argus_linear::FarkasCertificate { multipliers })
                }
                _ => return None,
            };
            SccOutcome::NoLinearDecrease { refutation }
        }
        _ => return None,
    };
    let theta_constraints = d.sys()?;
    let pair_count = d.usize()?;
    let blame = match d.u8()? {
        0 => None,
        1 => {
            let head_pred = d.pred()?;
            let sub_pred = d.pred()?;
            let rule_index = d.usize()?;
            let subgoal_index = d.usize()?;
            let kind = match d.u8()? {
                1 => BlameKind::Alone,
                2 => BlameKind::Conjunction,
                _ => return None,
            };
            let rule = (*rules.get(rule_index)?).clone();
            Some(PairBlame { head_pred, sub_pred, rule, rule_index, subgoal_index, kind })
        }
        _ => return None,
    };
    let mut counters = [0u64; 13];
    for slot in &mut counters {
        *slot = d.u64()?;
    }
    if !d.done() {
        return None;
    }
    let fm = FmStats {
        eliminations: counters[0],
        gauss_steps: counters[1],
        rows_in: counters[2],
        rows_out: counters[3],
        pairs_combined: counters[4],
        dedup_hits: counters[5],
        subsume_hits: counters[6],
        chernikov_drops: counters[7],
        lp_drops: counters[8],
        peak_rows: counters[9],
        small_combs: counters[10],
        big_combs: counters[11],
    };
    // Rebuild the θ space exactly as `analyze_scc` does: one variable per
    // bound argument, members in SCC order.
    let mut space = ThetaSpace::new();
    for p in members {
        let bound = modes.get(p).map(|a| a.bound_positions().len()).unwrap_or(p.arity);
        space.add_pred(p, bound);
    }
    Some(SccAnalysis {
        members: members.to_vec(),
        outcome,
        theta_constraints,
        theta_space: space,
        pair_count,
        blame,
        stats: SccStats { wall_nanos: 0, fm, projections: counters[12] },
    })
}

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

struct MemEntry {
    key: Arc<str>,
    body: Arc<[u8]>,
    stamp: u64,
    bytes: usize,
}

#[derive(Default)]
struct MemInner {
    map: HashMap<u64, Vec<MemEntry>>,
    by_stamp: BTreeMap<u64, u64>,
    bytes: usize,
    clock: u64,
}

/// The SCC-level memo: an in-memory LRU map (keyed on the FNV-1a64 of the
/// canonical key, full key compared on every probe) over encoded entries,
/// optionally backed by an on-disk directory shared across processes.
///
/// Thread-safe; cheap to share behind an [`Arc`]. All disk failures are
/// silent misses.
pub struct SccCache {
    inner: Mutex<MemInner>,
    disk: Option<PathBuf>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for SccCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SccCache")
            .field("disk", &self.disk)
            .field("budget", &self.budget)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

/// FNV-1a64 of a byte string (bucket hash and disk file name).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl SccCache {
    /// In-memory cache with a byte budget (least-recently-used eviction
    /// past the budget, always keeping at least one entry).
    pub fn new(budget_bytes: usize) -> SccCache {
        SccCache {
            inner: Mutex::new(MemInner::default()),
            disk: None,
            budget: budget_bytes.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// In-memory cache without an effective budget (a single CLI run).
    pub fn unbounded() -> SccCache {
        SccCache::new(usize::MAX)
    }

    /// Attach a persistent directory: probes fall through to disk on a
    /// memory miss, and stores are mirrored to disk. The directory is
    /// created eagerly; on failure the cache silently stays memory-only.
    pub fn with_disk(budget_bytes: usize, dir: impl Into<PathBuf>) -> SccCache {
        let dir: PathBuf = dir.into();
        let disk = std::fs::create_dir_all(&dir).ok().map(|()| dir);
        SccCache { disk, ..SccCache::new(budget_bytes) }
    }

    /// The conventional persistent location: `$ARGUS_CACHE_DIR`, else
    /// `$XDG_CACHE_HOME/argus`, else `$HOME/.cache/argus`.
    pub fn default_disk_dir() -> Option<PathBuf> {
        if let Some(d) = std::env::var_os("ARGUS_CACHE_DIR") {
            return Some(PathBuf::from(d));
        }
        if let Some(d) = std::env::var_os("XDG_CACHE_HOME") {
            return Some(Path::new(&d).join("argus"));
        }
        std::env::var_os("HOME").map(|h| Path::new(&h).join(".cache").join("argus"))
    }

    /// The attached disk directory, if any.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// Probes answered (memory or disk).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Probes that missed everywhere.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// In-memory entries evicted by the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// In-memory entry count.
    pub fn entries(&self) -> u64 {
        self.inner.lock().map(|i| i.map.values().map(Vec::len).sum::<usize>() as u64).unwrap_or(0)
    }

    /// In-memory resident bytes (bodies + keys + bookkeeping overhead).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().map(|i| i.bytes as u64).unwrap_or(0)
    }

    /// Look up `key`, consulting memory then disk. A disk hit is promoted
    /// into memory.
    pub fn get(&self, key: &str) -> Option<Arc<[u8]>> {
        let hash = fnv1a64(key.as_bytes());
        if let Ok(mut inner) = self.inner.lock() {
            inner.clock += 1;
            let clock = inner.clock;
            let mut found: Option<(u64, Arc<[u8]>)> = None;
            if let Some(bucket) = inner.map.get_mut(&hash) {
                if let Some(entry) = bucket.iter_mut().find(|e| &*e.key == key) {
                    found = Some((entry.stamp, Arc::clone(&entry.body)));
                    entry.stamp = clock;
                }
            }
            if let Some((old, body)) = found {
                inner.by_stamp.remove(&old);
                inner.by_stamp.insert(clock, hash);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(body);
            }
        }
        if let Some(dir) = &self.disk {
            if let Some(body) = disk_load(dir, hash, key) {
                let body: Arc<[u8]> = body.into();
                self.insert_mem(hash, key, Arc::clone(&body));
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(body);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Publish an entry (first insert wins in memory; disk is best-effort).
    pub fn put(&self, key: &str, body: &[u8]) {
        let hash = fnv1a64(key.as_bytes());
        let arc: Arc<[u8]> = body.into();
        self.insert_mem(hash, key, arc);
        if let Some(dir) = &self.disk {
            disk_store(dir, hash, key, body);
        }
    }

    fn insert_mem(&self, hash: u64, key: &str, body: Arc<[u8]>) {
        let Ok(mut inner) = self.inner.lock() else { return };
        inner.clock += 1;
        let stamp = inner.clock;
        let bytes = key.len() + body.len() + ENTRY_OVERHEAD;
        {
            let bucket = inner.map.entry(hash).or_default();
            if bucket.iter().any(|e| &*e.key == key) {
                return; // first insert wins
            }
            bucket.push(MemEntry { key: key.into(), body, stamp, bytes });
        }
        inner.by_stamp.insert(stamp, hash);
        inner.bytes += bytes;
        let mut evicted = 0u64;
        while inner.bytes > self.budget && inner.by_stamp.len() > 1 {
            let Some((&oldest, &h)) = inner.by_stamp.iter().next() else { break };
            inner.by_stamp.remove(&oldest);
            let mut freed = 0;
            let mut emptied = false;
            if let Some(bucket) = inner.map.get_mut(&h) {
                if let Some(pos) = bucket.iter().position(|e| e.stamp == oldest) {
                    freed = bucket.swap_remove(pos).bytes;
                    evicted += 1;
                }
                emptied = bucket.is_empty();
            }
            inner.bytes -= freed;
            if emptied {
                inner.map.remove(&h);
            }
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// Disk store
// ---------------------------------------------------------------------------

fn entry_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.argusscc"))
}

/// Read and fully verify one entry file: magic, schema version, payload
/// length, checksum, and the embedded canonical key. Any mismatch is a
/// silent miss.
fn disk_load(dir: &Path, hash: u64, key: &str) -> Option<Vec<u8>> {
    let data = std::fs::read(entry_path(dir, hash)).ok()?;
    let header = 8 + 4 + 8 + 8;
    if data.len() < header || &data[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(data[8..12].try_into().ok()?);
    if version != SCHEMA_VERSION {
        return None;
    }
    let payload_len = u64::from_le_bytes(data[12..20].try_into().ok()?);
    let checksum = u64::from_le_bytes(data[20..28].try_into().ok()?);
    let payload = data.get(header..)?;
    if payload.len() as u64 != payload_len || fnv1a64(payload) != checksum {
        return None;
    }
    let mut d = Dec::new(payload);
    let stored_key = d.str()?;
    if stored_key != key {
        return None; // 64-bit file-name collision: treat as absent
    }
    Some(payload[d.pos..].to_vec())
}

/// Write one entry file atomically (temp file + rename). All errors are
/// swallowed: the cache is an accelerator, never a correctness dependency.
fn disk_store(dir: &Path, hash: u64, key: &str, body: &[u8]) {
    let mut payload = Vec::with_capacity(8 + key.len() + body.len());
    {
        let mut e = Enc(Vec::new());
        e.str(key);
        payload.extend_from_slice(&e.0);
    }
    payload.extend_from_slice(body);
    let mut file = Vec::with_capacity(28 + payload.len());
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    file.extend_from_slice(&payload);
    let tmp = dir.join(format!(
        ".{hash:016x}.tmp.{}.{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    match std::fs::write(&tmp, &file) {
        Ok(()) => {
            if std::fs::rename(&tmp, entry_path(dir, hash)).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        }
        Err(_) => {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrip_and_counters() {
        let cache = SccCache::unbounded();
        assert!(cache.get("k1").is_none());
        cache.put("k1", b"hello");
        assert_eq!(cache.get("k1").as_deref(), Some(&b"hello"[..]));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let cache = SccCache::new(2 * (ENTRY_OVERHEAD + 8));
        cache.put("aaaa", &[0u8; 4]);
        cache.put("bbbb", &[1u8; 4]);
        assert!(cache.get("aaaa").is_some()); // refresh a
        cache.put("cccc", &[2u8; 4]); // evicts b (oldest)
        assert!(cache.evictions() >= 1);
        assert!(cache.get("bbbb").is_none());
        assert!(cache.get("aaaa").is_some());
        assert!(cache.get("cccc").is_some());
    }

    #[test]
    fn disk_roundtrip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("argus-scc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = SccCache::with_disk(usize::MAX, &dir);
            cache.put("key-a", b"body-a");
        }
        // Fresh instance: memory empty, disk hit.
        let cache = SccCache::with_disk(usize::MAX, &dir);
        assert_eq!(cache.get("key-a").as_deref(), Some(&b"body-a"[..]));
        // Different key hashing to a different file: miss.
        assert!(cache.get("key-b").is_none());
        // Corrupt every byte position in turn: must never panic, and a
        // fresh instance must treat the damaged file as a miss.
        let path = entry_path(&dir, fnv1a64(b"key-a"));
        let original = std::fs::read(&path).unwrap();
        for i in 0..original.len() {
            let mut bad = original.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            let fresh = SccCache::with_disk(usize::MAX, &dir);
            if let Some(body) = fresh.get("key-a") {
                // Flipping a bit inside the *body* region is caught by the
                // checksum, so any successful load must be byte-identical.
                assert_eq!(&*body, &b"body-a"[..]);
            }
        }
        // Truncations.
        for cut in [0, 7, 12, 27, original.len() - 1] {
            std::fs::write(&path, &original[..cut]).unwrap();
            let fresh = SccCache::with_disk(usize::MAX, &dir);
            assert!(fresh.get("key-a").is_none(), "truncated at {cut}");
        }
        // Wrong schema version.
        let mut wrong = original.clone();
        wrong[8] = wrong[8].wrapping_add(1);
        std::fs::write(&path, &wrong).unwrap();
        let fresh = SccCache::with_disk(usize::MAX, &dir);
        assert!(fresh.get("key-a").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
