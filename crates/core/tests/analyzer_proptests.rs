//! Randomized tests for the analyzer on generated program families.
//!
//! * Programs built to recurse on a *proper subterm* of a bound argument
//!   are always provable under the structural norm (subterm descent is the
//!   easy fragment of the method — Naish's class, §1.1).
//! * Programs whose recursive call repeats the bound argument unchanged
//!   are never provable (and the analysis must stay sound under arbitrary
//!   extra structure).
//!
//! Deterministic seeded generation (argus-prng) replaces the former
//! proptest strategies.

use argus_core::{analyze, AnalysisOptions, Verdict};
use argus_logic::parser::parse_program;
use argus_logic::{Adornment, PredKey};
use argus_prng::Rng64;

/// Description of one generated recursive rule: a head pattern with a
/// functor of `arity` args, recursing on argument `rec_pos`.
#[derive(Debug, Clone)]
struct GenRule {
    functor: &'static str,
    arity: usize,
    rec_pos: usize,
}

fn gen_rule(r: &mut Rng64) -> GenRule {
    let functor = *r.pick(&["f", "g", "h"]);
    let arity = r.range_usize(1, 3);
    let rec_pos = r.range_usize(0, arity - 1);
    GenRule { functor, arity, rec_pos }
}

fn gen_rules(r: &mut Rng64, lo: usize, hi: usize) -> Vec<GenRule> {
    let n = r.range_usize(lo, hi);
    (0..n).map(|_| gen_rule(r)).collect()
}

/// Assemble a single-predicate program from rule descriptors. Every rule
/// looks like `p(f(X1, …, Xk)) :- p(Xi).` — guaranteed subterm descent.
fn descending_program(rules: &[GenRule]) -> String {
    let mut out = String::from("p(c).\n");
    for r in rules {
        let vars: Vec<String> = (0..r.arity).map(|i| format!("X{i}")).collect();
        out.push_str(&format!("p({}({})) :- p(X{}).\n", r.functor, vars.join(", "), r.rec_pos));
    }
    out
}

/// The same shape but recursing on the WHOLE argument (no descent).
fn stationary_program(rules: &[GenRule]) -> String {
    let mut out = String::from("p(c).\n");
    for r in rules {
        let vars: Vec<String> = (0..r.arity).map(|i| format!("X{i}")).collect();
        out.push_str(&format!(
            "p({}({})) :- p({}({})).\n",
            r.functor,
            vars.join(", "),
            r.functor,
            vars.join(", ")
        ));
    }
    out
}

fn verdict(src: &str) -> Verdict {
    let program = parse_program(src).unwrap();
    analyze(
        &program,
        &PredKey::new("p", 1),
        Adornment::parse("b").unwrap(),
        &AnalysisOptions::default(),
    )
    .verdict
}

/// Completeness on the subterm-descent fragment.
#[test]
fn subterm_descent_always_proved() {
    let mut r = Rng64::new(0xDE5);
    for _ in 0..32 {
        let src = descending_program(&gen_rules(&mut r, 1, 4));
        assert_eq!(verdict(&src), Verdict::Terminates, "should prove subterm descent:\n{src}");
    }
}

/// Soundness on the stationary fragment: same-size recursive calls are
/// never proved (they genuinely loop on matching inputs).
#[test]
fn stationary_recursion_never_proved() {
    let mut r = Rng64::new(0x57A);
    for _ in 0..32 {
        let src = stationary_program(&gen_rules(&mut r, 1, 4));
        assert_ne!(verdict(&src), Verdict::Terminates, "must not prove a stationary loop:\n{src}");
    }
}

/// Mixed programs: one stationary rule poisons an otherwise descending
/// procedure.
#[test]
fn one_stationary_rule_blocks_the_proof() {
    let mut r = Rng64::new(0x315);
    for _ in 0..32 {
        let good = gen_rules(&mut r, 1, 3);
        let bad = gen_rule(&mut r);
        let mut src = descending_program(&good);
        let vars: Vec<String> = (0..bad.arity).map(|i| format!("X{i}")).collect();
        src.push_str(&format!(
            "p({}({})) :- p({}({})).\n",
            bad.functor,
            vars.join(", "),
            bad.functor,
            vars.join(", ")
        ));
        assert_ne!(verdict(&src), Verdict::Terminates, "{src}");
    }
}

/// Every proof produced on the generated family passes independent
/// certification.
#[test]
fn generated_proofs_certify() {
    let mut r = Rng64::new(0xCE2);
    for _ in 0..32 {
        let rules = gen_rules(&mut r, 1, 3);
        let src = descending_program(&rules);
        let program = parse_program(&src).unwrap();
        let report = analyze(
            &program,
            &PredKey::new("p", 1),
            Adornment::parse("b").unwrap(),
            &AnalysisOptions::default(),
        );
        assert_eq!(report.verdict, Verdict::Terminates);
        let checks = argus_core::verify_report(&report, argus_logic::Norm::StructuralSize)
            .unwrap_or_else(|e| panic!("certificate rejected: {e}\n{src}"));
        assert_eq!(checks, rules.len());
    }
}

/// Generated mutual-recursion SCCs: k predicates in a call cycle, a chosen
/// subset of edges consuming one list cell and the rest passing the
/// argument through unchanged. Provable iff at least one edge of the cycle
/// consumes (the δ bookkeeping of §6.1 in the general case).
mod mutual {
    use super::*;

    fn verdict_p0(src: &str) -> Verdict {
        let program = parse_program(src).unwrap();
        analyze(
            &program,
            &PredKey::new("p0", 1),
            Adornment::parse("b").unwrap(),
            &AnalysisOptions::default(),
        )
        .verdict
    }

    fn cycle_program(k: usize, consuming: &[bool]) -> String {
        let mut out = String::new();
        for (i, consumes) in consuming.iter().enumerate().take(k) {
            let next = (i + 1) % k;
            if *consumes {
                out.push_str(&format!("p{i}([_|Xs]) :- p{next}(Xs).\np{i}([]).\n"));
            } else {
                out.push_str(&format!("p{i}(Xs) :- p{next}(Xs).\np{i}([]).\n"));
            }
        }
        out
    }

    #[test]
    fn cycles_with_consumption_are_proved() {
        let mut r = Rng64::new(0xC1C);
        for _ in 0..24 {
            let k = r.range_usize(2, 5);
            let seed = r.next_u64();
            // At least one consuming edge, placed pseudo-randomly.
            let mut consuming = vec![false; k];
            consuming[(seed as usize) % k] = true;
            if k > 2 && seed.is_multiple_of(3) {
                consuming[(seed as usize / 7) % k] = true;
            }
            let src = cycle_program(k, &consuming);
            assert_eq!(
                verdict_p0(&src),
                Verdict::Terminates,
                "cycle with a consuming edge must be proved:\n{src}"
            );
            // And the proof certifies.
            let program = parse_program(&src).unwrap();
            let report = analyze(
                &program,
                &PredKey::new("p0", 1),
                Adornment::parse("b").unwrap(),
                &AnalysisOptions::default(),
            );
            argus_core::verify_report(&report, argus_logic::Norm::StructuralSize)
                .unwrap_or_else(|e| panic!("certificate rejected: {e}\n{src}"));
        }
    }

    #[test]
    fn cycles_without_consumption_are_rejected() {
        for k in 2usize..6 {
            let consuming = vec![false; k];
            let src = cycle_program(k, &consuming);
            let v = verdict_p0(&src);
            assert_ne!(v, Verdict::Terminates, "{src}");
            // Pure pass-through cycles are exactly the zero-weight-cycle
            // case of §6.1 step 3.
            assert_eq!(v, Verdict::ZeroWeightCycle, "{src}");
        }
    }
}
