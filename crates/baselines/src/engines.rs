//! [`Engine`] implementations and the standard registry.
//!
//! `argus-core` defines the [`Engine`] contract and the racing portfolio
//! runner; this module supplies the concrete engines — the θ-method, the
//! size-change engine from `argus-sct`, and the three baseline methods —
//! plus the priority-ordered registry the CLI, server, and fuzzer share.
//!
//! Portfolio priority order is [`ENGINE_IDS`]: the θ-method first (it is
//! the paper's method and its reports carry the richest evidence,
//! including zero-weight-cycle refutations), then size-change, then the
//! baselines strongest-first. The portfolio *winner* is the
//! lowest-priority proving engine, so this order also fixes which engine
//! gets attributed in reports.

use crate::{BrodskySagivBinary, NaishSubset, TerminationMethod, UvgSingleArgument};
use argus_core::engine::{Engine, EngineCtx, EngineRun, EngineVerdict};
use argus_core::{analyze_with_caches, SccOutcome, Verdict};
use argus_logic::modes::Adornment;
use argus_logic::{PredKey, Program};

/// Engine ids in portfolio priority order.
pub const ENGINE_IDS: [&str; 5] = ["theta", "sct", "bs", "uvg", "naish"];

/// The paper's θ-method as an [`Engine`].
pub struct ThetaEngine;

impl Engine for ThetaEngine {
    fn id(&self) -> &'static str {
        "theta"
    }

    fn name(&self) -> &'static str {
        "Sohn-Van Gelder theta-method"
    }

    fn run(
        &self,
        program: &Program,
        query: &PredKey,
        adornment: &Adornment,
        ctx: &EngineCtx<'_>,
    ) -> EngineRun {
        if ctx.cancelled() {
            return EngineRun::cancelled();
        }
        let report =
            analyze_with_caches(program, query, adornment.clone(), ctx.options, None, ctx.scc_memo);
        let verdict = match report.verdict {
            Verdict::Terminates => EngineVerdict::Proved,
            Verdict::Unknown => EngineVerdict::Unknown,
            Verdict::ZeroWeightCycle => EngineVerdict::ZeroWeightCycle,
        };
        let recursive =
            report.sccs.iter().filter(|s| !matches!(s.outcome, SccOutcome::NonRecursive)).count()
                as u64;
        let detail = match report.verdict {
            Verdict::Terminates => format!("theta witness over {recursive} recursive SCC(s)"),
            Verdict::ZeroWeightCycle => {
                "zero-weight cycle (strong nontermination evidence)".to_string()
            }
            Verdict::Unknown => match report.sccs.iter().find_map(|s| s.blame.as_ref()) {
                Some(b) => b.describe(),
                None => "no linear decrease found".to_string(),
            },
        };
        let mut fm_rows_in = 0u64;
        let mut projections = 0u64;
        let mut pairs = 0u64;
        for s in &report.sccs {
            fm_rows_in += s.stats.fm.rows_in;
            projections += s.stats.projections;
            pairs += s.pair_count as u64;
        }
        EngineRun {
            verdict,
            detail,
            stats: vec![
                ("sccs", report.sccs.len() as u64),
                ("recursive_sccs", recursive),
                ("pairs", pairs),
                ("projections", projections),
                ("fm_rows_in", fm_rows_in),
                ("cache_requests", report.run_stats.cache_requests),
            ],
        }
    }
}

/// The size-change termination engine (`argus-sct`) as an [`Engine`].
pub struct SctEngine;

impl Engine for SctEngine {
    fn id(&self) -> &'static str {
        "sct"
    }

    fn name(&self) -> &'static str {
        "size-change termination"
    }

    fn run(
        &self,
        program: &Program,
        query: &PredKey,
        adornment: &Adornment,
        ctx: &EngineCtx<'_>,
    ) -> EngineRun {
        if ctx.cancelled() {
            return EngineRun::cancelled();
        }
        let report =
            argus_sct::analyze_sct(program, query, adornment.clone(), ctx.options, ctx.cancel);
        let verdict = if report.cancelled {
            EngineVerdict::Cancelled
        } else if report.proved {
            EngineVerdict::Proved
        } else {
            EngineVerdict::Unknown
        };
        EngineRun { verdict, detail: report.detail(), stats: report.stats.counters() }
    }
}

/// A baseline [`TerminationMethod`] lifted to the [`Engine`] contract.
struct MethodEngine<M: TerminationMethod + Send + Sync> {
    id: &'static str,
    name: &'static str,
    method: M,
}

impl<M: TerminationMethod + Send + Sync> Engine for MethodEngine<M> {
    fn id(&self) -> &'static str {
        self.id
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn run(
        &self,
        program: &Program,
        query: &PredKey,
        adornment: &Adornment,
        ctx: &EngineCtx<'_>,
    ) -> EngineRun {
        if ctx.cancelled() {
            return EngineRun::cancelled();
        }
        let r = self.method.prove(program, query, adornment);
        EngineRun {
            verdict: if r.proved { EngineVerdict::Proved } else { EngineVerdict::Unknown },
            detail: r.detail,
            stats: Vec::new(),
        }
    }
}

/// Build the engine with the given id.
pub fn engine_by_id(id: &str) -> Option<Box<dyn Engine>> {
    match id {
        "theta" => Some(Box::new(ThetaEngine)),
        "sct" => Some(Box::new(SctEngine)),
        "bs" => Some(Box::new(MethodEngine {
            id: "bs",
            name: "Brodsky-Sagiv binary orders",
            method: BrodskySagivBinary,
        })),
        "uvg" => Some(Box::new(MethodEngine {
            id: "uvg",
            name: "Ullman-Van Gelder single argument",
            method: UvgSingleArgument,
        })),
        "naish" => Some(Box::new(MethodEngine {
            id: "naish",
            name: "Naish/Sagiv-Ullman subset",
            method: NaishSubset,
        })),
        _ => None,
    }
}

/// Every engine, in portfolio priority order.
pub fn standard_engines() -> Vec<Box<dyn Engine>> {
    ENGINE_IDS.iter().map(|id| engine_by_id(id).expect("registered engine")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_core::engine::run_portfolio;
    use argus_core::AnalysisOptions;

    const APPEND: &str = "append([], Ys, Ys).\n\
                          append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).";

    #[test]
    fn registry_round_trips() {
        for id in ENGINE_IDS {
            assert_eq!(engine_by_id(id).unwrap().id(), id);
        }
        assert!(engine_by_id("nope").is_none());
    }

    #[test]
    fn portfolio_attributes_theta_on_append() {
        let program = argus_logic::parser::parse_program(APPEND).unwrap();
        let report = run_portfolio(
            &standard_engines(),
            &program,
            &PredKey::new("append", 3),
            &Adornment::parse("bff").unwrap(),
            &AnalysisOptions::default(),
            1,
            true,
        );
        assert_eq!(report.verdict, Verdict::Terminates);
        assert_eq!(report.winner_id(), Some("theta"));
        // Everything after the winner reports cancelled, regardless of
        // scheduling.
        for e in &report.entries[1..] {
            assert_eq!(e.run.verdict, EngineVerdict::Cancelled);
        }
    }

    #[test]
    fn portfolio_race_matches_unraced_verdict() {
        let program = argus_logic::parser::parse_program("loop(X) :- loop(X).").unwrap();
        let q = PredKey::new("loop", 1);
        let a = Adornment::parse("b").unwrap();
        let opts = AnalysisOptions::default();
        let raced = run_portfolio(&standard_engines(), &program, &q, &a, &opts, 0, true);
        let unraced = run_portfolio(&standard_engines(), &program, &q, &a, &opts, 0, false);
        assert_eq!(raced.verdict, unraced.verdict);
        assert_eq!(raced.winner, None);
    }
}
