#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, tests.
#
# Usage: ./ci.sh [--offline]
#
# --offline skips dependency resolution against the network (useful in
# sandboxed environments with a primed cargo cache).
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
    CARGO_FLAGS+=(--offline)
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets "${CARGO_FLAGS[@]}" -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace "${CARGO_FLAGS[@]}"

echo "==> cargo test"
cargo test --workspace --release -q "${CARGO_FLAGS[@]}"

echo "==> OK"
