//! # argus-linear — exact linear arithmetic for termination analysis
//!
//! The linear-programming substrate of the `argus` workspace, which
//! reproduces *Sohn & Van Gelder, “Termination Detection in Logic Programs
//! using Argument Sizes” (PODS 1991)*. Everything the paper's method needs
//! from linear algebra lives here:
//!
//! * [`BigInt`] / [`Rat`] — arbitrary-precision integers and exact
//!   rationals. Fourier–Motzkin and simplex pivots multiply coefficients,
//!   so fixed-width arithmetic would silently overflow; exactness is a
//!   soundness requirement, not an optimization.
//! * [`LinExpr`], [`Constraint`], [`ConstraintSystem`] — sparse linear
//!   expressions and `≤ / =` constraint conjunctions.
//! * [`fm`] — Fourier–Motzkin elimination, the technique the paper uses to
//!   reduce its dual system (Eq. 8) to constraints on the θ vectors (Eq. 9).
//! * [`simplex`] — a two-phase exact primal simplex (Bland's rule) used to
//!   decide feasibility of the final θ system, and for implication tests.
//! * [`Poly`] — closed convex polyhedra (meet, project, hull, widening),
//!   the abstract domain behind inter-argument size-relation inference.
//! * [`farkas`] — Farkas refutation certificates from provenance-tracking
//!   elimination, so infeasibility claims are independently checkable.
//!
//! ```
//! use argus_linear::{Constraint, ConstraintSystem, LinExpr, Rat};
//! use argus_linear::simplex::feasible_point;
//! use std::collections::BTreeSet;
//!
//! // The final constraint of the paper's Example 4.1: 2θ ≥ 1, θ ≥ 0.
//! let theta = 0;
//! let mut sys = ConstraintSystem::new();
//! sys.push(Constraint::ge(
//!     LinExpr::term(theta, Rat::from_int(2)),
//!     LinExpr::constant(Rat::one()),
//! ));
//! let nonneg: BTreeSet<_> = [theta].into_iter().collect();
//! let witness = feasible_point(&sys, &nonneg).expect("terminates");
//! assert_eq!(witness[&theta], Rat::new(1.into(), 2.into()));
//! ```

#![warn(missing_docs)]

pub mod bigint;
pub mod canon;
pub mod expr;
pub mod farkas;
pub mod fm;
pub mod poly;
pub mod rat;
pub mod simplex;

pub use bigint::{BigInt, Sign};
pub use canon::IntRow;
pub use expr::{Constraint, ConstraintSystem, LinExpr, Rel, Var, VarPool};
pub use farkas::{refute, FarkasCertificate};
pub use fm::{FmBlowup, FmConfig, FmResult, FmStats, FmTier};
pub use poly::Poly;
pub use rat::Rat;
pub use simplex::{LpOutcome, LpProblem};
