//! E2 — Example 5.1: merge with two bound arguments.
//!
//! Reproduces: the combined constraint system reduces to `θ1 = θ2 ≥ 1/2`
//! ("the sum of two bound arguments always decreases in every recursive
//! call"), and the per-rule shapes a = (2,2), b = (2,0), c empty.

use argus_bench::ExperimentLog;
use argus_core::pairs::build_pair;
use argus_core::{analyze, AnalysisOptions, SccOutcome, Verdict};
use argus_linear::Rat;
use argus_logic::modes::infer_modes;
use argus_logic::PredKey;
use argus_sizerel::{infer_size_relations, InferOptions};

fn main() {
    let entry = argus_corpus::find("merge").expect("corpus");
    let program = entry.program().expect("parse");
    let (query, adornment) = entry.query_key();

    let mut log = ExperimentLog::new(
        "E2",
        "merge/3 with first two arguments bound",
        "Example 5.1",
        &["quantity", "paper", "measured"],
    );

    // Eq.(1) shapes for the third rule.
    let modes = infer_modes(&program, &query, adornment.clone());
    let rels = infer_size_relations(&program, &InferOptions::default());
    let pair = build_pair(&program.rules[2], 2, 1, &modes, &rels);
    log.row(&[
        "a (head constants)".into(),
        "(2, 2)".into(),
        format!("({}, {})", pair.x_rows[0].constant_term(), pair.x_rows[1].constant_term()),
    ]);
    log.row(&[
        "b (subgoal constants)".into(),
        "(2, 0)".into(),
        format!("({}, {})", pair.y_rows[0].constant_term(), pair.y_rows[1].constant_term()),
    ]);
    log.row(&[
        "c / C (from X =< Y)".into(),
        "empty".into(),
        if pair.c_rows.is_empty() { "empty".into() } else { format!("{} rows", pair.c_rows.len()) },
    ]);

    // Full analysis and witness.
    let report = analyze(&program, &query, adornment, &AnalysisOptions::default());
    log.row(&["verdict".into(), "terminates".into(), format!("{:?}", report.verdict)]);
    if let Some(scc) = report.scc_of(&query) {
        if let SccOutcome::Proved { witness, .. } = &scc.outcome {
            let w = &witness[&query];
            log.row(&[
                "witness (θ1, θ2)".into(),
                "θ1 = θ2 ≥ 1/2".into(),
                format!("({}, {})", w[0], w[1]),
            ]);
            assert_eq!(w[0], w[1], "θ1 = θ2");
            assert!(&w[0] + &w[1] >= Rat::one(), "θ1 + θ2 ≥ 1");
        }
        for c in scc.render_constraints() {
            log.row(&["reduced θ constraint".into(), "θ1 = θ2 ≥ 1/2".into(), c]);
        }
    }
    log.note(
        "Neither bound argument decreases by itself (the rules swap them); \
         the solved combination makes their SUM decrease — the paper's point.",
    );
    assert_eq!(report.verdict, Verdict::Terminates, "E2 regression");
    let _ = PredKey::new("merge", 3);
    log.emit();
}
