//! Linear expressions and constraint systems over exact rationals.
//!
//! Variables are plain `usize` indices; the caller owns their meaning (a
//! [`crate::VarPool`] helps with naming). A [`LinExpr`] is a sparse linear
//! polynomial `c + Σ aᵢ·xᵢ`. A [`Constraint`] states `expr ≤ 0` or
//! `expr = 0`; `≥` is represented by negating the expression. Only non-strict
//! relations are needed: the paper's decrease conditions are of the form
//! `θᵀx ≥ θᵀy + δ`, never strict.

use crate::rat::Rat;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A variable index.
pub type Var = usize;

/// A sparse linear expression `constant + Σ coeff(v)·v` with exact rational
/// coefficients.
///
/// Terms are a sorted, zero-free `Vec<(Var, Rat)>` — the analysis
/// manipulates many short rows (a handful of argument-size variables
/// each), where a flat sorted vector beats a `BTreeMap` on every
/// operation: lookups are a binary search over one contiguous allocation,
/// and the add/scale workhorses are linear merges. The representation is
/// canonical (sorted, no zero coefficients), so derived equality and
/// hashing remain structural.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    terms: Vec<(Var, Rat)>,
    constant: Rat,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: Rat) -> LinExpr {
        LinExpr { terms: Vec::new(), constant: c }
    }

    /// The expression `1·v`.
    pub fn var(v: Var) -> LinExpr {
        LinExpr::term(v, Rat::one())
    }

    /// The expression `coeff·v`.
    pub fn term(v: Var, coeff: Rat) -> LinExpr {
        let mut terms = Vec::new();
        if !coeff.is_zero() {
            terms.push((v, coeff));
        }
        LinExpr { terms, constant: Rat::zero() }
    }

    /// Build from `(var, coeff)` pairs and a constant, merging duplicates.
    pub fn from_terms(terms: impl IntoIterator<Item = (Var, Rat)>, constant: Rat) -> LinExpr {
        let mut e = LinExpr::constant(constant);
        for (v, c) in terms {
            e.add_term(v, c);
        }
        e
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Rat {
        &self.constant
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: Var) -> Rat {
        self.coeff_ref(v).cloned().unwrap_or_else(Rat::zero)
    }

    /// Coefficient of `v` without materializing zero (`None` if absent).
    pub fn coeff_ref(&self, v: Var) -> Option<&Rat> {
        self.terms.binary_search_by_key(&v, |(w, _)| *w).ok().map(|i| &self.terms[i].1)
    }

    /// Iterate over `(var, coeff)` pairs with nonzero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (Var, &Rat)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, c))
    }

    /// The set of variables with nonzero coefficients.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().map(|(v, _)| *v)
    }

    /// True iff there are no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// True iff identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// Add `coeff·v` in place.
    pub fn add_term(&mut self, v: Var, coeff: Rat) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.binary_search_by_key(&v, |(w, _)| *w) {
            Ok(i) => {
                self.terms[i].1 += &coeff;
                if self.terms[i].1.is_zero() {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (v, coeff)),
        }
    }

    /// Add a constant in place.
    pub fn add_constant(&mut self, c: &Rat) {
        self.constant += c;
    }

    /// Scale by a rational in place.
    pub fn scale(&mut self, k: &Rat) {
        if k.is_zero() {
            self.terms.clear();
            self.constant = Rat::zero();
            return;
        }
        for (_, c) in self.terms.iter_mut() {
            *c *= k;
        }
        self.constant *= k;
    }

    /// `self += k·other` in place — the pivot/eliminate workhorse. A
    /// single linear merge of the two sorted term lists (no per-term
    /// binary search or shifting); existing coefficients move, they are
    /// not cloned.
    pub fn add_scaled_assign(&mut self, other: &LinExpr, k: &Rat) {
        if k.is_zero() {
            return;
        }
        if other.terms.is_empty() {
            self.constant += &(&other.constant * k);
            return;
        }
        let old = std::mem::take(&mut self.terms);
        let mut merged: Vec<(Var, Rat)> = Vec::with_capacity(old.len() + other.terms.len());
        let mut a = old.into_iter();
        let mut b = other.terms.iter();
        let (mut na, mut nb) = (a.next(), b.next());
        loop {
            let ka = na.as_ref().map(|t| t.0);
            let kb = nb.map(|t| t.0);
            match (ka, kb) {
                (Some(va), Some(vb)) if va == vb => {
                    let (v, mut ca) = na.take().expect("peeked");
                    let (_, cb) = nb.take().expect("peeked");
                    ca += &(cb * k);
                    if !ca.is_zero() {
                        merged.push((v, ca));
                    }
                    na = a.next();
                    nb = b.next();
                }
                (Some(va), Some(vb)) if va < vb => {
                    merged.push(na.take().expect("peeked"));
                    na = a.next();
                }
                (Some(_), Some(_)) | (None, Some(_)) => {
                    let (v, cb) = nb.take().expect("peeked");
                    merged.push((*v, cb * k));
                    nb = b.next();
                }
                (Some(_), None) => {
                    merged.push(na.take().expect("peeked"));
                    na = a.next();
                }
                (None, None) => break,
            }
        }
        self.terms = merged;
        self.constant += &(&other.constant * k);
    }

    /// `self + k·other`.
    pub fn add_scaled(&self, other: &LinExpr, k: &Rat) -> LinExpr {
        let mut out = self.clone();
        out.add_scaled_assign(other, k);
        out
    }

    /// Substitute variable `v` by expression `repl`.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> LinExpr {
        match self.terms.binary_search_by_key(&v, |(w, _)| *w) {
            Err(_) => self.clone(),
            Ok(i) => {
                let mut out = self.clone();
                let (_, c) = out.terms.remove(i);
                out.add_scaled_assign(repl, &c);
                out
            }
        }
    }

    /// Rename variables through `map`; variables not in the map are kept.
    pub fn rename(&self, map: &BTreeMap<Var, Var>) -> LinExpr {
        let mut out = LinExpr::constant(self.constant.clone());
        for (v, c) in self.terms() {
            out.add_term(map.get(&v).copied().unwrap_or(v), c.clone());
        }
        out
    }

    /// Evaluate at a point given as a map from variable to value; missing
    /// variables evaluate as zero.
    pub fn eval(&self, point: &BTreeMap<Var, Rat>) -> Rat {
        let mut acc = self.constant.clone();
        for (v, c) in self.terms() {
            if let Some(val) = point.get(&v) {
                acc += &(c * val);
            }
        }
        acc
    }

    /// Scale so all coefficients and the constant are coprime integers with
    /// a positive leading (lowest-index) coefficient when one exists. Purely
    /// cosmetic/canonicalizing: represents the same hyperplane or halfspace
    /// direction up to positive scaling.
    pub fn normalized_direction(&self) -> LinExpr {
        if self.terms.is_empty() {
            // Preserve only the sign of the constant.
            use crate::bigint::Sign;
            return match self.constant.sign() {
                Sign::Zero => LinExpr::zero(),
                Sign::Positive => LinExpr::constant(Rat::one()),
                Sign::Negative => LinExpr::constant(-Rat::one()),
            };
        }
        // Common denominator, then gcd of numerators.
        let mut scaled = self.clone();
        let mut lcm = self.constant.denom().clone();
        for (_, c) in self.terms() {
            lcm = lcm.lcm(c.denom());
        }
        scaled.scale(&Rat::from(lcm));
        let mut g = scaled.constant.numer().abs();
        for (_, c) in scaled.terms() {
            g = g.gcd(c.numer());
        }
        if !g.is_zero() && !g.is_one() {
            scaled.scale(&Rat::new(1.into(), g));
        }
        scaled
    }
}

impl Neg for &LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        let mut out = self.clone();
        out.scale(&-Rat::one());
        out
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        self.scale(&-Rat::one());
        self
    }
}

impl Add for &LinExpr {
    type Output = LinExpr;
    fn add(self, other: &LinExpr) -> LinExpr {
        self.add_scaled(other, &Rat::one())
    }
}

impl Sub for &LinExpr {
    type Output = LinExpr;
    fn sub(self, other: &LinExpr) -> LinExpr {
        self.add_scaled(other, &-Rat::one())
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, other: LinExpr) -> LinExpr {
        self.add_scaled_assign(&other, &Rat::one());
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, other: LinExpr) -> LinExpr {
        self.add_scaled_assign(&other, &-Rat::one());
        self
    }
}

impl Mul<&Rat> for &LinExpr {
    type Output = LinExpr;
    fn mul(self, k: &Rat) -> LinExpr {
        let mut out = self.clone();
        out.scale(k);
        out
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.terms() {
            if first {
                if c == &Rat::one() {
                    write!(f, "x{v}")?;
                } else if c == &-Rat::one() {
                    write!(f, "-x{v}")?;
                } else {
                    write!(f, "{c}*x{v}")?;
                }
                first = false;
            } else if c.is_negative() {
                let a = c.abs();
                if a == Rat::one() {
                    write!(f, " - x{v}")?;
                } else {
                    write!(f, " - {a}*x{v}")?;
                }
            } else if c == &Rat::one() {
                write!(f, " + x{v}")?;
            } else {
                write!(f, " + {c}*x{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.is_positive() {
            write!(f, " + {}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", self.constant.abs())?;
        }
        Ok(())
    }
}

/// The relation of a [`Constraint`]: `expr ≤ 0` or `expr = 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rel {
    /// `expr ≤ 0`.
    Le,
    /// `expr = 0`.
    Eq,
}

/// A linear constraint `expr REL 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Left-hand side; the relation compares it to zero.
    pub expr: LinExpr,
    /// The relation.
    pub rel: Rel,
}

impl Constraint {
    /// `lhs ≤ rhs`.
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint { expr: lhs - rhs, rel: Rel::Le }
    }

    /// `lhs ≥ rhs`.
    pub fn ge(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint { expr: rhs - lhs, rel: Rel::Le }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Constraint {
        Constraint { expr: lhs - rhs, rel: Rel::Eq }
    }

    /// `v ≥ 0`.
    pub fn nonneg(v: Var) -> Constraint {
        Constraint::ge(LinExpr::var(v), LinExpr::zero())
    }

    /// True iff the constraint holds at `point` (missing vars are zero).
    pub fn holds_at(&self, point: &BTreeMap<Var, Rat>) -> bool {
        let v = self.expr.eval(point);
        match self.rel {
            Rel::Le => !v.is_positive(),
            Rel::Eq => v.is_zero(),
        }
    }

    /// If the constraint has no variables, report whether it is true.
    pub fn constant_truth(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        Some(match self.rel {
            Rel::Le => !self.expr.constant_term().is_positive(),
            Rel::Eq => self.expr.constant_term().is_zero(),
        })
    }

    /// Substitute a variable by an expression.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> Constraint {
        Constraint { expr: self.expr.substitute(v, repl), rel: self.rel }
    }

    /// Rename variables through `map`.
    pub fn rename(&self, map: &BTreeMap<Var, Var>) -> Constraint {
        Constraint { expr: self.expr.rename(map), rel: self.rel }
    }

    /// Canonical form: integer coprime coefficients; for equalities also fix
    /// the sign of the leading coefficient, so `x = y` and `y = x` coincide.
    pub fn canonicalized(&self) -> Constraint {
        let mut expr = self.expr.normalized_direction();
        if self.rel == Rel::Eq {
            let flip = match expr.terms().next() {
                Some((_, c)) => c.is_negative(),
                None => expr.constant_term().is_negative(),
            };
            if flip {
                expr = -expr;
            }
        }
        Constraint { expr, rel: self.rel }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rel {
            Rel::Le => write!(f, "{} <= 0", self.expr),
            Rel::Eq => write!(f, "{} = 0", self.expr),
        }
    }
}

/// A conjunction of linear constraints.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConstraintSystem {
    constraints: Vec<Constraint>,
}

impl ConstraintSystem {
    /// The empty (always-true) system.
    pub fn new() -> ConstraintSystem {
        ConstraintSystem::default()
    }

    /// Build from a vector of constraints.
    pub fn from_constraints(constraints: Vec<Constraint>) -> ConstraintSystem {
        ConstraintSystem { constraints }
    }

    /// Add one constraint.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// Append all constraints of another system.
    pub fn extend(&mut self, other: &ConstraintSystem) {
        self.constraints.extend(other.constraints.iter().cloned());
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True iff there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// All variables mentioned.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        for c in &self.constraints {
            out.extend(c.expr.vars());
        }
        out
    }

    /// True iff every constraint holds at `point`.
    pub fn holds_at(&self, point: &BTreeMap<Var, Rat>) -> bool {
        self.constraints.iter().all(|c| c.holds_at(point))
    }

    /// Substitute a variable everywhere.
    pub fn substitute(&self, v: Var, repl: &LinExpr) -> ConstraintSystem {
        ConstraintSystem {
            constraints: self.constraints.iter().map(|c| c.substitute(v, repl)).collect(),
        }
    }

    /// Rename variables everywhere.
    pub fn rename(&self, map: &BTreeMap<Var, Var>) -> ConstraintSystem {
        ConstraintSystem { constraints: self.constraints.iter().map(|c| c.rename(map)).collect() }
    }

    /// Drop constraints that are trivially true; return `None` if any
    /// constraint is trivially false (the system is unsatisfiable).
    pub fn simplify_trivial(&self) -> Option<ConstraintSystem> {
        let mut out = Vec::with_capacity(self.constraints.len());
        for c in &self.constraints {
            match c.constant_truth() {
                Some(true) => continue,
                Some(false) => return None,
                None => out.push(c.clone()),
            }
        }
        Some(ConstraintSystem { constraints: out })
    }

    /// Canonicalize every row and remove exact duplicates and directly
    /// dominated inequalities (same direction vector, weaker constant).
    pub fn dedup(&self) -> ConstraintSystem {
        // Key: the variable part of the canonical direction + relation.
        // For Le rows with identical variable parts, keep the tightest
        // (largest constant, since expr + const <= 0 means vars <= -const).
        let mut eqs: Vec<Constraint> = Vec::new();
        let mut les: BTreeMap<Vec<(Var, Rat)>, Rat> = BTreeMap::new();
        for c in &self.constraints {
            let canon = c.canonicalized();
            match canon.rel {
                Rel::Eq => {
                    if !eqs.contains(&canon) {
                        eqs.push(canon);
                    }
                }
                Rel::Le => {
                    let key: Vec<(Var, Rat)> =
                        canon.expr.terms().map(|(v, c)| (v, c.clone())).collect();
                    if key.is_empty() {
                        // Constant row: keep only if false-ish; handled by
                        // simplify_trivial, keep as-is to stay faithful.
                        if canon.expr.constant_term().is_positive() {
                            eqs.push(canon); // contradictory row, keep it
                        }
                        continue;
                    }
                    let cst = canon.expr.constant_term().clone();
                    les.entry(key)
                        .and_modify(|old| {
                            if cst > *old {
                                *old = cst.clone();
                            }
                        })
                        .or_insert(cst);
                }
            }
        }
        let mut out = eqs;
        for (key, cst) in les {
            let expr = LinExpr::from_terms(key, cst);
            out.push(Constraint { expr, rel: Rel::Le });
        }
        ConstraintSystem { constraints: out }
    }
}

impl fmt::Display for ConstraintSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// A small helper to allocate fresh variable indices and remember names.
#[derive(Debug, Clone, Default)]
pub struct VarPool {
    names: Vec<String>,
}

impl VarPool {
    /// New, empty pool.
    pub fn new() -> VarPool {
        VarPool::default()
    }

    /// Allocate a fresh variable with the given display name.
    pub fn fresh(&mut self, name: impl Into<String>) -> Var {
        self.names.push(name.into());
        self.names.len() - 1
    }

    /// The name of `v`, if allocated here.
    pub fn name(&self, v: Var) -> Option<&str> {
        self.names.get(v).map(|s| s.as_str())
    }

    /// Number of variables allocated.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no variables allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Render an expression with this pool's variable names.
    pub fn render_expr(&self, e: &LinExpr) -> String {
        let mut s = String::new();
        let mut first = true;
        for (v, c) in e.terms() {
            let name = self.name(v).map(str::to_owned).unwrap_or_else(|| format!("x{v}"));
            if first {
                if c == &Rat::one() {
                    s.push_str(&name);
                } else if c == &-Rat::one() {
                    s.push('-');
                    s.push_str(&name);
                } else {
                    s.push_str(&format!("{c}*{name}"));
                }
                first = false;
            } else if c.is_negative() {
                let a = c.abs();
                if a == Rat::one() {
                    s.push_str(&format!(" - {name}"));
                } else {
                    s.push_str(&format!(" - {a}*{name}"));
                }
            } else if c == &Rat::one() {
                s.push_str(&format!(" + {name}"));
            } else {
                s.push_str(&format!(" + {c}*{name}"));
            }
        }
        let cst = e.constant_term();
        if first {
            s.push_str(&cst.to_string());
        } else if cst.is_positive() {
            s.push_str(&format!(" + {cst}"));
        } else if cst.is_negative() {
            s.push_str(&format!(" - {}", cst.abs()));
        }
        s
    }

    /// Render a constraint in `lhs REL 0` form with names.
    pub fn render_constraint(&self, c: &Constraint) -> String {
        match c.rel {
            Rel::Le => format!("{} <= 0", self.render_expr(&c.expr)),
            Rel::Eq => format!("{} = 0", self.render_expr(&c.expr)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    #[test]
    fn expr_arithmetic() {
        // 2x0 + 3 plus x0 - 1 = 3x0 + 2
        let a = LinExpr::from_terms([(0, r(2, 1))], r(3, 1));
        let b = LinExpr::from_terms([(0, r(1, 1))], r(-1, 1));
        let s = &a + &b;
        assert_eq!(s.coeff(0), r(3, 1));
        assert_eq!(s.constant_term(), &r(2, 1));
    }

    #[test]
    fn cancelling_terms_vanish() {
        let a = LinExpr::var(3);
        let b = -&a;
        assert!((&a + &b).is_zero());
        let mut e = LinExpr::var(1);
        e.add_term(1, -Rat::one());
        assert!(e.is_zero());
        assert_eq!(e.vars().count(), 0);
    }

    #[test]
    fn substitution() {
        // x0 + 2*x1, substitute x1 := x2 - 1 => x0 + 2*x2 - 2
        let e = LinExpr::from_terms([(0, r(1, 1)), (1, r(2, 1))], Rat::zero());
        let repl = LinExpr::from_terms([(2, r(1, 1))], r(-1, 1));
        let out = e.substitute(1, &repl);
        assert_eq!(out.coeff(0), r(1, 1));
        assert_eq!(out.coeff(1), Rat::zero());
        assert_eq!(out.coeff(2), r(2, 1));
        assert_eq!(out.constant_term(), &r(-2, 1));
    }

    #[test]
    fn eval() {
        let e = LinExpr::from_terms([(0, r(1, 2)), (1, r(-1, 1))], r(3, 1));
        let mut p = BTreeMap::new();
        p.insert(0, r(4, 1));
        p.insert(1, r(1, 1));
        assert_eq!(e.eval(&p), r(4, 1));
    }

    #[test]
    fn constraint_truth() {
        let c = Constraint::le(LinExpr::constant(r(1, 1)), LinExpr::constant(r(2, 1)));
        assert_eq!(c.constant_truth(), Some(true));
        let c2 = Constraint::le(LinExpr::constant(r(3, 1)), LinExpr::constant(r(2, 1)));
        assert_eq!(c2.constant_truth(), Some(false));
        let c3 = Constraint::eq(LinExpr::var(0), LinExpr::zero());
        assert_eq!(c3.constant_truth(), None);
    }

    #[test]
    fn holds_at() {
        // x0 - x1 <= 0, i.e. x0 <= x1
        let c = Constraint::le(LinExpr::var(0), LinExpr::var(1));
        let mut p = BTreeMap::new();
        p.insert(0, r(1, 1));
        p.insert(1, r(2, 1));
        assert!(c.holds_at(&p));
        p.insert(0, r(3, 1));
        assert!(!c.holds_at(&p));
    }

    #[test]
    fn normalized_direction_scales_to_coprime_integers() {
        let e = LinExpr::from_terms([(0, r(2, 3)), (1, r(4, 3))], r(2, 1));
        let n = e.normalized_direction();
        assert_eq!(n.coeff(0), r(1, 1));
        assert_eq!(n.coeff(1), r(2, 1));
        assert_eq!(n.constant_term(), &r(3, 1));
    }

    #[test]
    fn dedup_keeps_tightest() {
        // x0 <= 5 and x0 <= 3 collapse to x0 <= 3.
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::le(LinExpr::var(0), LinExpr::constant(r(5, 1))));
        sys.push(Constraint::le(LinExpr::var(0), LinExpr::constant(r(3, 1))));
        let d = sys.dedup();
        assert_eq!(d.len(), 1);
        let c = &d.constraints()[0];
        // x0 - 3 <= 0
        assert_eq!(c.expr.coeff(0), r(1, 1));
        assert_eq!(c.expr.constant_term(), &r(-3, 1));
    }

    #[test]
    fn dedup_merges_equalities_both_orientations() {
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(LinExpr::var(0), LinExpr::var(1)));
        sys.push(Constraint::eq(LinExpr::var(1), LinExpr::var(0)));
        assert_eq!(sys.dedup().len(), 1);
    }

    #[test]
    fn simplify_trivial_detects_contradiction() {
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(LinExpr::constant(r(1, 1)), LinExpr::zero()));
        assert!(sys.simplify_trivial().is_none());
        let mut ok = ConstraintSystem::new();
        ok.push(Constraint::le(LinExpr::zero(), LinExpr::constant(r(1, 1))));
        assert_eq!(ok.simplify_trivial().unwrap().len(), 0);
    }

    #[test]
    fn var_pool_rendering() {
        let mut pool = VarPool::new();
        let x = pool.fresh("theta1");
        let y = pool.fresh("theta2");
        let e = LinExpr::from_terms([(x, r(2, 1)), (y, r(-1, 1))], r(1, 2));
        assert_eq!(pool.render_expr(&e), "2*theta1 - theta2 + 1/2");
    }

    #[test]
    fn display_expr() {
        let e = LinExpr::from_terms([(0, r(1, 1)), (1, r(-2, 1))], r(-3, 1));
        assert_eq!(e.to_string(), "x0 - 2*x1 - 3");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }
}
