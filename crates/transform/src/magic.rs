//! The magic-sets transformation.
//!
//! The capture-rule story (paper §1) sends a query bottom-up when top-down
//! termination cannot be proved — but naive saturation computes the
//! *whole* least model, ignoring the query's bindings. Magic sets is the
//! classical fix from the deductive-database literature (Bancilhon,
//! Maier, Sagiv, Ullman): rewrite the (adorned) program so that bottom-up
//! evaluation is driven by a "magic" predicate per (predicate, adornment)
//! that holds exactly the bound-argument tuples top-down evaluation would
//! ask about. Saturating the rewritten program touches only the facts
//! relevant to the query, combining bottom-up's termination behaviour
//! with top-down's goal-directedness.
//!
//! Construction, for an adorned rule `p(t̄) :- B₁, …, Bₙ` where `p` has
//! adornment `a`:
//!
//! * **guarded rule**: `p(t̄) :- magic_p(t̄↓a), B₁, …, Bₙ` where `t̄↓a`
//!   keeps the bound positions of `a`;
//! * **magic rules**: for each IDB subgoal `Bᵢ = q(s̄)` with adornment
//!   `b`: `magic_q(s̄↓b) :- magic_p(t̄↓a), B₁, …, Bᵢ₋₁`;
//! * **seed**: the query goal's bound arguments as a `magic_query` fact.
//!
//! Negative subgoals are carried in guarded rule bodies but do not
//! generate magic rules (their evaluation needs ground arguments, which
//! the preceding magic-guarded goals provide in well-moded programs).

use argus_logic::modes::{is_builtin, Adornment, ModeMap};
use argus_logic::program::{Atom, Literal, PredKey, Program, Rule};
use argus_logic::span::SpanSlot;

/// Result of the magic-sets rewriting.
#[derive(Debug, Clone)]
pub struct MagicProgram {
    /// The rewritten rules (guarded originals + magic rules + seed).
    pub program: Program,
    /// The magic predicate of the query, whose seed fact drives
    /// evaluation.
    pub seed: PredKey,
}

fn magic_name(pred: &PredKey) -> argus_logic::Sym {
    argus_logic::Sym::new(format!("magic__{}", pred.name))
}

/// Project an atom's arguments onto the bound positions of `adornment`.
fn bound_args(atom: &Atom, adornment: &Adornment) -> Vec<argus_logic::Term> {
    adornment.bound_positions().into_iter().map(|i| atom.args[i].clone()).collect()
}

/// Rewrite an **adorned** program (each predicate has the single adornment
/// recorded in `modes`) for the given ground query atom.
///
/// `query` must be an atom of a predicate present in `modes`, with its
/// bound arguments instantiated (they become the magic seed).
pub fn magic_rewrite(program: &Program, modes: &ModeMap, query: &Atom) -> MagicProgram {
    let idb = program.idb_predicates();
    let mut out: Vec<Rule> = Vec::new();

    for rule in &program.rules {
        let head_key = rule.head.key();
        let Some(head_adornment) = modes.get(&head_key) else {
            // Predicate without an adornment entry (unreachable from the
            // query): keep the rule unguarded; it cannot fire without its
            // magic seed anyway, and dropping it entirely would change the
            // program for other entry points.
            out.push(rule.clone());
            continue;
        };

        // Guarded original rule.
        let magic_head = Atom {
            name: magic_name(&head_key),
            args: bound_args(&rule.head, head_adornment),
            span: SpanSlot::none(),
        };
        let mut guarded = Vec::with_capacity(rule.body.len() + 1);
        guarded.push(Literal::pos(magic_head.clone()));
        guarded.extend(rule.body.iter().cloned());
        out.push(Rule { head: rule.head.clone(), body: guarded, span: rule.span });

        // Magic rules for IDB subgoals.
        for (i, lit) in rule.body.iter().enumerate() {
            if !lit.positive {
                continue;
            }
            let key = lit.atom.key();
            if is_builtin(&key) || !idb.contains(&key) {
                continue;
            }
            // A subgoal with no bound arguments still gets a (0-ary)
            // magic predicate so its guarded rules can fire.
            let Some(sub_adornment) = modes.get(&key) else { continue };
            let magic_sub = Atom {
                name: magic_name(&key),
                args: bound_args(&lit.atom, sub_adornment),
                span: SpanSlot::none(),
            };
            let mut body = Vec::with_capacity(i + 1);
            body.push(Literal::pos(magic_head.clone()));
            body.extend(rule.body[..i].iter().cloned());
            out.push(Rule { head: magic_sub, body, span: rule.span });
        }
    }

    // Seed fact.
    let query_key = query.key();
    let adornment =
        modes.get(&query_key).cloned().unwrap_or_else(|| Adornment::all_free(query_key.arity));
    let seed_atom = Atom {
        name: magic_name(&query_key),
        args: bound_args(query, &adornment),
        span: SpanSlot::none(),
    };
    let seed_key = seed_atom.key();
    out.push(Rule::fact(seed_atom));

    MagicProgram { program: Program::from_rules(out), seed: seed_key }
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_interp::bottomup::{saturate, BottomUpOptions, Saturation};
    use argus_interp::sld::{solve, InterpOptions};
    use argus_logic::adorn_program;
    use argus_logic::parser::{parse_program, parse_query};

    /// Rewrite helper: adorn for the query mode, then magic-rewrite for
    /// the concrete goal.
    fn magic(src: &str, query_goal: &str, adn: &str) -> (MagicProgram, Atom) {
        let program = parse_program(src).unwrap();
        let goal = parse_query(query_goal).unwrap().remove(0).atom;
        let adorned = adorn_program(&program, &goal.key(), Adornment::parse(adn).unwrap());
        // The goal predicate may have been renamed by adornment; the
        // corpus-style single-adornment cases keep their names.
        let goal = Atom { name: adorned.query.name, args: goal.args, span: SpanSlot::none() };
        let rewritten = magic_rewrite(&adorned.program, &adorned.modes, &goal);
        (rewritten, goal)
    }

    #[test]
    fn goal_directed_saturation_is_smaller() {
        // Reachability from `a` on a chain: full saturation derives all
        // n² paths; magic saturation only those from `a`.
        let src = "edge(a, b).\nedge(b, c).\nedge(c, d).\nedge(d, e).\n\
                   path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- edge(X, Y), path(Y, Z).";
        let program = parse_program(src).unwrap();
        let full = match saturate(&program, &BottomUpOptions::default()) {
            Saturation::Fixpoint { facts, .. } => {
                facts.iter().filter(|f| &*f.name == "path").count()
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(full, 10, "4+3+2+1 paths");

        let (magic_prog, _) = magic(src, "path(c, Y)", "bf");
        match saturate(&magic_prog.program, &BottomUpOptions::default()) {
            Saturation::Fixpoint { facts, .. } => {
                let paths = facts.iter().filter(|f| &*f.name == "path").count();
                // Reachable call patterns are {c, d, e}; their paths are
                // c->d, c->e, d->e — 3 of the 10 in the full model.
                assert_eq!(paths, 3, "goal-directed: 3 of 10 paths");
                // Magic facts mark exactly the reachable call patterns
                // (edge, being IDB-with-facts, gets its own magic set).
                let magic_paths = facts.iter().filter(|f| &*f.name == "magic__path").count();
                assert_eq!(magic_paths, 3, "magic__path(c), (d), (e)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn magic_answers_match_sld_on_terminating_queries() {
        let src = "edge(a, b).\nedge(b, c).\nedge(c, d).\n\
                   path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- edge(X, Y), path(Y, Z).";
        let program = parse_program(src).unwrap();
        let goals = parse_query("path(b, Y)").unwrap();
        let sld = solve(&program, &goals, &InterpOptions::default());
        let mut sld_answers: Vec<String> = match sld {
            argus_interp::Outcome::Completed { solutions, .. } => {
                solutions.iter().map(|s| s["Y"].to_string()).collect()
            }
            other => panic!("{other:?}"),
        };
        sld_answers.sort();

        let (magic_prog, goal) = magic(src, "path(b, Y)", "bf");
        let mut magic_answers: Vec<String> =
            match saturate(&magic_prog.program, &BottomUpOptions::default()) {
                Saturation::Fixpoint { facts, .. } => facts
                    .iter()
                    .filter(|f| f.name == goal.name)
                    .filter(|f| f.args[0] == goal.args[0])
                    .map(|f| f.args[1].to_string())
                    .collect(),
                other => panic!("{other:?}"),
            };
        magic_answers.sort();
        assert_eq!(sld_answers, magic_answers);
    }

    #[test]
    fn magic_terminates_where_sld_loops() {
        // Cyclic graph: SLD loops on path(a, Y); magic saturation
        // converges AND stays goal-directed.
        let src = "edge(a, b).\nedge(b, a).\nedge(c, d).\n\
                   path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- edge(X, Y), path(Y, Z).";
        let program = parse_program(src).unwrap();
        let goals = parse_query("path(a, Y)").unwrap();
        let sld = solve(
            &program,
            &goals,
            &InterpOptions { max_steps: 20_000, ..InterpOptions::default() },
        );
        assert!(!sld.terminated(), "SLD loops on the cycle");

        let (magic_prog, _) = magic(src, "path(a, Y)", "bf");
        match saturate(&magic_prog.program, &BottomUpOptions::default()) {
            Saturation::Fixpoint { facts, .. } => {
                let mut answers: Vec<String> = facts
                    .iter()
                    .filter(|f| &*f.name == "path")
                    .filter(|f| f.args[0].to_string() == "a")
                    .map(|f| f.args[1].to_string())
                    .collect();
                answers.sort();
                assert_eq!(answers, ["a", "b"], "a reaches a and b, not c/d");
                // Goal-directedness: the c-d component is never touched.
                assert!(facts
                    .iter()
                    .filter(|f| &*f.name == "path")
                    .all(|f| f.args[0].to_string() != "c"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn seed_key_is_reported() {
        let src = "p(a).\np(X) :- q(X).\nq(b).";
        let (magic_prog, _) = magic(src, "p(a)", "b");
        assert_eq!(&*magic_prog.seed.name, "magic__p");
        assert_eq!(magic_prog.seed.arity, 1);
        // The seed fact is present.
        assert!(magic_prog
            .program
            .rules
            .iter()
            .any(|r| r.body.is_empty() && r.head.key() == magic_prog.seed));
    }
}
