//! The bench workloads as plain functions.
//!
//! Each suite mirrors one of the `benches/bench_*.rs` entry points; both
//! those binaries and `bench_report` call into here so the measured
//! workload cannot drift between `cargo bench` and the committed
//! `BENCH_argus.json`.

use crate::timing::{bench_case, Sample};
use crate::workload;
use argus_core::{analyze, AnalysisOptions, DeltaMode};
use argus_linear::{fm, simplex, ConstraintSystem, FmTier};
use std::collections::BTreeSet;
use std::hint::black_box;

/// Workload scale: `Smoke` keeps every case in the few-millisecond range
/// so CI can afford to run the whole report; `Full` matches the historical
/// criterion sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: small systems, few iterations.
    Smoke,
    /// Full benchmark sizes.
    Full,
}

impl Scale {
    fn iters(self) -> u32 {
        match self {
            Scale::Smoke => 3,
            Scale::Full => 10,
        }
    }
}

/// FM satisfiability with a generous row cap: on dense random systems FM's
/// intermediate row count grows doubly exponentially, so past ~6 variables
/// a cap is needed to keep the bench finite at all — which is itself the
/// measured result (simplex keeps scaling where FM falls off a cliff).
fn fm_satisfiable_capped(sys: &ConstraintSystem) -> Option<bool> {
    match fm::project_onto_capped(sys, &BTreeSet::new(), 50_000).ok()? {
        fm::FmResult::Projected(rest) => Some(rest.simplify_trivial().is_some()),
        fm::FmResult::Infeasible => Some(false),
    }
}

/// E7c — simplex vs FM feasibility on random systems of growing size.
pub fn simplex_suite(scale: Scale) -> Vec<Sample> {
    let mut out = Vec::new();
    let nvars_list: &[usize] = match scale {
        Scale::Smoke => &[3, 4, 5],
        Scale::Full => &[3, 4, 5, 6],
    };
    for (label, feasible) in [("feasible", true), ("mixed", false)] {
        for &nvars in nvars_list {
            let mut r = workload::rng(13 + nvars as u64);
            let sys = if feasible {
                workload::random_feasible_system(&mut r, nvars, nvars * 2, 3)
            } else {
                workload::random_system(&mut r, nvars, nvars * 2, 3)
            };
            out.push(bench_case(
                "simplex",
                &format!("{label}/simplex/{nvars}"),
                1,
                scale.iters(),
                || black_box(simplex::feasible_point(black_box(&sys), &BTreeSet::new())),
            ));
            out.push(bench_case(
                "simplex",
                &format!("{label}/fm/{nvars}"),
                1,
                scale.iters(),
                || black_box(fm_satisfiable_capped(black_box(&sys))),
            ));
        }
    }
    out
}

/// E7b — Fourier–Motzkin projection cost against variables eliminated and
/// row count.
pub fn fm_suite(scale: Scale) -> Vec<Sample> {
    let mut out = Vec::new();
    let nvars_list: &[usize] = match scale {
        Scale::Smoke => &[3, 5, 7],
        Scale::Full => &[3, 5, 7, 9],
    };
    for &nvars in nvars_list {
        let mut r = workload::rng(7);
        let sys = workload::random_feasible_system(&mut r, nvars, nvars * 2, 3);
        let keep: BTreeSet<usize> = [0usize].into_iter().collect();
        out.push(bench_case("fm", &format!("eliminate-vars/{nvars}"), 1, scale.iters(), || {
            black_box(fm::project_onto_capped(black_box(&sys), &keep, 100_000))
        }));
    }
    let nrows_list: &[usize] = match scale {
        Scale::Smoke => &[4, 8, 16],
        Scale::Full => &[4, 8, 16, 32],
    };
    for &nrows in nrows_list {
        let mut r = workload::rng(11);
        let sys = workload::random_feasible_system(&mut r, 4, nrows, 3);
        let keep: BTreeSet<usize> = [0usize, 1].into_iter().collect();
        out.push(bench_case("fm", &format!("rows/{nrows}"), 1, scale.iters(), || {
            black_box(fm::project_onto_capped(black_box(&sys), &keep, 100_000))
        }));
    }
    out
}

/// E7a — end-to-end analysis cost per corpus program plus the synthetic
/// chained-append scaling family.
pub fn analysis_suite(scale: Scale) -> Vec<Sample> {
    let mut out = Vec::new();
    let corpus: &[&str] = match scale {
        Scale::Smoke => &["append_bff", "perm", "merge", "quicksort"],
        Scale::Full => {
            &["append_bff", "perm", "merge", "expr_parser", "quicksort", "hanoi", "tree_insert"]
        }
    };
    for name in corpus {
        let entry = argus_corpus::find(name).expect("corpus entry");
        let program = entry.program().expect("parse");
        let (query, adornment) = entry.query_key();
        out.push(bench_case("analysis", &format!("corpus/{name}"), 1, scale.iters(), || {
            black_box(analyze(
                black_box(&program),
                &query,
                adornment.clone(),
                &AnalysisOptions::default(),
            ))
        }));
    }
    let depths: &[usize] = match scale {
        Scale::Smoke => &[1, 2, 4],
        Scale::Full => &[1, 2, 4, 8],
    };
    for &depth in depths {
        let src = workload::chained_append_program(depth);
        let program = argus_logic::parser::parse_program(&src).expect("parse");
        let query = argus_logic::PredKey::new("p0", 2);
        let adornment = argus_logic::Adornment::parse("bf").unwrap();
        out.push(bench_case(
            "analysis",
            &format!("chained-depth/{depth}"),
            1,
            scale.iters(),
            || {
                black_box(analyze(
                    black_box(&program),
                    &query,
                    adornment.clone(),
                    &AnalysisOptions::default(),
                ))
            },
        ));
    }
    out
}

/// E7d — ablations: δ selection mode, imported-constraint power, and
/// transformation policy.
pub fn ablation_suite(scale: Scale) -> Vec<Sample> {
    let mut out = Vec::new();
    let subjects: &[&str] = match scale {
        Scale::Smoke => &["perm", "merge"],
        Scale::Full => &["perm", "merge", "expr_parser"],
    };
    for name in subjects {
        let e = argus_corpus::find(name).expect("entry");
        let program = e.program().expect("parse");
        let (query, adornment) = e.query_key();
        for (label, mode) in
            [("paper-6.1", DeltaMode::Paper), ("appendix-c", DeltaMode::PathConstraints)]
        {
            let options = AnalysisOptions { delta_mode: mode, ..AnalysisOptions::default() };
            out.push(bench_case(
                "ablation",
                &format!("delta-mode/{name}/{label}"),
                1,
                scale.iters(),
                || black_box(analyze(black_box(&program), &query, adornment.clone(), &options)),
            ));
        }
        for (label, binary) in [("polyhedral", false), ("binary-orders", true)] {
            let options = AnalysisOptions {
                restrict_imports_to_binary_orders: binary,
                ..AnalysisOptions::default()
            };
            out.push(bench_case(
                "ablation",
                &format!("imports/{name}/{label}"),
                1,
                scale.iters(),
                || black_box(analyze(black_box(&program), &query, adornment.clone(), &options)),
            ));
        }
    }
    // appendix_a1 NEEDS the transformations; merge must not pay for them.
    for name in ["appendix_a1", "merge"] {
        let e = argus_corpus::find(name).expect("entry");
        let program = e.program().expect("parse");
        let (query, adornment) = e.query_key();
        for (label, phases) in [("no-transform", 0usize), ("lazy-3-phases", 3)] {
            let options =
                AnalysisOptions { transform_phases: phases, ..AnalysisOptions::default() };
            out.push(bench_case(
                "ablation",
                &format!("transform/{name}/{label}"),
                1,
                scale.iters(),
                || black_box(analyze(black_box(&program), &query, adornment.clone(), &options)),
            ));
        }
    }
    out
}

/// E7f — the level-scheduled parallel pipeline: multi-SCC workloads
/// analyzed sequentially (`--jobs 1`) vs with the worker pool
/// (`--jobs 0` = one per core). The wide program is the pipeline's home
/// turf (many independent SCCs per level); the deep chain is the
/// adversarial case (one SCC per level — parallelism can only add
/// overhead, which must stay negligible).
pub fn parallel_suite(scale: Scale) -> Vec<Sample> {
    let mut out = Vec::new();
    let (layers, width) = match scale {
        Scale::Smoke => (2, 4),
        Scale::Full => (3, 8),
    };
    let mut src = workload::wide_scc_program(layers, width);
    // A root rule calling every column, so the whole width is reachable
    // from one query.
    let calls: Vec<String> = (0..width).map(|w| format!("q0_{w}(Xs, _Y{w})")).collect();
    src.push_str(&format!("root(Xs) :- {}.\n", calls.join(", ")));
    let program = argus_logic::parser::parse_program(&src).expect("parse");
    let query = argus_logic::PredKey::new("root", 1);
    let adornment = argus_logic::Adornment::parse("b").unwrap();
    for (label, jobs) in [("jobs-1", 1usize), ("jobs-auto", 0)] {
        let options = AnalysisOptions { parallelism: jobs, ..AnalysisOptions::default() };
        out.push(bench_case(
            "parallel",
            &format!("wide-scc/{layers}x{width}/{label}"),
            1,
            scale.iters(),
            || black_box(analyze(black_box(&program), &query, adornment.clone(), &options)),
        ));
    }
    let depth = match scale {
        Scale::Smoke => 4,
        Scale::Full => 8,
    };
    let src = workload::chained_append_program(depth);
    let program = argus_logic::parser::parse_program(&src).expect("parse");
    let query = argus_logic::PredKey::new("p0", 2);
    let adornment = argus_logic::Adornment::parse("bf").unwrap();
    for (label, jobs) in [("jobs-1", 1usize), ("jobs-auto", 0)] {
        let options = AnalysisOptions { parallelism: jobs, ..AnalysisOptions::default() };
        out.push(bench_case(
            "parallel",
            &format!("deep-chain/{depth}/{label}"),
            1,
            scale.iters(),
            || black_box(analyze(black_box(&program), &query, adornment.clone(), &options)),
        ));
    }
    out
}

/// Flatten an [`fm::FmStats`] into bench counters.
fn fm_counters(stats: &fm::FmStats) -> Vec<(&'static str, u64)> {
    vec![
        ("peak_rows", stats.peak_rows),
        ("rows_in", stats.rows_in),
        ("rows_out", stats.rows_out),
        ("pairs_combined", stats.pairs_combined),
        ("dedup_hits", stats.dedup_hits),
        ("subsume_hits", stats.subsume_hits),
        ("chernikov_drops", stats.chernikov_drops),
        ("lp_drops", stats.lp_drops),
    ]
}

/// E11 — FM blowup control: the redundancy-elimination tiers measured on
/// (a) raw dense projections, (b) the instrumented size-relation inference
/// of the FM-heavy `mutual_fib_ring` corpus entry, and (c) the end-to-end
/// analysis with the per-SCC projection cache on and off. Every sample
/// carries the deterministic FM row counters, so `fm_gate` can pin floors
/// on the *row reduction* itself rather than on noisy wall time.
pub fn fm_redundancy_suite(scale: Scale) -> Vec<Sample> {
    let mut out = Vec::new();

    // (a) Dense random projections per tier. The row cap keeps the low
    // tiers bounded on adversarial instances — hitting it is itself the
    // measured result, recorded by `peak_rows` slamming into the cap while
    // tier ≥ 2 finishes two orders of magnitude below it. (Uncapped, tier 0
    // peaks at ~82k rows on the 6v12 instance and tier 1's quadratic
    // subsumption scan does 4×10⁸ row comparisons: minutes, not benchable.)
    let sizes: &[(usize, usize)] = match scale {
        Scale::Smoke => &[(6, 12)],
        Scale::Full => &[(6, 12), (7, 14), (8, 16)],
    };
    for &(nvars, nrows) in sizes {
        let mut r = workload::rng(29 + nvars as u64);
        let sys = workload::random_system(&mut r, nvars, nrows, 3);
        let keep: BTreeSet<usize> = [0usize].into_iter().collect();
        for tier in FmTier::ALL {
            let cfg = fm::FmConfig { max_rows: 2_000, ..fm::FmConfig::tiered(tier) };
            let mut stats = fm::FmStats::default();
            let _ = fm::project_onto_with(&sys, &keep, &cfg, &mut stats);
            // Low tiers can be seconds per iteration here; keep them cheap.
            let iters = if tier.index() < 2 { 1 } else { scale.iters() };
            out.push(
                bench_case(
                    "fm_redundancy",
                    &format!("project/{nvars}v{nrows}r/tier{}", tier.index()),
                    0,
                    iters,
                    || {
                        let mut s = fm::FmStats::default();
                        black_box(fm::project_onto_with(black_box(&sys), &keep, &cfg, &mut s))
                    },
                )
                .with_counters(fm_counters(&stats)),
            );
        }
    }

    // (b) Per-rule size-relation projections of the FM-heavy corpus entry,
    // at the inferred fixpoint, with the row cap lifted: this exposes the
    // full blowup the production cap would truncate. Tier 0 peaks ~20×
    // higher than tiers ≥ 1 — the committed ≥5× row-reduction criterion.
    let entry = argus_corpus::find("mutual_fib_ring").expect("corpus entry");
    let program = entry.program().expect("parse");
    let rels =
        argus_sizerel::infer_size_relations(&program, &argus_sizerel::InferOptions::default());
    let project_rules = |cfg: &fm::FmConfig, stats: &mut fm::FmStats| {
        for p in program.idb_predicates() {
            for rule in program.procedure(&p) {
                black_box(argus_sizerel::rule_poly_instrumented(
                    rule,
                    &rels,
                    argus_logic::Norm::default(),
                    cfg,
                    stats,
                ));
            }
        }
    };
    for tier in FmTier::ALL {
        let cfg = fm::FmConfig { max_rows: 2_000_000, ..fm::FmConfig::tiered(tier) };
        let mut stats = fm::FmStats::default();
        project_rules(&cfg, &mut stats);
        out.push(
            bench_case(
                "fm_redundancy",
                &format!("infer-rules/mutual_fib_ring/tier{}", tier.index()),
                1,
                scale.iters(),
                || {
                    let mut s = fm::FmStats::default();
                    project_rules(&cfg, &mut s);
                },
            )
            .with_counters(fm_counters(&stats)),
        );
    }

    // (c) End-to-end analysis of the ring at the feasible tiers, with the
    // per-SCC projection cache on and off. (Tiers 0–1 are omitted: on this
    // entry their pair projections run for minutes — the blowup the tiers
    // exist to prevent.)
    let (query, adornment) = entry.query_key();
    for tier in [FmTier::Chernikov, FmTier::Lp] {
        for (label, fm_cache) in [("cache", true), ("nocache", false)] {
            let options = AnalysisOptions { fm_tier: tier, fm_cache, ..AnalysisOptions::default() };
            let report = analyze(&program, &query, adornment.clone(), &options);
            let mut stats = fm::FmStats::default();
            for scc in &report.sccs {
                stats.merge(&scc.stats.fm);
            }
            let mut counters = fm_counters(&stats);
            counters.push(("cache_requests", report.run_stats.cache_requests));
            counters.push(("cache_hits", report.run_stats.cache_hits()));
            out.push(
                bench_case(
                    "fm_redundancy",
                    &format!("analyze/mutual_fib_ring/tier{}/{label}", tier.index()),
                    1,
                    scale.iters(),
                    || black_box(analyze(black_box(&program), &query, adornment.clone(), &options)),
                )
                .with_counters(counters.clone()),
            );
        }
    }
    out
}

/// E12 — the analysis server measured at the dispatch layer (no
/// sockets, so the numbers isolate request handling from kernel
/// buffering): each corpus entry is submitted **cold** (fresh caches
/// every iteration — the full analysis runs) and **warm** (the
/// content-addressed report cache primed — a repeat submission is one
/// FNV pass, a bucket probe, and a body clone). The warm/cold ratio is
/// the headline number for `argus serve`'s repeat-submission latency;
/// the socket path is measured separately by the `loadgen` binary.
pub fn serve_suite(scale: Scale) -> Vec<Sample> {
    use argus_serve::jsonval::json_str;
    use argus_serve::{Request, ServeOptions, ServerState};

    let entries: &[&str] = match scale {
        Scale::Smoke => &["append_bff", "perm"],
        Scale::Full => &["append_bff", "perm", "quicksort", "mutual_fib_ring"],
    };
    let request = |entry: &argus_corpus::CorpusEntry| Request {
        method: "POST".to_string(),
        path: "/v1/analyze".to_string(),
        headers: Vec::new(),
        body: format!(
            "{{\"program\":{},\"query\":{},\"adornment\":{}}}",
            json_str(entry.source),
            json_str(entry.query),
            json_str(entry.adornment)
        )
        .into_bytes(),
        keep_alive: true,
    };

    let mut out = Vec::new();
    for name in entries {
        let entry = argus_corpus::find(name).expect("corpus entry");
        let req = request(&entry);
        out.push(bench_case("serve", &format!("analyze/cold/{name}"), 0, scale.iters(), || {
            let state = ServerState::new(ServeOptions::default());
            let resp = state.handle(black_box(&req));
            assert_eq!(resp.status, 200);
            resp
        }));

        let state = ServerState::new(ServeOptions::default());
        assert_eq!(state.handle(&req).status, 200, "priming request");
        // Hits are microseconds; run plenty of iterations for signal.
        let warm_iters = scale.iters().max(200);
        let warm = bench_case("serve", &format!("analyze/warm/{name}"), 1, warm_iters, || {
            let resp = state.handle(black_box(&req));
            assert_eq!(resp.status, 200);
            resp
        })
        .with_counters(vec![
            ("report_cache_hits", state.reports().hits()),
            ("report_cache_misses", state.reports().misses()),
        ]);
        out.push(warm);
    }
    out
}

/// E13 — backwards condition inference: whole-program inference per corpus
/// entry (probe counters attached: a low `analyses`-to-candidates ratio is
/// the backwards-propagation pruning at work), then the serve condition
/// cache measured cold vs warm at the dispatch layer, and the priming
/// effect — an analyze submitted after an infer of the same program is a
/// pure report-cache hit.
pub fn infer_suite(scale: Scale) -> Vec<Sample> {
    use argus_core::{infer_conditions, BackwardsOptions};
    use argus_serve::jsonval::json_str;
    use argus_serve::{Request, ServeOptions, ServerState};

    let entries: &[&str] = match scale {
        Scale::Smoke => &["append_bff", "perm"],
        Scale::Full => &["append_bff", "perm", "reverse_acc", "quicksort"],
    };
    let mut out = Vec::new();
    let options = BackwardsOptions::default();
    for name in entries {
        let entry = argus_corpus::find(name).expect("corpus entry");
        let program = entry.program().expect("parse");
        let report = infer_conditions(&program, &options);
        let disjuncts: usize =
            report.conditions.iter().map(|c| c.condition.disjuncts().count()).sum();
        out.push(
            bench_case("infer", &format!("whole-program/{name}"), 1, scale.iters(), || {
                black_box(infer_conditions(black_box(&program), &options))
            })
            .with_counters(vec![
                ("predicates", report.conditions.len() as u64),
                ("analyses", report.analyses as u64),
                ("pruned", report.pruned as u64),
                ("disjuncts", disjuncts as u64),
            ]),
        );
    }

    let post = |path: &str, body: String| Request {
        method: "POST".to_string(),
        path: path.to_string(),
        headers: Vec::new(),
        body: body.into_bytes(),
        keep_alive: true,
    };
    for name in entries {
        let entry = argus_corpus::find(name).expect("corpus entry");
        let infer_req = post("/v1/infer", format!("{{\"program\":{}}}", json_str(entry.source)));
        out.push(bench_case("infer", &format!("serve-cold/{name}"), 0, scale.iters(), || {
            let state = ServerState::new(ServeOptions::default());
            let resp = state.handle(black_box(&infer_req));
            assert_eq!(resp.status, 200);
            resp
        }));

        let state = ServerState::new(ServeOptions::default());
        assert_eq!(state.handle(&infer_req).status, 200, "priming infer");
        let warm_iters = scale.iters().max(200);
        out.push(
            bench_case("infer", &format!("serve-warm/{name}"), 1, warm_iters, || {
                let resp = state.handle(black_box(&infer_req));
                assert_eq!(resp.status, 200);
                resp
            })
            .with_counters(vec![
                ("condition_cache_hits", state.conditions().hits()),
                ("condition_cache_misses", state.conditions().misses()),
            ]),
        );

        // The priming effect: the analyze below never runs an analysis —
        // the infer above already deposited its report bytes.
        let analyze_req = post(
            "/v1/analyze",
            format!(
                "{{\"program\":{},\"query\":{},\"adornment\":{}}}",
                json_str(entry.source),
                json_str(entry.query),
                json_str(entry.adornment)
            ),
        );
        out.push(
            bench_case("infer", &format!("primed-analyze/{name}"), 1, warm_iters, || {
                let resp = state.handle(black_box(&analyze_req));
                assert_eq!(resp.status, 200);
                resp
            })
            .with_counters(vec![
                ("report_cache_hits", state.reports().hits()),
                ("report_cache_misses", state.reports().misses()),
            ]),
        );
    }
    out
}

/// E14 — the million-clause substrate: generated chains of thousands of
/// SCCs at 10k–100k clauses, timed per stage (parse, adorn, size-relation
/// FM, end-to-end analyze). These are the cases the interner + arena +
/// sparse-row layout exists for; each sample carries deterministic
/// workload counters (rules, predicates, SCCs, FM rows) so `fm_gate`-style
/// floors can pin the substrate, not just wall time.
///
/// The end-to-end sample is timed as a single run (no warmup) with its
/// counters read off the same run: at these sizes a second analysis per
/// case would dominate the whole report, and the deltas the suite tracks
/// are ≥3×. `ARGUS_SCALE_ONLY=50k,100k` restricts the size list — used to
/// split the long pre-refactor baseline capture across processes.
pub fn scale_suite(scale: Scale) -> Vec<Sample> {
    let sizes: &[(&str, usize)] = match scale {
        Scale::Smoke => &[("2k", 2_000)],
        Scale::Full => &[("10k", 10_000), ("50k", 50_000), ("100k", 100_000)],
    };
    let only: Option<Vec<String>> = std::env::var("ARGUS_SCALE_ONLY")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let mut out = Vec::new();
    for &(label, clauses) in sizes {
        if let Some(only) = &only {
            if !only.iter().any(|o| o == label) {
                continue;
            }
        }
        let case = argus_fuzz::gen::scale_case(0xA11CE, clauses);
        let src = case.program.to_string();
        let program = argus_logic::parser::parse_program(&src).expect("scale case reparses");
        let graph = argus_logic::DepGraph::build(&program);
        let shape = vec![
            ("rules", program.rules.len() as u64),
            ("predicates", graph.predicates().len() as u64),
            ("sccs", graph.scc_count() as u64),
        ];
        // Large cases are single-iteration: each run is seconds-to-minutes
        // pre-refactor, and the deltas this suite tracks are ≥3×.
        let iters = if clauses >= 50_000 { 1 } else { scale.iters().min(2) };

        out.push(
            bench_case("scale", &format!("parse/{label}"), 0, iters, || {
                black_box(argus_logic::parser::parse_program(black_box(&src)).expect("parse"))
            })
            .with_counters(shape.clone()),
        );
        out.push(
            bench_case("scale", &format!("adorn/{label}"), 0, iters, || {
                black_box(argus_logic::adorn::adorn_program(
                    black_box(&program),
                    &case.query,
                    case.adornment.clone(),
                ))
            })
            .with_counters(shape.clone()),
        );
        // The FM-dominated size-relation stage in isolation, at the small
        // size only: it re-runs the per-SCC fixpoint the end-to-end sample
        // already contains, so one size is enough to pin the stage.
        if clauses <= 10_000 {
            out.push(
                bench_case("scale", &format!("sizerel-fm/{label}"), 0, 1, || {
                    black_box(argus_sizerel::infer_size_relations(
                        black_box(&program),
                        &argus_sizerel::InferOptions::default(),
                    ))
                })
                .with_counters(shape.clone()),
            );
        }
        let options = AnalysisOptions::default();
        let start = std::time::Instant::now();
        let report = black_box(analyze(&program, &case.query, case.adornment.clone(), &options));
        let analyze_ns = start.elapsed().as_nanos() as f64;
        let mut fm_stats = fm::FmStats::default();
        for scc in &report.sccs {
            fm_stats.merge(&scc.stats.fm);
        }
        let mut counters = shape.clone();
        counters.push(("analyzed_sccs", report.sccs.len() as u64));
        counters.push(("fm_rows_in", fm_stats.rows_in));
        counters.push(("fm_pairs_combined", fm_stats.pairs_combined));
        out.push(
            Sample {
                suite: "scale".to_string(),
                name: format!("analyze/{label}"),
                iters: 1,
                ns_per_iter: analyze_ns,
                counters: Vec::new(),
            }
            .with_counters(counters),
        );
    }
    out
}

/// E16 — incremental re-analysis: a per-SCC memo is primed on a
/// generated scale program, then a one-clause edit is re-analyzed
/// through the memo and timed against a from-scratch analysis of the
/// same edited program. The edit duplicates the middle clause: the
/// edited SCC's canonical rule content changes (forcing its recompute)
/// while its exported size summary does not — the early-cutoff shape
/// real edits overwhelmingly have, so the dirty cone stays a handful of
/// SCC computations out of thousands. Each warm sample carries the
/// dirty-cone counters (`dirty_sccs` / `total_sccs`) that `incr_gate`
/// pins; the committed 50k numbers back the ≥10× warm-vs-cold claim.
/// `ARGUS_SCALE_ONLY` restricts the size list exactly as in
/// [`scale_suite`].
pub fn incremental_suite(scale: Scale) -> Vec<Sample> {
    use argus_core::analyze_with_caches;
    use argus_core::SccCache;

    let sizes: &[(&str, usize)] = match scale {
        Scale::Smoke => &[("2k", 2_000)],
        Scale::Full => &[("10k", 10_000), ("50k", 50_000)],
    };
    let only: Option<Vec<String>> = std::env::var("ARGUS_SCALE_ONLY")
        .ok()
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
    let mut out = Vec::new();
    for &(label, clauses) in sizes {
        if let Some(only) = &only {
            if !only.iter().any(|o| o == label) {
                continue;
            }
        }
        let case = argus_fuzz::gen::scale_case(0xA11CE, clauses);
        let base = &case.program;
        let mut rules = base.rules.clone();
        rules.push(rules[rules.len() / 2].clone());
        let edited = argus_logic::Program::from_rules(rules);
        let options = AnalysisOptions::default();
        let timed = |name: String, counters: Vec<(&'static str, u64)>, ns: f64| Sample {
            suite: "incremental".to_string(),
            name,
            iters: 1,
            ns_per_iter: ns,
            counters,
        };

        // Cold baseline: from-scratch analysis of the edited program.
        let start = std::time::Instant::now();
        let cold = black_box(analyze(&edited, &case.query, case.adornment.clone(), &options));
        out.push(timed(
            format!("cold/{label}"),
            vec![("rules", edited.rules.len() as u64), ("sccs", cold.sccs.len() as u64)],
            start.elapsed().as_nanos() as f64,
        ));

        // Prime the memo (untimed) with the pre-edit program.
        let memo = SccCache::unbounded();
        let _ = black_box(analyze_with_caches(
            base,
            &case.query,
            case.adornment.clone(),
            &options,
            None,
            Some(&memo),
        ));

        // Warm edit: only the duplicated clause's SCC cone recomputes.
        let start = std::time::Instant::now();
        let report = black_box(analyze_with_caches(
            &edited,
            &case.query,
            case.adornment.clone(),
            &options,
            None,
            Some(&memo),
        ));
        let ns = start.elapsed().as_nanos() as f64;
        let incr = report.incremental.expect("memoized run records incremental stats");
        out.push(timed(
            format!("warm-edit/{label}"),
            vec![
                ("dirty_sccs", incr.dirty()),
                ("total_sccs", incr.total()),
                ("size_hits", incr.size_hits),
                ("theta_hits", incr.theta_hits),
            ],
            ns,
        ));

        // Warm no-op: the unchanged program resubmitted — a pure hit.
        let start = std::time::Instant::now();
        let report = black_box(analyze_with_caches(
            base,
            &case.query,
            case.adornment.clone(),
            &options,
            None,
            Some(&memo),
        ));
        let ns = start.elapsed().as_nanos() as f64;
        let incr = report.incremental.expect("memoized run records incremental stats");
        out.push(timed(
            format!("warm-noop/{label}"),
            vec![("dirty_sccs", incr.dirty()), ("total_sccs", incr.total())],
            ns,
        ));
    }
    out
}

/// E15 — the engine portfolio: every engine timed alone on the corpus
/// separator entries (θ-only, SCT-only, and both-prove programs), then
/// the full five-engine race sequentially and with the worker pool. Each
/// single-engine sample carries that engine's deterministic work
/// counters (θ's FM rows, SCT's graph/closure/idempotent counts), so the
/// report records *why* an engine wins an entry, not just how fast; the
/// race samples carry the winner index so attribution drift is visible
/// in the committed report.
pub fn portfolio_suite(scale: Scale) -> Vec<Sample> {
    use argus_baselines::{engine_by_id, standard_engines, ENGINE_IDS};
    use argus_core::run_portfolio;

    let entries: &[&str] = match scale {
        Scale::Smoke => &["append_bff", "sct_lex_reset"],
        Scale::Full => {
            &["append_bff", "quicksort", "sct_lex_reset", "ackermann", "theta_crossed_descent"]
        }
    };
    let options = AnalysisOptions { parallelism: 1, ..AnalysisOptions::default() };
    let mut out = Vec::new();
    for name in entries {
        let entry = argus_corpus::find(name).expect("corpus entry");
        let program = entry.program().expect("parse");
        let (query, adornment) = entry.query_key();
        for id in ENGINE_IDS {
            let engines = vec![engine_by_id(id).expect("known engine id")];
            let report = run_portfolio(&engines, &program, &query, &adornment, &options, 1, false);
            out.push(
                bench_case("portfolio", &format!("engine/{name}/{id}"), 1, scale.iters(), || {
                    black_box(run_portfolio(
                        black_box(&engines),
                        &program,
                        &query,
                        &adornment,
                        &options,
                        1,
                        false,
                    ))
                })
                .with_counters(report.entries[0].run.stats.clone()),
            );
        }
        let engines = standard_engines();
        for (label, jobs) in [("jobs-1", 1usize), ("jobs-auto", 0)] {
            let race_options = AnalysisOptions { parallelism: jobs, ..AnalysisOptions::default() };
            let report =
                run_portfolio(&engines, &program, &query, &adornment, &race_options, jobs, true);
            let winner = report.winner.map(|w| w as u64).unwrap_or(u64::MAX);
            out.push(
                bench_case("portfolio", &format!("race/{name}/{label}"), 1, scale.iters(), || {
                    black_box(run_portfolio(
                        black_box(&engines),
                        &program,
                        &query,
                        &adornment,
                        &race_options,
                        jobs,
                        true,
                    ))
                })
                .with_counters(vec![("engines", engines.len() as u64), ("winner_index", winner)]),
            );
        }
    }
    out
}

/// E17 — LSP edit-session replay: a scripted client drives the
/// in-process `argus-lsp` server through a realistic editing session on
/// a generated scale program and measures end-to-end
/// `didChange` → `publishDiagnostics` latency — framing, JSON-RPC
/// dispatch, the full lint battery, and the memoized termination
/// analysis, exactly what an editor user waits on. One cold open primes
/// the per-SCC memo, then a burst of one-clause warm edits (each
/// appending a duplicate of a distinct mid-program rule) and a no-op
/// edit replay the `incremental` suite's shapes through the protocol.
/// Warm samples carry client-observed p50/p99 latencies and the
/// worst-case dirty-cone counters (`dirty_sccs` / `total_sccs`) that
/// `lsp_gate` pins.
pub fn lsp_suite(scale: Scale) -> Vec<Sample> {
    use argus_lsp::{spawn_in_process, LspOptions};
    use argus_serve::jsonval::Json;

    let (label, clauses, edits) = match scale {
        Scale::Smoke => ("2k", 2_000usize, 4usize),
        Scale::Full => ("10k", 10_000, 16),
    };
    let case = argus_fuzz::gen::scale_case(0xA11CE, clauses);
    let mut text = case.program.to_string();
    if !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&format!("% argus query: {} {}\n", case.query, case.adornment));
    let uri = "file:///bench/session.pl";
    let stat = |params: &Json, key: &str| params.get(key).and_then(Json::as_u64).unwrap_or(0);

    let (mut client, handle) = spawn_in_process(LspOptions::default());
    client.initialize(None);

    // Cold open: the whole document analyzed against an empty memo.
    let start = std::time::Instant::now();
    client.did_open(uri, 1, &text);
    let publish = client.wait_publish(uri, 1);
    let stats = client.wait_stats(uri, 1);
    let cold_ns = start.elapsed().as_nanos() as f64;
    let diags = publish.get("diagnostics").and_then(Json::as_array).map_or(0, <[Json]>::len);
    let mut out = vec![Sample {
        suite: "lsp".to_string(),
        name: format!("cold-open/{label}"),
        iters: 1,
        ns_per_iter: cold_ns,
        counters: vec![
            ("rules", case.program.rules.len() as u64),
            ("diagnostics", diags as u64),
            ("total_sccs", stat(&stats, "total")),
        ],
    }];

    // Warm edits: append duplicates of distinct mid-program rules at the
    // end of the document — the early-cutoff shape real edits have.
    let first_line = text.lines().count();
    let mut version = 1i64;
    let mut latencies = Vec::new();
    let (mut worst_dirty, mut worst_total) = (0u64, stat(&stats, "total").max(1));
    for k in 0..edits {
        let line = first_line + k;
        let rule = case.program.rules[case.program.rules.len() / 2 + k].to_string();
        version += 1;
        let start = std::time::Instant::now();
        client.did_change_range(uri, version, ((line, 0), (line, 0)), &format!("{rule}\n"));
        client.wait_publish(uri, version);
        let stats = client.wait_stats(uri, version);
        latencies.push(start.elapsed().as_nanos() as f64);
        let (dirty, total) = (stat(&stats, "dirty"), stat(&stats, "total"));
        if dirty * worst_total >= worst_dirty * total.max(1) {
            (worst_dirty, worst_total) = (dirty, total.max(1));
        }
    }
    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let pct = |p: f64| sorted[((sorted.len() - 1) as f64 * p).round() as usize];
    let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
    out.push(Sample {
        suite: "lsp".to_string(),
        name: format!("warm-edit/{label}"),
        iters: edits as u32,
        ns_per_iter: mean,
        counters: vec![
            ("dirty_sccs", worst_dirty),
            ("total_sccs", worst_total),
            ("p50_us", (pct(0.50) / 1_000.0) as u64),
            ("p99_us", (pct(0.99) / 1_000.0) as u64),
        ],
    });

    // Warm no-op: replace the first character with itself — the text is
    // unchanged, so the memo must satisfy every SCC computation.
    let first = text.chars().next().expect("nonempty program").to_string();
    version += 1;
    let start = std::time::Instant::now();
    client.did_change_range(uri, version, ((0, 0), (0, 1)), &first);
    client.wait_publish(uri, version);
    let stats = client.wait_stats(uri, version);
    out.push(Sample {
        suite: "lsp".to_string(),
        name: format!("warm-noop/{label}"),
        iters: 1,
        ns_per_iter: start.elapsed().as_nanos() as f64,
        counters: vec![
            ("dirty_sccs", stat(&stats, "dirty")),
            ("total_sccs", stat(&stats, "total")),
        ],
    });

    client.shutdown_exit();
    drop(client);
    assert_eq!(handle.join().expect("server thread"), 0, "orderly LSP shutdown");
    out
}

/// A suite entry point: workloads at a given scale, as samples.
pub type SuiteFn = fn(Scale) -> Vec<Sample>;

/// Every suite, by name, in report order. `bench_report` iterates this so
/// the committed `BENCH_argus.json` always covers the full set.
pub fn all_suites() -> Vec<(&'static str, SuiteFn)> {
    vec![
        ("simplex", simplex_suite),
        ("fm", fm_suite),
        ("fm_redundancy", fm_redundancy_suite),
        ("analysis", analysis_suite),
        ("ablation", ablation_suite),
        ("parallel", parallel_suite),
        ("serve", serve_suite),
        ("infer", infer_suite),
        ("portfolio", portfolio_suite),
        ("scale", scale_suite),
        ("incremental", incremental_suite),
        ("lsp", lsp_suite),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suites_produce_samples() {
        assert!(!simplex_suite(Scale::Smoke).is_empty());
        assert!(!fm_suite(Scale::Smoke).is_empty());
        // The analysis/ablation suites are exercised end-to-end by
        // `bench_report --smoke` in CI; here just check the cheap ones.
    }
}
