//! Moded lint passes: L007 (well-modedness) and L008 (unsafe negation).
//!
//! Both run an abstract left-to-right execution of every clause body,
//! tracking the set of variables certainly ground at each goal — the same
//! discipline as [`argus_logic::groundness`], specialized to diagnosis:
//!
//! * a **test builtin** (`<`, `=<`, …) demands all its variables ground
//!   and grounds nothing;
//! * `is`/2 demands its right-hand side ground and grounds its left;
//! * `=`/2 grounds either side once the other is ground;
//! * a call to a **defined** predicate grounds all its variables on
//!   success (success-groundness of range-restricted procedures);
//! * a call to an **undefined** predicate grounds nothing (it cannot
//!   succeed);
//! * a **negated** goal demands all its variables ground (else the
//!   negation-as-failure test floats over an unbound variable —
//!   "floundering") and grounds nothing.
//!
//! With a query adornment ([`crate::LintOptions::query`]), head-argument
//! groundness comes from propagating that adornment ([`infer_modes`]);
//! without one, every head argument is assumed bound (the most permissive
//! assumption — anything flagged is wrong under *every* adornment).

use crate::{Diagnostic, LintContext, LintPass, Severity};
use argus_logic::modes::{infer_modes, is_builtin, Adornment, Mode, ModeMap, TEST_BUILTINS};
use argus_logic::{Literal, PredKey, Rule, Sym};
use std::collections::{BTreeSet, HashSet};

/// The ground-variable set at one program point.
type GroundSet = HashSet<Sym>;

/// What the abstract execution of one literal observed.
enum Step {
    /// Fine; the literal grounded these variables.
    Ok,
    /// The literal needs these variables ground and they are not.
    Unbound(Vec<Sym>),
}

fn unbound_vars(vars: impl IntoIterator<Item = Sym>, ground: &GroundSet) -> Vec<Sym> {
    vars.into_iter().filter(|v| !ground.contains(v)).collect()
}

/// Abstractly execute `lit`, updating `ground`. Returns what was observed.
fn step(lit: &Literal, defined: &BTreeSet<PredKey>, ground: &mut GroundSet) -> Step {
    let key = lit.atom.key();
    if !lit.positive {
        let missing = unbound_vars(lit.atom.vars(), ground);
        return if missing.is_empty() { Step::Ok } else { Step::Unbound(missing) };
    }
    if key.arity == 2 && TEST_BUILTINS.contains(&&*key.name) {
        let missing = unbound_vars(lit.atom.vars(), ground);
        return if missing.is_empty() { Step::Ok } else { Step::Unbound(missing) };
    }
    if &*key.name == "is" && key.arity == 2 {
        let missing = unbound_vars(lit.atom.args[1].vars(), ground);
        if !missing.is_empty() {
            return Step::Unbound(missing);
        }
        ground.extend(lit.atom.args[0].vars());
        return Step::Ok;
    }
    if &*key.name == "=" && key.arity == 2 {
        let lhs = lit.atom.args[0].vars();
        let rhs = lit.atom.args[1].vars();
        if lhs.iter().all(|v| ground.contains(v)) {
            ground.extend(rhs);
        } else if rhs.iter().all(|v| ground.contains(v)) {
            ground.extend(lhs);
        }
        return Step::Ok;
    }
    if defined.contains(&key) && !is_builtin(&key) {
        ground.extend(lit.atom.vars());
    }
    Step::Ok
}

/// The initially-ground variables of a rule head under `modes` (or all
/// head variables when the head predicate has no recorded adornment).
fn initial_ground(rule: &Rule, modes: Option<&ModeMap>) -> GroundSet {
    let adornment = modes.and_then(|m| m.get(&rule.head.key()));
    let mut ground = GroundSet::new();
    for (i, arg) in rule.head.args.iter().enumerate() {
        let bound = match adornment {
            Some(a) => a.0.get(i) == Some(&Mode::Bound),
            None => true,
        };
        if bound {
            ground.extend(arg.vars());
        }
    }
    ground
}

/// Propagated adornments for the lint query, if one was given.
fn query_modes(ctx: &LintContext<'_>) -> Option<ModeMap> {
    let (root, adornment) = ctx.query?;
    Some(infer_modes(ctx.program, root, adornment.clone()))
}

fn fmt_vars(vars: &[Sym]) -> String {
    let parts: Vec<String> = vars.iter().map(|v| format!("`{v}`")).collect();
    parts.join(", ")
}

/// L007: a goal that demands ground arguments is reached with unbound
/// variables — the clause is not well-moded for the analyzed adornment,
/// and at runtime the goal would throw an instantiation error (or compare
/// unbound cells by address).
pub struct WellModedness;

impl LintPass for WellModedness {
    fn name(&self) -> &'static str {
        "well-modedness"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let modes = query_modes(ctx);
        let defined = ctx.program.idb_predicates();
        for rule in &ctx.program.rules {
            // Skip rules unreachable under the query's adornment: their
            // binding pattern is unknown, not wrong.
            if let Some(m) = &modes {
                if m.get(&rule.head.key()).is_none() {
                    continue;
                }
            }
            let mut ground = initial_ground(rule, modes.as_ref());
            for lit in &rule.body {
                let is_moded_goal = lit.positive
                    && (TEST_BUILTINS.contains(&&*lit.atom.name) || &*lit.atom.name == "is");
                let before = ground.clone();
                if let Step::Unbound(missing) = step(lit, &defined, &mut ground) {
                    if !is_moded_goal {
                        continue; // negation is L008's business
                    }
                    ground = before;
                    let what = if &*lit.atom.name == "is" {
                        "arithmetic on unbound"
                    } else {
                        "comparison of unbound"
                    };
                    // Prefer the goal as written (`N > 3`) to the parsed
                    // functor form (`>(N, 3)`).
                    let shown = lit
                        .span
                        .get()
                        .and_then(|s| s.slice(ctx.src))
                        .map(str::to_string)
                        .unwrap_or_else(|| lit.atom.to_string());
                    out.push(
                        Diagnostic::new(
                            "L007",
                            Severity::Warning,
                            lit.span.get().or_else(|| rule.span.get()),
                            format!(
                                "goal `{}` is not well-moded: {what} variable{} {}",
                                shown,
                                if missing.len() == 1 { "" } else { "s" },
                                fmt_vars(&missing),
                            ),
                        )
                        .with_note(match ctx.query {
                            Some((root, a)) => format!(
                                "under the adornment propagated from {root} ({})",
                                a.0.iter()
                                    .map(|m| if *m == Mode::Bound { 'b' } else { 'f' })
                                    .collect::<String>()
                            ),
                            None => "assuming every head argument bound".to_string(),
                        }),
                    );
                }
            }
        }
    }
}

/// L008: a negated goal over variables that nothing has bound. Negation
/// as failure is only sound on ground goals; an unbound variable makes
/// the query flounder (the paper's method likewise assumes negated
/// subgoals are fully bound when reached).
pub struct UnsafeNegation;

impl LintPass for UnsafeNegation {
    fn name(&self) -> &'static str {
        "unsafe-negation"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let modes = query_modes(ctx);
        let defined = ctx.program.idb_predicates();
        for rule in &ctx.program.rules {
            if let Some(m) = &modes {
                if m.get(&rule.head.key()).is_none() {
                    continue;
                }
            }
            let mut ground = initial_ground(rule, modes.as_ref());
            for lit in &rule.body {
                let before = ground.clone();
                if let Step::Unbound(missing) = step(lit, &defined, &mut ground) {
                    ground = before;
                    if lit.positive {
                        continue; // moded builtins are L007's business
                    }
                    out.push(
                        Diagnostic::new(
                            "L008",
                            Severity::Warning,
                            lit.span.get().or_else(|| rule.span.get()),
                            format!(
                                "unsafe negation `{lit}`: variable{} {} {} unbound here",
                                if missing.len() == 1 { "" } else { "s" },
                                fmt_vars(&missing),
                                if missing.len() == 1 { "is" } else { "are" },
                            ),
                        )
                        .with_note(
                            "negation as failure is only sound on ground goals; \
                             this query flounders",
                        ),
                    );
                }
            }
        }
    }
}

/// Parse helper for tests and the CLI: `name/arity` plus a `b`/`f` string.
pub fn parse_query_spec(spec: &str, adornment: &str) -> Result<(PredKey, Adornment), String> {
    let (name, arity) = spec
        .rsplit_once('/')
        .ok_or_else(|| format!("bad query spec {spec:?} (want name/arity)"))?;
    let arity: usize = arity.parse().map_err(|_| format!("bad arity in {spec:?}"))?;
    let adornment = Adornment::parse(adornment)
        .ok_or_else(|| format!("bad adornment {adornment:?} (want e.g. \"bf\")"))?;
    if adornment.arity() != arity {
        return Err(format!(
            "adornment `{adornment}` has {} position(s) but {name}/{arity} needs {arity}",
            adornment.arity()
        ));
    }
    Ok((PredKey::new(name, arity), adornment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_source, LintOptions};

    fn moded_options(spec: &str, adn: &str) -> LintOptions {
        LintOptions { query: Some(parse_query_spec(spec, adn).unwrap()) }
    }

    #[test]
    fn comparison_on_unbound_is_l007() {
        let src = "main(Xs) :- N > 3, use(Xs, N).\nuse(_, _).\n";
        let diags = lint_source(src, &moded_options("main/1", "b"));
        let d = diags.iter().find(|d| d.code == "L007").expect("L007");
        assert!(d.message.contains("`N`"), "{}", d.message);
        assert_eq!(d.span.unwrap().slice(src), Some("N > 3"));
    }

    #[test]
    fn is_with_unbound_rhs_is_l007() {
        let src = "main(X) :- Y is X + Z, use(Y, Z).\nuse(_, _).\n";
        let diags = lint_source(src, &moded_options("main/1", "b"));
        let d = diags.iter().find(|d| d.code == "L007").expect("L007");
        assert!(d.message.contains("`Z`"), "{}", d.message);
        assert!(!d.message.contains("`X`"), "X is bound: {}", d.message);
    }

    #[test]
    fn bound_comparison_is_clean() {
        let src = "main(X, Y) :- X =< Y.\n";
        let diags = lint_source(src, &moded_options("main/2", "bb"));
        assert!(!diags.iter().any(|d| d.code == "L007"), "{diags:?}");
    }

    #[test]
    fn defined_call_grounds_its_variables() {
        // length/2 is defined, so N is ground by the time of the test.
        let src = "main(Xs) :- length(Xs, N), N > 0.\n\
                   length([], 0).\nlength([_|T], N) :- length(T, M), N is M + 1.\n";
        let diags = lint_source(src, &moded_options("main/1", "b"));
        assert!(!diags.iter().any(|d| d.code == "L007"), "{diags:?}");
    }

    #[test]
    fn negation_over_unbound_is_l008() {
        let src = "main(Xs) :- \\+ member(Y, Xs).\n\
                   member(X, [X|_]).\nmember(X, [_|T]) :- member(X, T).\n";
        let diags = lint_source(src, &moded_options("main/1", "b"));
        let d = diags.iter().find(|d| d.code == "L008").expect("L008");
        assert!(d.message.contains("`Y`"), "{}", d.message);
        assert_eq!(d.span.unwrap().slice(src), Some("\\+ member(Y, Xs)"));
    }

    #[test]
    fn ground_negation_is_safe() {
        let src = "main(X, Ys) :- \\+ member(X, Ys).\n\
                   member(X, [X|_]).\nmember(X, [_|T]) :- member(X, T).\n";
        let diags = lint_source(src, &moded_options("main/2", "bb"));
        assert!(!diags.iter().any(|d| d.code == "L008"), "{diags:?}");
    }

    #[test]
    fn zero_arity_goals_are_harmless() {
        // Zero-arity predicates have no variables to bind; neither pass
        // should trip over them (negated or not).
        let src = "go :- init, \\+ stopped, run(X), X > 0.\n\
                   init.\nstopped.\nrun(1).\n";
        let diags = lint_source(src, &moded_options("go/0", ""));
        assert!(!diags.iter().any(|d| d.code == "L008"), "{diags:?}");
        // X is grounded by run/1 (defined), so the comparison is moded.
        assert!(!diags.iter().any(|d| d.code == "L007"), "{diags:?}");
    }

    #[test]
    fn moded_lints_without_query_assume_bound_heads() {
        let src = "p(X) :- X > 0.\np(X) :- Y > X, use(Y).\nuse(_).\n";
        let diags = lint_source(src, &LintOptions::default());
        let l007: Vec<_> = diags.iter().filter(|d| d.code == "L007").collect();
        assert_eq!(l007.len(), 1, "{diags:?}");
        assert!(l007[0].message.contains("`Y`"));
    }
}
