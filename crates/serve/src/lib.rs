//! # argus-serve — a zero-dependency analysis server
//!
//! Long-lived HTTP/1.1 service over [`std::net`] exposing the `argus`
//! termination analysis:
//!
//! * `POST /v1/analyze` — program text plus options in, the stable
//!   `argus analyze --json` report out, **byte-identical** to the CLI;
//! * `POST /v1/batch` — many analyze items per request, fanned out
//!   across cores;
//! * `POST /v1/lint` — the `argus lint --json` diagnostics;
//! * `GET /healthz` and `GET /metrics` — liveness and a stable JSON
//!   counter snapshot (request counts, cache hit rates, FM totals,
//!   fixed-bucket latency histograms).
//!
//! Everything is hand-rolled on the standard library: the HTTP reader
//! ([`http`]), the strict JSON request parser ([`jsonval`]), the
//! content-addressed report cache ([`cache`]), and the metrics registry
//! ([`metrics`]). Two cache levels make repeat submissions cheap —
//! exact repeats hit the report cache and skip analysis entirely, while
//! near-repeats (edited programs sharing SCC structure) reuse per-pair
//! dual projections through a process-lifetime
//! [`argus_core::ProjectionCache`] with LRU byte-budget eviction.
//!
//! Hostile inputs are bounded on every axis: head/body caps (413 with
//! the limit echoed), slow-loris read deadlines (408), malformed JSON
//! and UTF-8 (400 with a caret diagnostic rendered by `argus-diag`),
//! depth-limited JSON parsing, a bounded accept queue (inline 503), and
//! a per-request wall-clock deadline threaded into the Fourier–Motzkin
//! engine so a runaway projection aborts mid-elimination (504, never
//! cached).

// The lone `unsafe` in the crate is the libc `signal(2)` registration in
// `server::sig` (zero-dependency SIGTERM handling).
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod jsonval;
pub mod metrics;
pub mod server;

pub use cache::{fnv1a64, ReportCache};
pub use http::{client, Limits, Request, Response};
pub use metrics::{Metrics, METRICS_SCHEMA};
pub use server::{
    install_signal_handlers, ServeOptions, Server, ServerHandle, ServerState, MAX_BATCH_ITEMS,
};
