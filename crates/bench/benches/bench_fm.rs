//! E7b — Fourier–Motzkin elimination scaling.
//!
//! FM's output can grow quadratically per eliminated variable; the paper
//! leans on it anyway because termination systems are small. This bench
//! measures projection cost against (a) the number of variables
//! eliminated and (b) the row count, on random feasible systems.

use argus_bench::workload::{random_feasible_system, rng};
use argus_linear::fm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_eliminate_vars(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm/eliminate-vars");
    group.sample_size(10);
    for nvars in [3usize, 5, 7, 9] {
        let mut r = rng(7);
        let sys = random_feasible_system(&mut r, nvars, nvars * 2, 3);
        // Keep only the first variable: eliminate nvars - 1.
        let keep: BTreeSet<usize> = [0usize].into_iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(nvars), &nvars, |b, _| {
            b.iter(|| black_box(fm::project_onto_capped(black_box(&sys), &keep, 100_000)))
        });
    }
    group.finish();
}

fn bench_eliminate_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fm/rows");
    group.sample_size(10);
    for nrows in [4usize, 8, 16, 32] {
        let mut r = rng(11);
        let sys = random_feasible_system(&mut r, 4, nrows, 3);
        let keep: BTreeSet<usize> = [0usize, 1].into_iter().collect();
        group.bench_with_input(BenchmarkId::from_parameter(nrows), &nrows, |b, _| {
            b.iter(|| black_box(fm::project_onto_capped(black_box(&sys), &keep, 100_000)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eliminate_vars, bench_eliminate_rows);
criterion_main!(benches);
