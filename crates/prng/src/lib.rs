//! # argus-prng — a tiny deterministic PRNG
//!
//! The bench workloads and the randomized differential tests need a
//! reproducible source of pseudo-random numbers but nothing resembling
//! cryptographic quality, so this crate hand-rolls an xorshift64* generator
//! (Vigna, "An experimental exploration of Marsaglia's xorshift
//! generators") instead of pulling in an external dependency. Identical
//! seeds produce identical streams on every platform: workload generation
//! and test cases are stable across runs and machines.

#![warn(missing_docs)]

/// A deterministic xorshift64* generator.
///
/// State is a single nonzero 64-bit word; the output is the state scrambled
/// by a 64-bit multiply, which fixes the weak low bits of the raw xorshift
/// sequence.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a seed. Any seed is accepted; zero (the one
    /// invalid xorshift state) is remapped to a fixed odd constant.
    pub fn new(seed: u64) -> Rng64 {
        // SplitMix64-style scrambling of the seed so that consecutive seeds
        // (0, 1, 2, …) do not produce visibly correlated streams.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng64 { state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z } }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses the widening-multiply technique (Lemire); the bias for any `n`
    /// that fits our workloads (tiny ranges) is far below anything a test
    /// could observe, so no rejection loop is needed.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "bad range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let off = (((self.next_u64() as u128).wrapping_mul(span)) >> 64) as i128;
        (lo as i128 + off) as i64
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "bad range {lo}..={hi}");
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick a uniformly random element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> =
            (0..8).map(|_| 0).scan(Rng64::new(7), |r, _| Some(r.next_u64())).collect();
        let b: Vec<u64> =
            (0..8).map(|_| 0).scan(Rng64::new(7), |r, _| Some(r.next_u64())).collect();
        assert_eq!(a, b);
        let c: Vec<u64> =
            (0..8).map(|_| 0).scan(Rng64::new(8), |r, _| Some(r.next_u64())).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Rng64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::new(123);
        for _ in 0..10_000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            let u = r.range_usize(2, 5);
            assert!((2..=5).contains(&u));
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut r = Rng64::new(99);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[(r.range_i64(-3, 3) + 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn pick_covers_slice() {
        let mut r = Rng64::new(5);
        let xs = ["a", "b", "c"];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let p = r.pick(&xs);
            seen[xs.iter().position(|x| x == p).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
