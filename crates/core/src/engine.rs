//! The termination-engine abstraction and the racing portfolio runner.
//!
//! An [`Engine`] is any procedure that, given a program, query, and
//! adornment, either *proves* top-down termination or gives up — the
//! θ-method, the size-change engine, and the `argus-baselines` methods
//! all implement it (the implementations live downstream; this module
//! only defines the contract and the runner so `argus-core` does not
//! depend on the engine crates).
//!
//! [`run_portfolio`] races a priority-ordered engine list on the `par`
//! worker pool with first-proof-wins cancellation, while keeping the
//! output a **pure function of the inputs** — byte-identical at every
//! `--jobs` setting. The trick: the *winner* is defined as the
//! lowest-priority-index engine that proves, not the first to finish;
//! engines ordered after the winner are always reported `cancelled`
//! (whether or not they happened to complete), and the shared cancel
//! flag is only raised once every engine ordered before the prover has
//! finished without proving — at that instant every still-running engine
//! is ordered after the winner, so cancellation can only discard results
//! the report was going to discard anyway. Cancellation is therefore a
//! pure efficiency knob, invisible in the output.

use crate::analyze::{AnalysisOptions, Verdict};
use crate::incremental::SccCache;
use crate::json::esc;
use argus_logic::modes::Adornment;
use argus_logic::{PredKey, Program};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// What one engine concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineVerdict {
    /// Termination proved.
    Proved,
    /// The engine cannot certify termination (sufficient methods only).
    Unknown,
    /// θ-method-specific: a zero-weight cycle — strong evidence of
    /// nontermination (§6.1).
    ZeroWeightCycle,
    /// The engine was cancelled by the portfolio before finishing.
    Cancelled,
}

impl EngineVerdict {
    /// Stable lowercase label (JSON + text).
    pub fn label(&self) -> &'static str {
        match self {
            EngineVerdict::Proved => "proved",
            EngineVerdict::Unknown => "unknown",
            EngineVerdict::ZeroWeightCycle => "zero-weight-cycle",
            EngineVerdict::Cancelled => "cancelled",
        }
    }
}

/// One engine's result: verdict, a one-line explanation, and deterministic
/// work counters for `--stats` attribution.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// The conclusion.
    pub verdict: EngineVerdict,
    /// One-line human-readable detail.
    pub detail: String,
    /// Deterministic counters (pinnable in goldens; no wall clock).
    pub stats: Vec<(&'static str, u64)>,
}

impl EngineRun {
    /// The canonical result of a cancelled run.
    pub fn cancelled() -> EngineRun {
        EngineRun {
            verdict: EngineVerdict::Cancelled,
            detail: "cancelled (portfolio winner decided)".to_string(),
            stats: Vec::new(),
        }
    }
}

/// Shared context handed to every engine run.
pub struct EngineCtx<'a> {
    /// Analysis options (norm, δ mode, FM tier, …) — engines honor the
    /// subset that applies to them.
    pub options: &'a AnalysisOptions,
    /// Cooperative cancellation flag (racing portfolio); engines should
    /// poll it at natural checkpoints and bail out with
    /// [`EngineRun::cancelled`].
    pub cancel: Option<&'a AtomicBool>,
    /// Shared per-SCC memo (the incremental-analysis layer). Engines that
    /// route through the θ pipeline thread it into
    /// [`crate::analyze_with_caches`]; the rest ignore it. Memoized runs
    /// render byte-identical reports, so this is invisible in the output.
    pub scc_memo: Option<&'a SccCache>,
}

impl EngineCtx<'_> {
    /// Has cancellation been signalled?
    pub fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|c| c.load(Ordering::Relaxed))
    }
}

/// A termination-proving engine.
pub trait Engine: Send + Sync {
    /// Stable machine id (`theta`, `sct`, `bs`, `uvg`, `naish`) — the CLI
    /// `--engine` value and the serve cache-key component.
    fn id(&self) -> &'static str;
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// Run the engine on one (program, query, adornment) instance.
    fn run(
        &self,
        program: &Program,
        query: &PredKey,
        adornment: &Adornment,
        ctx: &EngineCtx<'_>,
    ) -> EngineRun;
}

/// One row of a portfolio (or single-engine) report.
#[derive(Debug, Clone)]
pub struct EngineEntry {
    /// Engine id.
    pub id: &'static str,
    /// Engine display name.
    pub name: &'static str,
    /// What it concluded.
    pub run: EngineRun,
}

/// The combined result of running one or more engines on one instance.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// The query predicate, as given.
    pub query: PredKey,
    /// The query adornment.
    pub adornment: Adornment,
    /// Per-engine results, in priority order.
    pub entries: Vec<EngineEntry>,
    /// Index into `entries` of the winning (lowest-priority proving)
    /// engine, if any engine proved.
    pub winner: Option<usize>,
    /// Overall verdict: `Terminates` when any engine proved, otherwise
    /// the θ-method's zero-weight-cycle evidence if present, otherwise
    /// `Unknown`.
    pub verdict: Verdict,
}

impl PortfolioReport {
    /// The winning engine's id, if any.
    pub fn winner_id(&self) -> Option<&'static str> {
        self.winner.map(|i| self.entries[i].id)
    }

    /// Render as `argus-engine/v1` JSON (no trailing newline). `stats`
    /// includes the per-engine counter objects.
    pub fn to_json(&self, stats: bool) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":\"argus-engine/v1\",\"query\":\"{}\",\"adornment\":\"{}\",",
            esc(&self.query.to_string()),
            esc(&self.adornment.to_string()),
        );
        let _ = write!(out, "\"verdict\":\"{}\",", verdict_label(self.verdict));
        match self.winner_id() {
            Some(id) => {
                let _ = write!(out, "\"winner\":\"{id}\",");
            }
            None => out.push_str("\"winner\":null,"),
        }
        out.push_str("\"engines\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":\"{}\",\"name\":\"{}\",\"verdict\":\"{}\",\"detail\":\"{}\"",
                e.id,
                esc(e.name),
                e.run.verdict.label(),
                esc(&e.run.detail),
            );
            if stats {
                out.push_str(",\"stats\":{");
                for (j, (k, v)) in e.run.stats.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":{v}");
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Deterministic per-engine counter lines for text-mode `--stats`.
    /// Engines with no counters (the baselines, cancelled runs) are
    /// omitted; nothing here touches the wall clock.
    pub fn render_stats(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            if e.run.stats.is_empty() {
                continue;
            }
            let _ = write!(out, "stats[{}]:", e.id);
            for (k, v) in &e.run.stats {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        out
    }
}

/// Stable lowercase verdict label shared with the engine JSON.
fn verdict_label(v: Verdict) -> &'static str {
    match v {
        Verdict::Terminates => "terminates",
        Verdict::Unknown => "unknown",
        Verdict::ZeroWeightCycle => "zero-weight-cycle",
    }
}

impl fmt::Display for PortfolioReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "query: {} — verdict: {:?}{}",
            self.query,
            self.verdict,
            match self.winner_id() {
                Some(id) => format!(" (winner: {id})"),
                None => String::new(),
            }
        )?;
        for e in &self.entries {
            writeln!(f, "  {:<6} {:<18} {}", e.id, e.run.verdict.label(), e.run.detail)?;
        }
        Ok(())
    }
}

/// Run `engines` (in priority order) on one instance, racing them across
/// the worker pool with first-proof-wins cancellation. See the module
/// docs for why the output is byte-identical at every `jobs` setting.
///
/// `race: false` disables cancellation and the loser rewrite — every
/// engine runs to completion and reports its real verdict. The fuzz
/// portfolio oracle uses this mode: it needs all verdicts to cross-check,
/// not just the winner's.
pub fn run_portfolio(
    engines: &[Box<dyn Engine>],
    program: &Program,
    query: &PredKey,
    adornment: &Adornment,
    options: &AnalysisOptions,
    jobs: usize,
    race: bool,
) -> PortfolioReport {
    run_portfolio_with_memo(engines, program, query, adornment, options, jobs, race, None)
}

/// [`run_portfolio`] with a shared per-SCC memo handed to every engine
/// context (the incremental-analysis layer). Memoized engine runs render
/// the same bytes as cold runs, so the memo is invisible in the report.
#[allow(clippy::too_many_arguments)]
pub fn run_portfolio_with_memo(
    engines: &[Box<dyn Engine>],
    program: &Program,
    query: &PredKey,
    adornment: &Adornment,
    options: &AnalysisOptions,
    jobs: usize,
    race: bool,
    scc_memo: Option<&SccCache>,
) -> PortfolioReport {
    // Engine completion states, indexed like `engines`.
    const RUNNING: u8 = 0;
    const DONE_PROVED: u8 = 1;
    const DONE_OTHER: u8 = 2;
    let states: Vec<AtomicU8> = engines.iter().map(|_| AtomicU8::new(RUNNING)).collect();
    let cancel = AtomicBool::new(false);

    let indices: Vec<usize> = (0..engines.len()).collect();
    let workers = crate::par::effective_workers(jobs, indices.len());
    let runs = crate::par::par_map_indexed(&indices, workers, |_, &i| {
        let ctx = EngineCtx { options, cancel: if race { Some(&cancel) } else { None }, scc_memo };
        let run = if race && ctx.cancelled() {
            EngineRun::cancelled()
        } else {
            engines[i].run(program, query, adornment, &ctx)
        };
        let state = if run.verdict == EngineVerdict::Proved { DONE_PROVED } else { DONE_OTHER };
        states[i].store(state, Ordering::SeqCst);
        if race {
            // Raise the cancel flag only once the winner is *known*: the
            // lowest-index prover behind a fully-finished non-proving
            // prefix. Every engine still running then sits after the
            // winner and would be reported `cancelled` regardless.
            for s in &states {
                match s.load(Ordering::SeqCst) {
                    RUNNING => break,
                    DONE_PROVED => {
                        cancel.store(true, Ordering::SeqCst);
                        break;
                    }
                    _ => continue,
                }
            }
        }
        run
    });

    // Deterministic post-processing on the in-order results.
    let winner = runs.iter().position(|r| r.verdict == EngineVerdict::Proved);
    let entries: Vec<EngineEntry> = engines
        .iter()
        .zip(runs)
        .enumerate()
        .map(|(i, (e, run))| {
            let run = match winner {
                // Engines ordered after the winner always report
                // `cancelled`, whether or not they really were: the
                // report must not depend on scheduling.
                Some(w) if race && i > w => EngineRun::cancelled(),
                _ => run,
            };
            EngineEntry { id: e.id(), name: e.name(), run }
        })
        .collect();
    let verdict = if winner.is_some() {
        Verdict::Terminates
    } else if entries.iter().any(|e| e.run.verdict == EngineVerdict::ZeroWeightCycle) {
        Verdict::ZeroWeightCycle
    } else {
        Verdict::Unknown
    };
    PortfolioReport { query: query.clone(), adornment: adornment.clone(), entries, winner, verdict }
}
