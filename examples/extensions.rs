//! The three extensions beyond the paper, in action.
//!
//! ```sh
//! cargo run --release --example extensions
//! ```
//!
//! 1. **Norms**: a program provable only under the list-length measure.
//! 2. **Lexicographic ranking**: Ackermann, beyond any single linear
//!    combination (§7), proved with a two-level tuple.
//! 3. **Certificates**: the proof re-verified on the primal side, and a
//!    failure explained by a Farkas refutation.

use argus::logic::Norm;
use argus::prelude::*;

fn main() {
    // 1. Norm sensitivity ---------------------------------------------------
    println!("== 1. term-size norms ==");
    let fusion = "p([]).\np([X]).\np([X, Y|Xs]) :- p([f(X, Y)|Xs]).";
    let program = parse_program(fusion).unwrap();
    let query = PredKey::new("p", 1);
    let adn = Adornment::parse("b").unwrap();
    for norm in [Norm::StructuralSize, Norm::ListLength] {
        let report = analyze(
            &program,
            &query,
            adn.clone(),
            &AnalysisOptions { norm, ..AnalysisOptions::default() },
        );
        println!("  {:16} -> {:?}", norm.name(), report.verdict);
    }
    println!(
        "  ([X, Y|Xs] -> [f(X, Y)|Xs] keeps the structural size but shortens\n   \
         the list: only the list-length norm sees the descent)\n"
    );

    // 2. Lexicographic ranking ---------------------------------------------
    println!("== 2. lexicographic ranking (Ackermann) ==");
    let ack = "ack(z, N, s(N)).\n\
               ack(s(M), z, R) :- ack(M, s(z), R).\n\
               ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).";
    let program = parse_program(ack).unwrap();
    let query = PredKey::new("ack", 3);
    let adn = Adornment::parse("bbf").unwrap();
    let base = analyze(&program, &query, adn.clone(), &AnalysisOptions::default());
    println!("  single combination (the paper): {:?}", base.verdict);
    let lex = analyze(
        &program,
        &query,
        adn,
        &AnalysisOptions { lexicographic: true, ..AnalysisOptions::default() },
    );
    println!("  lexicographic tuple:            {:?}", lex.verdict);
    for scc in &lex.sccs {
        if let argus::core::SccOutcome::ProvedLexicographic { proof } = &scc.outcome {
            println!("  ranking has {} levels:", proof.levels.len());
            for (i, level) in proof.levels.iter().enumerate() {
                for (p, th) in level {
                    let s: Vec<String> = th.iter().map(|r| r.to_string()).collect();
                    println!("    level {}: theta[{p}] = ({})", i + 1, s.join(", "));
                }
            }
        }
    }
    println!();

    // 3. Certificates -------------------------------------------------------
    println!("== 3. certificates ==");
    let perm = argus::corpus::find("perm").unwrap();
    let program = perm.program().unwrap();
    let (query, adn) = perm.query_key();
    let report = analyze(&program, &query, adn, &AnalysisOptions::default());
    match argus::core::verify_report(&report, Norm::StructuralSize) {
        Ok(n) => println!("  perm proof re-verified on the primal side ({n} LP checks)"),
        Err(e) => println!("  UNEXPECTED: {e}"),
    }
    let looped = argus::corpus::find("loop_direct").unwrap();
    let program = looped.program().unwrap();
    let (query, adn) = looped.query_key();
    let report = analyze(&program, &query, adn, &AnalysisOptions::default());
    for scc in &report.sccs {
        match scc.verify_refutation() {
            Some(true) => println!(
                "  loop_direct failure carries a VERIFIED Farkas refutation of its θ system"
            ),
            Some(false) => println!("  UNEXPECTED: invalid refutation"),
            None => {}
        }
    }
}
