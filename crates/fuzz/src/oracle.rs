//! The three soundness oracles run against every generated case.
//!
//! 1. **Differential soundness** — when the analyzer claims `Terminates`,
//!    the SLD interpreter must complete every bounded ground query of the
//!    claimed mode within budget. Budget exhaustion is an unbounded
//!    derivation witness and a hard violation.
//! 2. **Certificate cross-check** — every `Terminates` report must pass
//!    the independent primal checker [`argus_core::verify_report`]; and an
//!    `Unknown` verdict should not be refutable by a brute-force search
//!    over small-coefficient θ witnesses (that would mean the LP pipeline
//!    missed a proof the certificate checker accepts — completeness drift,
//!    reported warn-only).
//! 3. **Metamorphic invariance** — the verdict is a semantic property, so
//!    it must survive rule shuffling, predicate renaming, variable
//!    renaming, and consistent argument permutation; and the report JSON
//!    must be byte-identical across analysis parallelism settings.

use crate::gen::{ground_inputs, ground_query, GenCase};
use argus_core::{
    analyze, analyze_with_caches, infer_conditions, verify_report, AnalysisOptions,
    BackwardsOptions, SccCache, SccOutcome, TerminationReport, Verdict,
};
use argus_interp::sld::{solve, InterpOptions};
use argus_linear::Rat;
use argus_logic::modes::Adornment;
use argus_logic::program::{Atom, Literal, PredKey, Program, Rule};
use argus_logic::term::Term;
use argus_prng::Rng64;
use std::collections::BTreeMap;

/// What a failed oracle reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// `Terminates` was claimed but a bounded ground query exhausted the
    /// interpreter budget.
    Soundness,
    /// `Terminates` was claimed but the certificate checker rejected the
    /// witness.
    Certificate,
    /// A semantics-preserving transformation changed the verdict.
    Metamorphic,
    /// Report JSON differed across parallelism settings.
    JobsDivergence,
    /// A running `argus serve` instance returned a response that is not
    /// byte-identical to the local report (or failed the round-trip).
    ServeDivergence,
    /// Backwards inference produced a disjunct the forward analyzer, the
    /// certificate checker, or the SLD interpreter does not confirm.
    InferSoundness,
    /// An engine in the portfolio claimed a termination proof that the
    /// differential interpreter check refutes, or that contradicts the
    /// θ-method's zero-weight-cycle evidence.
    Portfolio,
    /// A re-analysis through the per-SCC incremental memo produced a
    /// report that is not byte-identical to a from-scratch analysis of
    /// the same (edited) program.
    IncrementalDivergence,
}

impl ViolationKind {
    /// Stable lowercase label used in JSON and repro headers.
    pub fn label(&self) -> &'static str {
        match self {
            ViolationKind::Soundness => "soundness",
            ViolationKind::Certificate => "certificate",
            ViolationKind::Metamorphic => "metamorphic",
            ViolationKind::JobsDivergence => "jobs-divergence",
            ViolationKind::ServeDivergence => "serve-divergence",
            ViolationKind::InferSoundness => "infer-soundness",
            ViolationKind::Portfolio => "portfolio",
            ViolationKind::IncrementalDivergence => "incremental-divergence",
        }
    }
}

/// Interpreter budget used by the differential oracle.
pub fn interp_options(max_steps: u64) -> InterpOptions {
    InterpOptions { max_steps, ..InterpOptions::default() }
}

/// Analysis options used inside the harness: sequential (case-level
/// parallelism lives in the runner), otherwise defaults.
pub fn analysis_options() -> AnalysisOptions {
    AnalysisOptions { parallelism: 1, ..AnalysisOptions::default() }
}

/// Why the serve round-trip oracle failed.
#[derive(Debug, Clone)]
pub enum ServeCheckFailure {
    /// The HTTP round-trip itself failed (connect, IO, non-200). Treated
    /// as a violation in a run, but not replayed by the shrinker.
    Transport(String),
    /// The server answered 200 with bytes that differ from the local
    /// report.
    Divergence(String),
}

/// Oracle 4 (opt-in, `--serve ADDR`): a running `argus serve` instance
/// must return the byte-identical `analyze --json` report for this case.
///
/// The request carries no option keys, so the server applies its
/// defaults — which match [`analysis_options`] (`parallelism` differs,
/// but the report is byte-identical at every parallelism setting by the
/// jobs-divergence oracle's invariant).
pub fn check_serve(
    program: &Program,
    query: &PredKey,
    adornment: &Adornment,
    report: &TerminationReport,
    addr: &str,
) -> Result<(), ServeCheckFailure> {
    use argus_serve::jsonval::json_str;
    let src = program.to_string();
    let body = format!(
        "{{\"program\":{},\"query\":{},\"adornment\":{}}}",
        json_str(&src),
        json_str(&query.to_string()),
        json_str(&adornment.to_string()),
    );
    let resp = argus_serve::client::request_once(
        addr,
        "POST",
        "/v1/analyze",
        body.as_bytes(),
        std::time::Duration::from_secs(30),
    )
    .map_err(|e| ServeCheckFailure::Transport(format!("serve round-trip failed: {e}")))?;
    if resp.status != 200 {
        return Err(ServeCheckFailure::Transport(format!(
            "serve returned {} for a valid case: {}",
            resp.status,
            String::from_utf8_lossy(&resp.body).trim_end()
        )));
    }
    let expected = format!("{}\n", report.to_json());
    if resp.body == expected.as_bytes() {
        return Ok(());
    }
    // Rule out a Display→parse round-trip artifact (the server analyzed
    // the *printed* program) before calling it a divergence.
    let reparsed = match argus_logic::parser::parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            return Err(ServeCheckFailure::Divergence(format!(
                "program text does not reparse locally: {e}"
            )))
        }
    };
    let local = analyze(&reparsed, query, adornment.clone(), &analysis_options());
    let expected2 = format!("{}\n", local.to_json());
    if resp.body == expected2.as_bytes() {
        return Ok(());
    }
    Err(ServeCheckFailure::Divergence(format!(
        "serve response ({} bytes) differs from the local report ({} bytes)",
        resp.body.len(),
        expected.len()
    )))
}

/// Oracle 1: every bounded ground query of the claimed mode completes.
/// Returns the offending query on failure.
pub fn check_differential(
    program: &Program,
    query: &PredKey,
    max_steps: u64,
) -> Result<(), String> {
    let opts = interp_options(max_steps);
    for input in ground_inputs() {
        let goals = ground_query(query, input);
        let out = solve(program, &goals, &opts);
        if !out.terminated() {
            return Err(format!(
                "query `{}` exhausted the {}-step budget",
                goals[0].atom, opts.max_steps
            ));
        }
    }
    Ok(())
}

/// Like [`check_differential`] but for an arbitrary adornment: ground
/// terms at every bound position (rotating through the input pool so the
/// positions get distinct shapes), fresh variables at the free ones. A
/// fully-free adornment — the `true` condition — is one all-free query.
pub fn check_differential_adorned(
    program: &Program,
    query: &PredKey,
    adornment: &Adornment,
    max_steps: u64,
) -> Result<(), String> {
    let opts = interp_options(max_steps);
    let inputs = ground_inputs();
    let bound = adornment.bound_positions();
    let rounds = if bound.is_empty() { 1 } else { inputs.len() };
    for k in 0..rounds {
        let args: Vec<Term> = (0..adornment.arity())
            .map(|j| match bound.iter().position(|&b| b == j) {
                Some(slot) => inputs[(k + slot) % inputs.len()].clone(),
                None => Term::var(format!("Out{j}")),
            })
            .collect();
        let goals = vec![Literal::pos(Atom::new(query.name.as_ref(), args))];
        let out = solve(program, &goals, &opts);
        if !out.terminated() {
            return Err(format!(
                "query `{}` exhausted the {}-step budget",
                goals[0].atom, opts.max_steps
            ));
        }
    }
    Ok(())
}

/// Oracle 5 (opt-in, `--infer`): every disjunct of every inferred
/// termination condition must be independently confirmed — the forward
/// analyzer proves it, the certificate checker accepts the proof, and
/// the SLD interpreter completes every bounded query of that adornment.
pub fn check_infer(program: &Program, max_steps: u64) -> Result<(), String> {
    let bopts = BackwardsOptions { analysis: analysis_options(), ..BackwardsOptions::default() };
    let inferred = infer_conditions(program, &bopts);
    let aopts = analysis_options();
    for cond in &inferred.conditions {
        for adn in cond.disjunct_adornments() {
            let report = analyze(program, &cond.pred, adn.clone(), &aopts);
            if report.verdict != Verdict::Terminates {
                return Err(format!(
                    "inferred disjunct `{adn}` of {} is not forward-provable ({:?})",
                    cond.pred, report.verdict
                ));
            }
            if let Err(e) = verify_report(&report, aopts.norm) {
                return Err(format!(
                    "certificate for inferred disjunct `{adn}` of {} rejected: {e}",
                    cond.pred
                ));
            }
            check_differential_adorned(program, &cond.pred, &adn, max_steps)
                .map_err(|e| format!("inferred disjunct `{adn}` of {} diverges: {e}", cond.pred))?;
        }
    }
    Ok(())
}

/// Oracle 6 (opt-in, `--portfolio`): run every registered engine on the
/// case (un-raced, so every verdict is real) and cross-check the proofs.
///
/// The engines prove *incomparable* program classes, so a plain
/// `Terminates`-vs-`Unknown` disagreement is expected — it is the whole
/// point of racing them. Only two outcomes are violations:
///
/// * an engine claims a proof but a bounded ground evaluation of the
///   claimed mode exhausts the interpreter budget (per-engine
///   differential soundness), or
/// * an engine claims a proof while the θ-method exhibits a zero-weight
///   cycle — a concrete witness that some recursion path never shrinks
///   any bound argument, which no sound engine may contradict.
pub fn check_portfolio(
    program: &Program,
    query: &PredKey,
    adornment: &Adornment,
    theta_verdict: Verdict,
    max_steps: u64,
) -> Result<(), String> {
    let engines = argus_baselines::standard_engines();
    let report = argus_core::run_portfolio(
        &engines,
        program,
        query,
        adornment,
        &analysis_options(),
        1,
        false,
    );
    let provers: Vec<&str> = report
        .entries
        .iter()
        .filter(|e| e.run.verdict == argus_core::EngineVerdict::Proved)
        .map(|e| e.id)
        .collect();
    if provers.is_empty() {
        return Ok(());
    }
    if theta_verdict == Verdict::ZeroWeightCycle {
        return Err(format!(
            "engine(s) {} proved termination but the theta-method found a zero-weight cycle",
            provers.join("/")
        ));
    }
    check_differential_adorned(program, query, adornment, max_steps).map_err(|e| {
        format!("engine(s) {} proved termination but evaluation diverges: {e}", provers.join("/"))
    })
}

/// Oracle 7 (opt-in, `--incremental`): the per-SCC memo must be invisible
/// in the output under an edit stream. Starting from the generated
/// program, apply single-clause edits (delete rule `i`, then restore it)
/// one step at a time, re-analyzing after each step against one
/// persistent memo, and require the report — default text and JSON — to
/// be byte-identical to a from-scratch analysis at every step. The
/// restore step re-analyzes the unedited program through a memo that now
/// also holds entries for every edited variant, so stale-entry reuse and
/// key collisions both surface as divergences.
pub fn check_incremental(
    program: &Program,
    query: &PredKey,
    adornment: &Adornment,
) -> Result<(), String> {
    let opts = analysis_options();
    let memo = SccCache::unbounded();
    let render = |r: &TerminationReport| (r.to_string(), r.to_json());
    let cold = render(&analyze(program, query, adornment.clone(), &opts));
    let warm =
        render(&analyze_with_caches(program, query, adornment.clone(), &opts, None, Some(&memo)));
    if cold != warm {
        return Err("memoized report differs from cold on the unedited program".to_string());
    }
    for i in 0..program.rules.len() {
        let mut rules = program.rules.clone();
        rules.remove(i);
        let edited = Program::from_rules(rules);
        let cold_e = render(&analyze(&edited, query, adornment.clone(), &opts));
        let incr_e = render(&analyze_with_caches(
            &edited,
            query,
            adornment.clone(),
            &opts,
            None,
            Some(&memo),
        ));
        if cold_e != incr_e {
            return Err(format!("incremental report diverges after deleting clause {i}"));
        }
        let undo = render(&analyze_with_caches(
            program,
            query,
            adornment.clone(),
            &opts,
            None,
            Some(&memo),
        ));
        if cold != undo {
            return Err(format!("incremental report diverges after restoring clause {i}"));
        }
    }
    Ok(())
}

/// Oracle 2a: a `Terminates` report must pass the certificate checker.
pub fn check_certificate(report: &TerminationReport, opts: &AnalysisOptions) -> Result<(), String> {
    verify_report(report, opts.norm).map(|_| ()).map_err(|e| e.to_string())
}

/// Oracle 2b (warn-only): brute-force small θ witnesses for unproved SCCs.
///
/// For every `NoLinearDecrease` SCC small enough to enumerate, try each
/// θ ∈ {0, 1, 2}^bound-args with δ = 1 on every intra-SCC edge, and ask the
/// *certificate checker* whether it would accept. Acceptance means the LP
/// pipeline failed to find a proof the independent checker can validate —
/// completeness drift worth a warning, not a failure (the analyzer is only
/// claimed sound, not complete).
pub fn theta_refutes_unknown(report: &TerminationReport, opts: &AnalysisOptions) -> Option<String> {
    for (si, scc) in report.sccs.iter().enumerate() {
        if !matches!(scc.outcome, SccOutcome::NoLinearDecrease { .. }) {
            continue;
        }
        if scc.members.len() > 2 {
            continue;
        }
        let bound_args: Vec<(PredKey, usize)> = scc
            .members
            .iter()
            .map(|p| {
                let n = report.modes.get(p).map(|a| a.bound_positions().len()).unwrap_or(0);
                (p.clone(), n)
            })
            .collect();
        let total: usize = bound_args.iter().map(|(_, n)| n).sum();
        if total == 0 || total > 3 {
            continue;
        }
        // δ = 1 on every ordered pair of members (covers every edge the
        // checker can look up, and makes every cycle positive).
        let mut deltas: BTreeMap<(PredKey, PredKey), Rat> = BTreeMap::new();
        for a in &scc.members {
            for b in &scc.members {
                deltas.insert((a.clone(), b.clone()), Rat::one());
            }
        }
        let mut coeffs = vec![0u8; total];
        loop {
            if coeffs.iter().any(|&c| c > 0) {
                let mut witness: BTreeMap<PredKey, Vec<Rat>> = BTreeMap::new();
                let mut k = 0;
                for (p, n) in &bound_args {
                    let v: Vec<Rat> =
                        (0..*n).map(|j| Rat::from_int(i64::from(coeffs[k + j]))).collect();
                    witness.insert(p.clone(), v);
                    k += n;
                }
                let mut patched = report.clone();
                patched.sccs[si].outcome =
                    SccOutcome::Proved { witness: witness.clone(), deltas: deltas.clone() };
                if verify_report(&patched, opts.norm).is_ok() {
                    return Some(format!(
                        "SCC {{{}}} reported NoLinearDecrease but θ = {:?} certifies",
                        scc.members.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", "),
                        coeffs
                    ));
                }
            }
            // Odometer over {0, 1, 2}^total.
            let mut i = 0;
            loop {
                if i == coeffs.len() {
                    return None;
                }
                if coeffs[i] < 2 {
                    coeffs[i] += 1;
                    break;
                }
                coeffs[i] = 0;
                i += 1;
            }
        }
    }
    None
}

/// The metamorphic transformations, applied deterministically from a
/// dedicated rng so the shrinker can re-derive them per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// Fisher–Yates shuffle of the rule list.
    ShuffleRules,
    /// Rename every IDB/EDB predicate (`p` → `p_mr`), including the query.
    RenamePredicates,
    /// Rename every variable in every rule (`X` → `X_mv`).
    RenameVariables,
    /// Apply one consistent argument permutation per predicate, permuting
    /// the query adornment the same way.
    PermuteArguments,
}

/// All transforms, in the order the oracle applies them.
pub const TRANSFORMS: &[Transform] = &[
    Transform::ShuffleRules,
    Transform::RenamePredicates,
    Transform::RenameVariables,
    Transform::PermuteArguments,
];

impl Transform {
    /// Stable label for JSON/violation messages.
    pub fn label(&self) -> &'static str {
        match self {
            Transform::ShuffleRules => "shuffle-rules",
            Transform::RenamePredicates => "rename-predicates",
            Transform::RenameVariables => "rename-variables",
            Transform::PermuteArguments => "permute-arguments",
        }
    }

    /// Apply the transform, returning the transformed program, query, and
    /// adornment.
    pub fn apply(
        &self,
        r: &mut Rng64,
        program: &Program,
        query: &PredKey,
        adornment: &Adornment,
    ) -> (Program, PredKey, Adornment) {
        match self {
            Transform::ShuffleRules => {
                let mut rules = program.rules.clone();
                for i in (1..rules.len()).rev() {
                    let j = r.below(i as u64 + 1) as usize;
                    rules.swap(i, j);
                }
                (Program::from_rules(rules), query.clone(), adornment.clone())
            }
            Transform::RenamePredicates => {
                let rename = |a: &Atom| Atom::new(format!("{}_mr", a.name), a.args.clone());
                let rules = program
                    .rules
                    .iter()
                    .map(|rule| {
                        Rule::new(
                            rename(&rule.head),
                            rule.body
                                .iter()
                                .map(|l| {
                                    let atom = rename(&l.atom);
                                    if l.positive {
                                        Literal::pos(atom)
                                    } else {
                                        Literal::neg(atom)
                                    }
                                })
                                .collect(),
                        )
                    })
                    .collect();
                (
                    Program::from_rules(rules),
                    PredKey::new(format!("{}_mr", query.name), query.arity),
                    adornment.clone(),
                )
            }
            Transform::RenameVariables => {
                let rules = program.rules.iter().map(|rule| rule.rename_suffix("_mv")).collect();
                (Program::from_rules(rules), query.clone(), adornment.clone())
            }
            Transform::PermuteArguments => {
                // One permutation per predicate (keyed by name/arity).
                let mut perms: BTreeMap<PredKey, Vec<usize>> = BTreeMap::new();
                for p in program.all_predicates() {
                    let mut perm: Vec<usize> = (0..p.arity).collect();
                    for i in (1..perm.len()).rev() {
                        let j = r.below(i as u64 + 1) as usize;
                        perm.swap(i, j);
                    }
                    perms.insert(p, perm);
                }
                let permute = |a: &Atom| -> Atom {
                    match perms.get(&a.key()) {
                        Some(perm) => Atom::new(
                            a.name.as_ref(),
                            perm.iter().map(|&i| a.args[i].clone()).collect(),
                        ),
                        None => a.clone(),
                    }
                };
                let rules = program
                    .rules
                    .iter()
                    .map(|rule| {
                        Rule::new(
                            permute(&rule.head),
                            rule.body
                                .iter()
                                .map(|l| {
                                    let atom = permute(&l.atom);
                                    if l.positive {
                                        Literal::pos(atom)
                                    } else {
                                        Literal::neg(atom)
                                    }
                                })
                                .collect(),
                        )
                    })
                    .collect();
                let adorned = match perms.get(query) {
                    Some(perm) => Adornment(perm.iter().map(|&i| adornment.0[i]).collect()),
                    None => adornment.clone(),
                };
                (Program::from_rules(rules), query.clone(), adorned)
            }
        }
    }
}

/// Oracle 3: run every metamorphic transform and compare verdicts; also
/// compare report JSON across parallelism 1 vs 2. Returns the first
/// violation as `(kind, detail)`.
pub fn check_metamorphic(
    case: &GenCase,
    base: &TerminationReport,
    transform_seed: u64,
) -> Result<(), (ViolationKind, String)> {
    let opts = analysis_options();
    for (ti, t) in TRANSFORMS.iter().enumerate() {
        let mut r = Rng64::new(transform_seed.wrapping_add(ti as u64));
        let (p2, q2, a2) = t.apply(&mut r, &case.program, &case.query, &case.adornment);
        let report2 = analyze(&p2, &q2, a2, &opts);
        if report2.verdict != base.verdict {
            return Err((
                ViolationKind::Metamorphic,
                format!(
                    "{}: verdict changed {:?} -> {:?}",
                    t.label(),
                    base.verdict,
                    report2.verdict
                ),
            ));
        }
        // A proof must stay checkable after the transform.
        if report2.verdict == Verdict::Terminates {
            if let Err(e) = verify_report(&report2, opts.norm) {
                return Err((
                    ViolationKind::Metamorphic,
                    format!("{}: transformed certificate rejected: {e}", t.label()),
                ));
            }
        }
    }
    // Parallelism invariance of the report artifact itself.
    let mut par2 = analysis_options();
    par2.parallelism = 2;
    let report_par = analyze(&case.program, &case.query, case.adornment.clone(), &par2);
    if report_par.to_json() != base.to_json() {
        return Err((
            ViolationKind::JobsDivergence,
            "report JSON differs between --jobs 1 and --jobs 2".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenOptions};

    #[test]
    fn transforms_preserve_parse_and_shape() {
        let mut r = Rng64::new(5);
        let case = generate(&mut r, &GenOptions::default());
        for t in TRANSFORMS {
            let mut tr = Rng64::new(99);
            let (p, q, a) = t.apply(&mut tr, &case.program, &case.query, &case.adornment);
            assert_eq!(p.rules.len(), case.program.rules.len(), "{}", t.label());
            assert_eq!(a.arity(), q.arity, "{}", t.label());
            // The transformed program still parses back from its printed form.
            let printed = p.to_string();
            argus_logic::parser::parse_program(&printed)
                .unwrap_or_else(|e| panic!("{}: {e}\n{printed}", t.label()));
        }
    }

    #[test]
    fn transforms_are_deterministic() {
        let mut r = Rng64::new(6);
        let case = generate(&mut r, &GenOptions::default());
        for t in TRANSFORMS {
            let (p1, ..) = t.apply(&mut Rng64::new(3), &case.program, &case.query, &case.adornment);
            let (p2, ..) = t.apply(&mut Rng64::new(3), &case.program, &case.query, &case.adornment);
            assert_eq!(p1, p2, "{}", t.label());
        }
    }
}
