//! The parallel analysis pipeline must be invisible in the output: for any
//! worker count, the report — human-readable text AND machine JSON — must
//! be byte-identical to the fully sequential run. SCC results are computed
//! level-concurrently but emitted in the sequential bottom-up order, and
//! per-pair projections truncate at the first failure exactly like the
//! sequential early-break, so nothing downstream can tell the difference.

use argus::prelude::*;

fn render(report: &TerminationReport) -> (String, String) {
    (report.to_string(), report.to_json())
}

fn analyze_with_jobs(
    entry: &argus::corpus::CorpusEntry,
    options: &AnalysisOptions,
) -> (String, String) {
    let program = entry.program().unwrap();
    let (query, adornment) = entry.query_key();
    render(&analyze(&program, &query, adornment, options))
}

/// Every corpus entry, default options: `--jobs 4` == `--jobs 1`, byte for
/// byte, on both the Display text and the JSON report.
#[test]
fn corpus_reports_identical_across_worker_counts() {
    for entry in argus::corpus::corpus() {
        let seq =
            analyze_with_jobs(&entry, &AnalysisOptions { parallelism: 1, ..Default::default() });
        for jobs in [2, 4] {
            let par = analyze_with_jobs(
                &entry,
                &AnalysisOptions { parallelism: jobs, ..Default::default() },
            );
            assert_eq!(seq.0, par.0, "{}: text differs at --jobs {jobs}", entry.name);
            assert_eq!(seq.1, par.1, "{}: JSON differs at --jobs {jobs}", entry.name);
        }
    }
}

/// The non-default analysis paths (Appendix C δ variables, lexicographic
/// fallback, list-length norm) go through the same fan-out points and must
/// be deterministic too.
#[test]
fn variant_options_identical_across_worker_counts() {
    let variants = [
        AnalysisOptions { delta_mode: DeltaMode::PathConstraints, ..Default::default() },
        AnalysisOptions { lexicographic: true, ..Default::default() },
        AnalysisOptions { norm: argus::logic::Norm::ListLength, ..Default::default() },
    ];
    for entry in argus::corpus::corpus() {
        for variant in &variants {
            let seq =
                analyze_with_jobs(&entry, &AnalysisOptions { parallelism: 1, ..variant.clone() });
            let par =
                analyze_with_jobs(&entry, &AnalysisOptions { parallelism: 4, ..variant.clone() });
            assert_eq!(seq, par, "{}: variant {variant:?} differs at --jobs 4", entry.name);
        }
    }
}

/// Certificates produced under parallel analysis verify exactly like the
/// sequential ones (the witness/refutation objects are identical).
#[test]
fn certificates_survive_parallel_analysis() {
    for entry in argus::corpus::corpus() {
        let options = AnalysisOptions { parallelism: 4, ..Default::default() };
        let program = entry.program().unwrap();
        let (query, adornment) = entry.query_key();
        let report = analyze(&program, &query, adornment, &options);
        if report.verdict == Verdict::Terminates {
            argus::core::verify_report(&report, options.norm).unwrap_or_else(|e| {
                panic!("{}: certificate rejected under --jobs 4: {e}", entry.name)
            });
        }
        for scc in &report.sccs {
            if let Some(ok) = scc.verify_refutation() {
                assert!(ok, "{}: Farkas refutation failed to verify under --jobs 4", entry.name);
            }
        }
    }
}

/// The example program shipped in `examples/` analyzes identically at any
/// worker count, under both text and JSON rendering.
#[test]
fn example_file_identical_across_worker_counts() {
    let src =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/lint_demo.pl"))
            .expect("examples/lint_demo.pl");
    let program = argus::logic::parser::parse_program(&src).unwrap();
    // Analyze every IDB predicate with an all-bound adornment: exercises
    // multi-SCC level scheduling on a real file.
    for pred in program.idb_predicates() {
        let adornment = Adornment::parse(&"b".repeat(pred.arity)).unwrap();
        let seq = render(&analyze(
            &program,
            &pred,
            adornment.clone(),
            &AnalysisOptions { parallelism: 1, ..Default::default() },
        ));
        let par = render(&analyze(
            &program,
            &pred,
            adornment,
            &AnalysisOptions { parallelism: 4, ..Default::default() },
        ));
        assert_eq!(seq, par, "{pred}: report differs at --jobs 4");
    }
}
