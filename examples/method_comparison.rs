//! Compare termination methods on the paper's examples.
//!
//! ```sh
//! cargo run --example method_comparison
//! ```
//!
//! Runs the three baseline methods (Naish/Sagiv–Ullman subterm subsets,
//! Ullman–Van Gelder single-argument right-spine measure, and a
//! Brodsky–Sagiv-style binary-order method) next to the paper's LP-duality
//! method on the worked examples, reproducing the related-work claims of
//! §1.1: each baseline has a hole that one of the examples falls into,
//! while the duality method proves all of them.

use argus::baselines::all_methods;
use argus::logic::parser::parse_program;
use argus::logic::{Adornment, PredKey};

struct Subject {
    name: &'static str,
    source: &'static str,
    query: PredKey,
    adornment: &'static str,
    why_hard: &'static str,
}

fn main() {
    let subjects = [
        Subject {
            name: "append (first argument bound)",
            source: "append([], Ys, Ys).\n\
                     append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
            query: PredKey::new("append", 3),
            adornment: "bff",
            why_hard: "easy: a single argument is a proper subterm each call",
        },
        Subject {
            name: "merge (Example 5.1)",
            source: "merge([], Ys, Ys).\n\
                     merge(Xs, [], Xs).\n\
                     merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).\n\
                     merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).",
            query: PredKey::new("merge", 3),
            adornment: "bbf",
            why_hard: "the rules SWAP the two bound arguments; only their sum decreases",
        },
        Subject {
            name: "perm (Example 3.1)",
            source: "perm([], []).\n\
                     perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
                     append([], Ys, Ys).\n\
                     append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
            query: PredKey::new("perm", 2),
            adornment: "bf",
            why_hard: "P1 < P follows only from append's THREE-argument size relation",
        },
        Subject {
            name: "expression parser (Example 6.1)",
            source: "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
                     e(L, T) :- t(L, T).\n\
                     t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
                     t(L, T) :- n(L, T).\n\
                     n(['('|A], T) :- e(A, [')'|T]).\n\
                     n([L|T], T) :- z(L).",
            query: PredKey::new("e", 2),
            adornment: "bf",
            why_hard: "three mutually recursive predicates, nonlinear rules",
        },
    ];

    let methods = all_methods();
    for s in &subjects {
        println!("## {}", s.name);
        println!("   ({})", s.why_hard);
        let program = parse_program(s.source).expect("parse");
        let adornment = Adornment::parse(s.adornment).expect("adornment");
        for m in &methods {
            let r = m.prove(&program, &s.query, &adornment);
            println!(
                "   {:38} {}",
                m.name(),
                if r.proved { "PROVED".to_string() } else { format!("fails — {}", r.detail) }
            );
        }
        println!();
    }
}
