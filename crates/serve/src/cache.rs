//! Content-addressed response cache: canonical request → full report body.
//!
//! The first cache level of the server (the second being the shared
//! [`argus_core::ProjectionCache`], which accelerates *near*-repeat
//! submissions that share per-SCC projections). The key is a canonical
//! string rendering of everything that determines the response bytes —
//! program text, query, adornment, and every semantic option — built by
//! the request handler; two requests with equal keys are guaranteed to
//! produce byte-identical responses, because the analysis pipeline is
//! deterministic in exactly those inputs.
//!
//! Lookup cost is one FNV-1a pass over the canonical key plus a bucket
//! probe that compares keys byte-for-byte (hash collisions can therefore
//! degrade speed, never correctness). Residency is bounded by an
//! approximate byte budget with least-recently-used eviction under a
//! single lock — the critical section is a hash-map probe, no analysis
//! work ever happens while it's held.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a — the content address of a canonical request key.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

struct Entry {
    key: String,
    body: Arc<[u8]>,
    stamp: u64,
    bytes: usize,
}

#[derive(Default)]
struct Inner {
    /// Content hash → entries (a short chain only under 64-bit collision).
    map: HashMap<u64, Vec<Entry>>,
    /// LRU order: stamp → content hash, kept in lockstep with `map`.
    by_stamp: BTreeMap<u64, u64>,
    bytes: usize,
    clock: u64,
}

/// The report cache; see the module docs.
pub struct ReportCache {
    inner: Mutex<Inner>,
    byte_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ReportCache {
    /// A cache bounded by `byte_budget` approximate resident bytes.
    pub fn new(byte_budget: usize) -> ReportCache {
        ReportCache {
            inner: Mutex::new(Inner::default()),
            byte_budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cached response body for `key`, refreshing its LRU stamp.
    pub fn get(&self, key: &str) -> Option<Arc<[u8]>> {
        let hash = fnv1a64(key.as_bytes());
        let mut inner = self.inner.lock().expect("report cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        let chain = match inner.map.get_mut(&hash) {
            Some(chain) => chain,
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let Some(entry) = chain.iter_mut().find(|e| e.key == key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let old = entry.stamp;
        entry.stamp = stamp;
        let body = Arc::clone(&entry.body);
        inner.by_stamp.remove(&old);
        inner.by_stamp.insert(stamp, hash);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(body)
    }

    /// Insert a response body for `key` (first insert wins on a race),
    /// evicting least-recently-used entries past the byte budget.
    pub fn put(&self, key: &str, body: Arc<[u8]>) {
        let hash = fnv1a64(key.as_bytes());
        let bytes = key.len() + body.len() + std::mem::size_of::<Entry>();
        let mut inner = self.inner.lock().expect("report cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        let chain = inner.map.entry(hash).or_default();
        if chain.iter().any(|e| e.key == key) {
            return;
        }
        chain.push(Entry { key: key.to_string(), body, stamp, bytes });
        inner.by_stamp.insert(stamp, hash);
        inner.bytes += bytes;
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while inner.bytes > self.byte_budget && inner.by_stamp.len() > 1 {
            let (&victim_stamp, &victim_hash) =
                inner.by_stamp.iter().next().expect("nonempty LRU index");
            inner.by_stamp.remove(&victim_stamp);
            let mut freed = 0;
            if let Some(chain) = inner.map.get_mut(&victim_hash) {
                if let Some(pos) = chain.iter().position(|e| e.stamp == victim_stamp) {
                    let gone = chain.remove(pos);
                    freed = gone.bytes;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                if chain.is_empty() {
                    inner.map.remove(&victim_hash);
                }
            }
            inner.bytes -= freed;
        }
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bodies inserted.
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries evicted to honor the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries currently resident.
    pub fn entries(&self) -> u64 {
        self.inner.lock().expect("report cache poisoned").by_stamp.len() as u64
    }

    /// Approximate resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("report cache poisoned").bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes().to_vec().into_boxed_slice())
    }

    #[test]
    fn hit_returns_exact_bytes() {
        let c = ReportCache::new(1 << 20);
        assert!(c.get("k1").is_none());
        c.put("k1", body("report-1"));
        assert_eq!(c.get("k1").as_deref(), Some(b"report-1".as_slice()));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn lru_evicts_cold_entries_first() {
        // Budget fits roughly two entries of this size.
        let payload = "x".repeat(400);
        let per_entry = 2 + payload.len() + std::mem::size_of::<Entry>();
        let c = ReportCache::new(2 * per_entry + 8);
        c.put("a", body(&payload));
        c.put("b", body(&payload));
        assert!(c.get("a").is_some(), "touch a so b is the LRU victim");
        c.put("c", body(&payload));
        assert!(c.evictions() >= 1);
        assert!(c.get("a").is_some(), "recently touched survives");
        assert!(c.get("b").is_none(), "cold entry evicted");
        assert!(c.get("c").is_some(), "fresh entry resident");
    }

    #[test]
    fn first_insert_wins() {
        let c = ReportCache::new(1 << 20);
        c.put("k", body("first"));
        c.put("k", body("second"));
        assert_eq!(c.get("k").as_deref(), Some(b"first".as_slice()));
        assert_eq!(c.insertions(), 1);
    }

    #[test]
    fn colliding_hashes_are_correct() {
        // Force a collision by bypassing the hash: both keys in one chain
        // can only be simulated with a real collision, so instead verify
        // distinct keys with equal prefixes resolve independently.
        let c = ReportCache::new(1 << 20);
        c.put("key-one", body("1"));
        c.put("key-two", body("2"));
        assert_eq!(c.get("key-one").as_deref(), Some(b"1".as_slice()));
        assert_eq!(c.get("key-two").as_deref(), Some(b"2".as_slice()));
    }
}
