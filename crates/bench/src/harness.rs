//! Shared experiment harness: structured logs and table rendering.
//!
//! Each `exp_*` binary produces one [`ExperimentLog`], printed both as a
//! human-readable markdown table (mirroring the rows EXPERIMENTS.md
//! records) and, with `--json`, as machine-readable JSON for archival.

use crate::json::{json_array, json_str};
use std::fmt::Write as _;

/// A single experiment's output: a table plus free-form notes.
#[derive(Debug, Clone)]
pub struct ExperimentLog {
    /// Experiment id (e.g. "E1").
    pub id: String,
    /// Title line.
    pub title: String,
    /// Source in the paper (e.g. "Example 3.1 / 4.1").
    pub paper_ref: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Additional observations.
    pub notes: Vec<String>,
}

impl ExperimentLog {
    /// Start a log.
    pub fn new(id: &str, title: &str, paper_ref: &str, columns: &[&str]) -> ExperimentLog {
        ExperimentLog {
            id: id.to_string(),
            title: title.to_string(),
            paper_ref: paper_ref.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out, "paper: {}\n", self.paper_ref);
        out.push_str(&markdown_table(&self.columns, &self.rows));
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }

    /// Render as JSON (hand-rolled; the container has no serialization
    /// dependency).
    pub fn to_json(&self) -> String {
        let strs = |xs: &[String]| json_array(&xs.iter().map(|s| json_str(s)).collect::<Vec<_>>());
        let rows = json_array(&self.rows.iter().map(|r| strs(r)).collect::<Vec<_>>());
        format!(
            "{{\n  \"id\": {},\n  \"title\": {},\n  \"paper_ref\": {},\n  \"columns\": {},\n  \"rows\": {},\n  \"notes\": {}\n}}",
            json_str(&self.id),
            json_str(&self.title),
            json_str(&self.paper_ref),
            strs(&self.columns),
            rows,
            strs(&self.notes),
        )
    }

    /// Print to stdout; honours a `--json` CLI flag.
    pub fn emit(&self) {
        if std::env::args().any(|a| a == "--json") {
            println!("{}", self.to_json());
        } else {
            println!("{}", self.render());
        }
    }
}

/// Render a markdown table with aligned columns.
pub fn markdown_table(columns: &[String], rows: &[Vec<String>]) -> String {
    let ncols = columns.len();
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (i, w) in widths.iter().enumerate().take(ncols) {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            let _ = write!(out, " {cell:width$} |", width = w);
        }
        out.push('\n');
    };
    emit_row(&mut out, columns);
    out.push('|');
    for w in &widths {
        let _ = write!(out, "{}|", "-".repeat(w + 2));
    }
    out.push('\n');
    for row in rows {
        emit_row(&mut out, row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = markdown_table(
            &["name".into(), "value".into()],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "22".into()]],
        );
        assert!(t.contains("| name   | value |"), "{t}");
        assert!(t.contains("| longer | 22    |"), "{t}");
    }

    #[test]
    fn log_roundtrip() {
        let mut log = ExperimentLog::new("E0", "demo", "none", &["k", "v"]);
        log.row(&["x".into(), "y".into()]);
        log.note("observation");
        let s = log.render();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("> observation"));
        let json = log.to_json();
        assert!(json.contains("\"id\": \"E0\""), "{json}");
        assert!(json.contains("\"rows\": [[\"x\", \"y\"]]"), "{json}");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_checked() {
        let mut log = ExperimentLog::new("E0", "demo", "none", &["a", "b"]);
        log.row(&["only-one".into()]);
    }
}
