//! E7a — end-to-end analysis cost per corpus program.
//!
//! The paper claims a theoretical polynomial bound but notes that "in
//! practice, Fourier-Motzkin elimination is simple and adequate"; this
//! bench quantifies "adequate": whole-pipeline wall time (adorn → size
//! relations → dual → feasibility) for each representative program, plus
//! scaling over the synthetic chained-append family.

use argus_core::{analyze, AnalysisOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/corpus");
    group.sample_size(10);
    for name in ["append_bff", "perm", "merge", "expr_parser", "quicksort", "hanoi", "tree_insert"]
    {
        let entry = argus_corpus::find(name).expect("corpus entry");
        let program = entry.program().expect("parse");
        let (query, adornment) = entry.query_key();
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(analyze(
                    black_box(&program),
                    &query,
                    adornment.clone(),
                    &AnalysisOptions::default(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis/chained-depth");
    group.sample_size(10);
    for depth in [1usize, 2, 4, 8] {
        let src = argus_bench::workload::chained_append_program(depth);
        let program = argus_logic::parser::parse_program(&src).expect("parse");
        let query = argus_logic::PredKey::new("p0", 2);
        let adornment = argus_logic::Adornment::parse("bf").unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                black_box(analyze(
                    black_box(&program),
                    &query,
                    adornment.clone(),
                    &AnalysisOptions::default(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_corpus, bench_scaling);
criterion_main!(benches);
