//! Canonical integer constraint rows.
//!
//! Fourier–Motzkin spends its time combining rows and comparing the
//! results. [`Constraint`] stores exact rationals, so every combination
//! pays for gcd-normalizing numerator/denominator pairs, and two
//! semantically equal rows can differ syntactically (scaled copies). This
//! module fixes both: an [`IntRow`] is a row scaled to primitive-integer
//! coefficients (LCM of the denominators), divided by the content GCD
//! (taken over the coefficients *and* the constant, so the row stays
//! integral), with equalities sign-fixed on the leading coefficient. The
//! form is exactly [`Constraint::canonicalized`], so structurally equal
//! rows are `==`/hash-equal for free and FM combination runs on integers.

use crate::bigint::BigInt;
use crate::expr::{Constraint, LinExpr, Rel, Var};
use crate::rat::Rat;

/// A linear row `Σ coeffs·v + constant REL 0` in canonical integer form:
/// coefficients sorted by variable, none zero, content gcd 1 (including
/// the constant), and for equalities a nonnegative leading coefficient.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IntRow {
    /// Sorted `(variable, coefficient)` pairs; no zero coefficients.
    pub coeffs: Vec<(Var, BigInt)>,
    /// The constant term.
    pub constant: BigInt,
    /// `≤ 0` or `= 0`.
    pub rel: Rel,
}

impl IntRow {
    /// Convert a [`Constraint`] to canonical integer form. The result
    /// round-trips through [`IntRow::to_constraint`] to exactly
    /// [`Constraint::canonicalized`].
    pub fn of_constraint(c: &Constraint) -> IntRow {
        // Common denominator over coefficients and the constant.
        let mut lcm = c.expr.constant_term().denom().clone();
        for (_, k) in c.expr.terms() {
            lcm = lcm.lcm(k.denom());
        }
        let scale = |r: &Rat| -> BigInt { r.numer() * &(&lcm / r.denom()) };
        let mut coeffs: Vec<(Var, BigInt)> = c.expr.terms().map(|(v, k)| (v, scale(k))).collect();
        let mut constant = scale(c.expr.constant_term());
        if coeffs.is_empty() {
            // Pure constant row: only the sign matters (and survives the
            // trivial-truth check), matching `normalized_direction`.
            constant = sign_unit(&constant);
            return IntRow { coeffs, constant, rel: c.rel }.sign_fixed();
        }
        let mut g = constant.abs();
        for (_, k) in &coeffs {
            g = g.gcd(k);
        }
        if !g.is_zero() && !g.is_one() {
            for (_, k) in coeffs.iter_mut() {
                *k = &*k / &g;
            }
            constant = &constant / &g;
        }
        (IntRow { coeffs, constant, rel: c.rel }).sign_fixed()
    }

    /// Convert back. Produces exactly the [`Constraint::canonicalized`]
    /// form of the row this was built from.
    pub fn to_constraint(&self) -> Constraint {
        let expr = LinExpr::from_terms(
            self.coeffs.iter().map(|(v, k)| (*v, Rat::from(k.clone()))),
            Rat::from(self.constant.clone()),
        );
        Constraint { expr, rel: self.rel }
    }

    /// The coefficient of `v`, if present.
    pub fn coeff(&self, v: Var) -> Option<&BigInt> {
        self.coeffs.binary_search_by_key(&v, |(w, _)| *w).ok().map(|i| &self.coeffs[i].1)
    }

    /// Truth value when the row is a constant; `None` otherwise.
    pub fn constant_truth(&self) -> Option<bool> {
        if !self.coeffs.is_empty() {
            return None;
        }
        Some(match self.rel {
            Rel::Le => !self.constant.is_positive(),
            Rel::Eq => self.constant.is_zero(),
        })
    }

    /// Divide by the content gcd (coefficients and constant) and re-fix the
    /// equality sign. Assumes `coeffs` is sorted and zero-free.
    fn normalized(mut self) -> IntRow {
        if self.coeffs.is_empty() {
            self.constant = sign_unit(&self.constant);
            return self.sign_fixed();
        }
        let mut g = self.constant.abs();
        for (_, k) in &self.coeffs {
            g = g.gcd(k);
        }
        if !g.is_zero() && !g.is_one() {
            for (_, k) in self.coeffs.iter_mut() {
                *k = &*k / &g;
            }
            self.constant = &self.constant / &g;
        }
        self.sign_fixed()
    }

    /// For equalities, make the leading coefficient (or for constant rows
    /// the constant) nonnegative, mirroring [`Constraint::canonicalized`].
    fn sign_fixed(mut self) -> IntRow {
        if self.rel == Rel::Eq {
            let flip = match self.coeffs.first() {
                Some((_, k)) => k.is_negative(),
                None => self.constant.is_negative(),
            };
            if flip {
                for (_, k) in self.coeffs.iter_mut() {
                    *k = -&*k;
                }
                self.constant = -&self.constant;
            }
        }
        self
    }

    /// The canonical form of `p·self + q·other` with the coefficient of
    /// `drop` known to cancel (`p` must be positive so `≤` is preserved;
    /// the relation of `self` carries over).
    ///
    /// When every coefficient of both rows (and both multipliers) fits an
    /// `i64`, the combination runs in a batched machine-integer kernel:
    /// one merge pass accumulating `p·a + q·b` in `i128` (which two
    /// `i64`×`i64` products cannot overflow, checked regardless), a word
    /// gcd, and a direct rebuild — no big-integer dispatch per
    /// coefficient. Any value outside `i64` falls back to the exact
    /// big-integer path. Both paths produce the identical canonical row.
    pub fn linear_comb(&self, p: &BigInt, other: &IntRow, q: &BigInt, drop: Var) -> IntRow {
        self.linear_comb_counted(p, other, q, drop).0
    }

    /// [`IntRow::linear_comb`], also reporting which kernel ran: `true`
    /// for the batched `i64` fast path, `false` for the big-integer
    /// fallback. Lets Fourier–Motzkin count how much of its combination
    /// load stayed on machine words.
    pub fn linear_comb_counted(
        &self,
        p: &BigInt,
        other: &IntRow,
        q: &BigInt,
        drop: Var,
    ) -> (IntRow, bool) {
        debug_assert!(p.is_positive(), "scaling a ≤ row by a nonpositive factor");
        if let Some(row) = self.linear_comb_small(p, other, q, drop) {
            return (row, true);
        }
        (self.linear_comb_big(p, other, q, drop), false)
    }

    /// Batched machine-integer kernel for [`IntRow::linear_comb`].
    /// Returns `None` (caller falls back to exact arithmetic) as soon as
    /// any input or intermediate leaves the `i64`/`i128` range.
    fn linear_comb_small(
        &self,
        p: &BigInt,
        other: &IntRow,
        q: &BigInt,
        drop: Var,
    ) -> Option<IntRow> {
        let p = p.to_i64()? as i128;
        let q = q.to_i64()? as i128;
        let mut coeffs: Vec<(Var, i64)> =
            Vec::with_capacity(self.coeffs.len() + other.coeffs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.coeffs.len() || j < other.coeffs.len() {
            let va = self.coeffs.get(i).map(|(v, _)| *v);
            let vb = other.coeffs.get(j).map(|(v, _)| *v);
            let (v, k) = match (va, vb) {
                (Some(a), Some(b)) if a == b => {
                    let ka = p.checked_mul(self.coeffs[i].1.to_i64()? as i128)?;
                    let kb = q.checked_mul(other.coeffs[j].1.to_i64()? as i128)?;
                    i += 1;
                    j += 1;
                    (a, ka.checked_add(kb)?)
                }
                (Some(a), Some(b)) if a < b => {
                    let k = p.checked_mul(self.coeffs[i].1.to_i64()? as i128)?;
                    i += 1;
                    (a, k)
                }
                (Some(_), Some(b)) => {
                    let k = q.checked_mul(other.coeffs[j].1.to_i64()? as i128)?;
                    j += 1;
                    (b, k)
                }
                (Some(a), None) => {
                    let k = p.checked_mul(self.coeffs[i].1.to_i64()? as i128)?;
                    i += 1;
                    (a, k)
                }
                (None, Some(b)) => {
                    let k = q.checked_mul(other.coeffs[j].1.to_i64()? as i128)?;
                    j += 1;
                    (b, k)
                }
                (None, None) => unreachable!(),
            };
            if v == drop {
                debug_assert!(k == 0, "dropped variable must cancel");
                continue;
            }
            if k != 0 {
                coeffs.push((v, i64::try_from(k).ok()?));
            }
        }
        let constant = p
            .checked_mul(self.constant.to_i64()? as i128)?
            .checked_add(q.checked_mul(other.constant.to_i64()? as i128)?)?;
        let mut constant = i64::try_from(constant).ok()?;
        if coeffs.is_empty() {
            constant = constant.signum();
        } else {
            let mut g = constant.unsigned_abs();
            for (_, k) in &coeffs {
                g = gcd_u64(g, k.unsigned_abs());
            }
            if g > 1 {
                let g = g as i64;
                for (_, k) in coeffs.iter_mut() {
                    *k /= g;
                }
                constant /= g;
            }
        }
        let row = IntRow {
            coeffs: coeffs.into_iter().map(|(v, k)| (v, BigInt::from(k))).collect(),
            constant: BigInt::from(constant),
            rel: self.rel,
        };
        Some(row.sign_fixed())
    }

    /// Exact big-integer path of [`IntRow::linear_comb`].
    fn linear_comb_big(&self, p: &BigInt, other: &IntRow, q: &BigInt, drop: Var) -> IntRow {
        let mut coeffs = Vec::with_capacity(self.coeffs.len() + other.coeffs.len());
        let (mut i, mut j) = (0, 0);
        while i < self.coeffs.len() || j < other.coeffs.len() {
            let va = self.coeffs.get(i).map(|(v, _)| *v);
            let vb = other.coeffs.get(j).map(|(v, _)| *v);
            let (v, k) = match (va, vb) {
                (Some(a), Some(b)) if a == b => {
                    let k = &(p * &self.coeffs[i].1) + &(q * &other.coeffs[j].1);
                    i += 1;
                    j += 1;
                    (a, k)
                }
                (Some(a), Some(b)) if a < b => {
                    let k = p * &self.coeffs[i].1;
                    i += 1;
                    (a, k)
                }
                (Some(_), Some(b)) => {
                    let k = q * &other.coeffs[j].1;
                    j += 1;
                    (b, k)
                }
                (Some(a), None) => {
                    let k = p * &self.coeffs[i].1;
                    i += 1;
                    (a, k)
                }
                (None, Some(b)) => {
                    let k = q * &other.coeffs[j].1;
                    j += 1;
                    (b, k)
                }
                (None, None) => unreachable!(),
            };
            if v == drop {
                debug_assert!(k.is_zero(), "dropped variable must cancel");
                continue;
            }
            if !k.is_zero() {
                coeffs.push((v, k));
            }
        }
        let constant = &(p * &self.constant) + &(q * &other.constant);
        IntRow { coeffs, constant, rel: self.rel }.normalized()
    }
}

/// Binary-free Euclid on machine words for the fast combination kernel.
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// `-1`, `0`, or `1` matching the sign of `x`.
fn sign_unit(x: &BigInt) -> BigInt {
    if x.is_positive() {
        BigInt::one()
    } else if x.is_negative() {
        BigInt::neg_one()
    } else {
        BigInt::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n.into(), d.into())
    }

    #[test]
    fn round_trip_matches_canonicalized() {
        // 2/3·x − 4/3·y + 2 ≤ 0 canonicalizes to x − 2y + 3 ≤ 0.
        let e = LinExpr::from_terms([(0, r(2, 3)), (1, r(-4, 3))], r(2, 1));
        for rel in [Rel::Le, Rel::Eq] {
            let c = Constraint { expr: e.clone(), rel };
            assert_eq!(IntRow::of_constraint(&c).to_constraint(), c.canonicalized());
        }
        // Negative leading equality gets sign-flipped.
        let c = Constraint { expr: LinExpr::from_terms([(0, r(-2, 1))], r(4, 1)), rel: Rel::Eq };
        assert_eq!(IntRow::of_constraint(&c).to_constraint(), c.canonicalized());
        // Constant rows keep only the sign.
        let c = Constraint { expr: LinExpr::constant(r(-7, 3)), rel: Rel::Le };
        assert_eq!(IntRow::of_constraint(&c).to_constraint(), c.canonicalized());
    }

    #[test]
    fn linear_comb_cancels_and_normalizes() {
        // (2x + 4y − 6 ≤ 0) + (−x + y ≤ 0)·2 eliminates x:
        // 6y − 6 ≤ 0 → y − 1 ≤ 0.
        let a = IntRow::of_constraint(&Constraint {
            expr: LinExpr::from_terms([(0, r(2, 1)), (1, r(4, 1))], r(-6, 1)),
            rel: Rel::Le,
        });
        let b = IntRow::of_constraint(&Constraint {
            expr: LinExpr::from_terms([(0, r(-1, 1)), (1, r(1, 1))], r(0, 1)),
            rel: Rel::Le,
        });
        // `a` is already content-normalized to x + 2y − 3.
        let out = a.linear_comb(&BigInt::one(), &b, &BigInt::one(), 0);
        assert_eq!(out.coeffs, vec![(1, BigInt::from(1i64))]);
        assert_eq!(out.constant, BigInt::from(-1i64));
    }

    #[test]
    fn small_and_big_kernels_agree() {
        // A grid of small rows and multipliers: the counted kernel must
        // take the fast path and reproduce the exact big-path row.
        let rows = [
            IntRow::of_constraint(&Constraint {
                expr: LinExpr::from_terms([(0, r(2, 1)), (1, r(4, 1)), (3, r(-7, 1))], r(-6, 1)),
                rel: Rel::Le,
            }),
            IntRow::of_constraint(&Constraint {
                expr: LinExpr::from_terms([(0, r(-1, 1)), (2, r(5, 1))], r(3, 1)),
                rel: Rel::Le,
            }),
            IntRow::of_constraint(&Constraint {
                expr: LinExpr::from_terms([(0, r(1, 1)), (1, r(-1, 1)), (2, r(-5, 1))], r(0, 1)),
                rel: Rel::Le,
            }),
        ];
        for a in &rows {
            for b in &rows {
                let ca = a.coeff(0).cloned().unwrap();
                let cb = b.coeff(0).cloned().unwrap();
                if ca.sign() == cb.sign() {
                    continue; // multipliers below only cancel opposite signs
                }
                let (p, q) = (cb.abs(), ca.abs());
                let (got, small) = a.linear_comb_counted(&p, b, &q, 0);
                assert!(small, "small inputs must stay on the fast path");
                assert_eq!(got, a.linear_comb_big(&p, b, &q, 0));
            }
        }
    }

    #[test]
    fn overflowing_combination_promotes_to_bigint() {
        // 1·a + 1·b cancels x but doubles a y coefficient of 2^62 past
        // i64: the kernel must fall back and still produce the exact row.
        let big = 1i64 << 62;
        let a = IntRow::of_constraint(&Constraint {
            expr: LinExpr::from_terms([(0, r(1, 1)), (1, r(big, 1))], r(1, 1)),
            rel: Rel::Le,
        });
        let b = IntRow::of_constraint(&Constraint {
            expr: LinExpr::from_terms([(0, r(-1, 1)), (1, r(big, 1))], r(0, 1)),
            rel: Rel::Le,
        });
        let one = BigInt::one();
        let (got, small) = a.linear_comb_counted(&one, &b, &one, 0);
        assert!(!small, "2^63 coefficient cannot stay in i64");
        assert_eq!(got, a.linear_comb_big(&one, &b, &one, 0));
        assert_eq!(got.coeff(1), Some(&(&BigInt::from(big) + &BigInt::from(big))));
    }

    #[test]
    fn coeff_lookup() {
        let row = IntRow::of_constraint(&Constraint {
            expr: LinExpr::from_terms([(3, r(5, 1)), (7, r(-2, 1))], r(0, 1)),
            rel: Rel::Le,
        });
        assert_eq!(row.coeff(3), Some(&BigInt::from(5i64)));
        assert_eq!(row.coeff(7), Some(&BigInt::from(-2i64)));
        assert_eq!(row.coeff(5), None);
    }
}
