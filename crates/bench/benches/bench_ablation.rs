//! E7d — ablations of the design choices DESIGN.md calls out.
//!
//! * δ selection: the paper's fixed §6.1 procedure vs Appendix C path
//!   constraints (more general, more variables to eliminate);
//! * imported-constraint power: full polyhedral relations vs the
//!   Appendix B binary-order restriction (cheaper, loses `perm`);
//! * preprocessing: transformations as lazy fallback vs always-on.
//!
//! Plain fixed-iteration harness; pass `--smoke` for CI-sized systems.

use argus_bench::suites::{ablation_suite, Scale};
use argus_bench::timing::render_line;

fn main() {
    let scale = if std::env::args().any(|a| a == "--smoke") { Scale::Smoke } else { Scale::Full };
    for s in ablation_suite(scale) {
        println!("{}", render_line(&s));
    }
}
