//! # argus-diag — span-aware static diagnostics for logic programs
//!
//! The Sohn & Van Gelder termination method (PODS 1991) only applies to
//! programs that are well-moded, range-restricted, and reachable from the
//! analyzed adorned predicate — and when the θ-search fails, the bare
//! "not proved" hides *which recursive call* defeats every argument-size
//! measure. This crate turns those preconditions and failure explanations
//! into a conventional linting experience: a registry of [`LintPass`]es
//! over a parsed [`Program`] (with source spans threaded from the lexer),
//! each producing structured [`Diagnostic`]s that renderers turn into
//! caret-annotated text or stable JSON.
//!
//! ## Lint codes
//!
//! | code | meaning |
//! |------|---------|
//! | L000 | parse error |
//! | L001 | singleton variable |
//! | L002 | call to an undefined predicate |
//! | L003 | unused (unreachable) predicate |
//! | L004 | predicate used with inconsistent arities |
//! | L005 | probable predicate-name typo (edit distance 1) |
//! | L006 | non-range-restricted clause |
//! | L007 | non-well-moded goal (unbound argument where a binding is required) |
//! | L008 | unsafe negation (`\+` over an unbound variable — floundering) |
//! | L009 | recursive call defeats every argument-size measure |
//! | L010 | zero-weight recursion cycle (strong nontermination evidence) |
//! | L011 | unproven query with a nearby provable instantiation (inferred condition) |
//!
//! L007–L011 are *moded* lints: they need a query predicate and adornment
//! ([`LintOptions::query`]). Without one, L007/L008 fall back to assuming
//! every head argument bound, and L009–L011 are skipped. L011 runs the
//! backwards condition inference of `argus_core::backwards` and suggests
//! the disjunct closest to the queried adornment.
//!
//! ```
//! use argus_diag::{lint_source, LintOptions};
//!
//! let diags = lint_source("p(X) :- q(X).", &LintOptions::default());
//! assert!(diags.iter().any(|d| d.code == "L002")); // q/1 undefined
//! ```

#![warn(missing_docs)]

pub mod blame;
pub mod delta;
pub mod lsp;
pub mod moded;
pub mod passes;
pub mod render;
pub mod suggest;

use argus_core::incremental::{IncrementalRunStats, SccCache};
use argus_logic::modes::Adornment;
use argus_logic::parser::parse_program;
use argus_logic::span::Span;
use argus_logic::{DepGraph, PredKey, Program};
use std::cell::Cell;
use std::fmt;
use std::sync::Arc;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is meaningless or the analysis cannot proceed.
    Error,
    /// Almost certainly a mistake, but the program still has a meaning.
    Warning,
    /// Advisory: a precondition of some analysis is not met.
    Note,
}

impl Severity {
    /// Lowercase name, as rendered.
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`L000`…); downstream tooling keys on this.
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Source location, when the offending syntax was parsed from source.
    pub span: Option<Span>,
    /// Primary message.
    pub message: String,
    /// Secondary explanations (rendered as `= note:` lines).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Build a diagnostic.
    pub fn new(
        code: &'static str,
        severity: Severity,
        span: Option<Span>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic { code, severity, span, message: message.into(), notes: Vec::new() }
    }

    /// Attach a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

/// Options controlling a lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Query predicate and adornment for the moded lints (L007–L010).
    pub query: Option<(PredKey, Adornment)>,
}

/// Everything a [`LintPass`] may inspect.
pub struct LintContext<'a> {
    /// The original source text (for sub-atom spans, e.g. variables).
    pub src: &'a str,
    /// The parsed program.
    pub program: &'a Program,
    /// Predicate dependency graph of `program`.
    pub graph: &'a DepGraph,
    /// Query predicate + adornment, when supplied.
    pub query: Option<&'a (PredKey, Adornment)>,
    /// Per-SCC memo for the analysis-backed passes (L009–L011). When
    /// supplied, their termination analyses answer unchanged SCCs from
    /// the memo (see [`argus_core::incremental`]); diagnostics are
    /// byte-identical either way.
    pub memo: Option<Arc<SccCache>>,
    /// Worker threads for the analysis-backed passes (`0` = one per
    /// core, as [`argus_core::AnalysisOptions::parallelism`]).
    pub jobs: usize,
    /// Accumulated memo hit/miss counters from the analysis-backed
    /// passes, populated when `memo` is set (passes merge via
    /// [`LintContext::record_incremental`]).
    pub incremental: Cell<Option<IncrementalRunStats>>,
}

impl LintContext<'_> {
    /// Merge one analysis run's memo counters into the accumulated
    /// per-lint-run total.
    pub fn record_incremental(&self, stats: Option<IncrementalRunStats>) {
        let Some(s) = stats else { return };
        let merged = match self.incremental.get() {
            None => s,
            Some(prev) => IncrementalRunStats {
                size_hits: prev.size_hits + s.size_hits,
                size_misses: prev.size_misses + s.size_misses,
                theta_hits: prev.theta_hits + s.theta_hits,
                theta_misses: prev.theta_misses + s.theta_misses,
            },
        };
        self.incremental.set(Some(merged));
    }
}

/// One lint: inspects the program and appends diagnostics.
pub trait LintPass {
    /// Stable pass name (for `--explain`-style tooling and debugging).
    fn name(&self) -> &'static str;
    /// Run the pass.
    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The default pass registry, in execution order.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(passes::SingletonVariables),
        Box::new(passes::UndefinedPredicates),
        Box::new(passes::UnusedPredicates),
        Box::new(passes::ArityMismatch),
        Box::new(passes::RangeRestriction),
        Box::new(moded::WellModedness),
        Box::new(moded::UnsafeNegation),
        Box::new(blame::TerminationBlame),
        Box::new(suggest::ConditionSuggestion),
    ]
}

/// The result of a memo-aware lint run: the diagnostics plus the memo
/// counters accumulated across the analysis-backed passes.
#[derive(Debug, Clone)]
pub struct LintRun {
    /// The diagnostics, sorted and deduplicated exactly as
    /// [`lint_program`] returns them.
    pub diagnostics: Vec<Diagnostic>,
    /// Summed memo hit/miss counters from every termination analysis the
    /// run performed; `None` when no memo was supplied or no
    /// analysis-backed pass ran.
    pub incremental: Option<IncrementalRunStats>,
}

/// Lint an already-parsed program.
///
/// `src` must be the text `program` was parsed from (it supplies variable
/// occurrence spans); pass `""` for programs built programmatically —
/// span-dependent lints then degrade gracefully.
pub fn lint_program(src: &str, program: &Program, options: &LintOptions) -> Vec<Diagnostic> {
    lint_program_memo(src, program, options, None, 0).diagnostics
}

/// [`lint_program`] with a per-SCC memo and a worker count for the
/// analysis-backed passes (the LSP server's entry point). Diagnostics are
/// byte-identical to [`lint_program`] at every memo/jobs setting; only
/// [`LintRun::incremental`] reflects the configuration.
pub fn lint_program_memo(
    src: &str,
    program: &Program,
    options: &LintOptions,
    memo: Option<Arc<SccCache>>,
    jobs: usize,
) -> LintRun {
    let graph = DepGraph::build(program);
    let ctx = LintContext {
        src,
        program,
        graph: &graph,
        query: options.query.as_ref(),
        memo,
        jobs,
        incremental: Cell::new(None),
    };
    let mut out = Vec::new();
    for pass in default_passes() {
        pass.run(&ctx, &mut out);
    }
    // Deterministic order: by position, then code, then message; dedup.
    out.sort_by(|a, b| {
        let ka = (a.span.map(|s| (s.start, s.end)).unwrap_or((usize::MAX, usize::MAX)), a.code);
        let kb = (b.span.map(|s| (s.start, s.end)).unwrap_or((usize::MAX, usize::MAX)), b.code);
        ka.cmp(&kb).then_with(|| a.message.cmp(&b.message))
    });
    out.dedup();
    LintRun { diagnostics: out, incremental: ctx.incremental.get() }
}

/// Lint source text. A parse failure yields a single `L000` diagnostic.
pub fn lint_source(src: &str, options: &LintOptions) -> Vec<Diagnostic> {
    lint_source_memo(src, options, None, 0).diagnostics
}

/// [`lint_source`] with a per-SCC memo and worker count (see
/// [`lint_program_memo`]).
pub fn lint_source_memo(
    src: &str,
    options: &LintOptions,
    memo: Option<Arc<SccCache>>,
    jobs: usize,
) -> LintRun {
    match parse_program(src) {
        Ok(program) => lint_program_memo(src, &program, options, memo, jobs),
        Err(e) => {
            // Reconstruct a byte offset for the error position so renderers
            // can excerpt the line.
            let index = argus_logic::span::LineIndex::new(src);
            let line_start = index.line_start(e.line).unwrap_or(src.len());
            let off = src[line_start..]
                .char_indices()
                .nth(e.col.saturating_sub(1))
                .map(|(i, _)| line_start + i)
                .unwrap_or(src.len());
            LintRun {
                diagnostics: vec![Diagnostic::new(
                    "L000",
                    Severity::Error,
                    Some(Span::new(off, (off + 1).min(src.len()), e.line, e.col)),
                    e.message,
                )],
                incremental: None,
            }
        }
    }
}

/// Does any diagnostic have [`Severity::Error`]?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_is_l000() {
        let diags = lint_source("p(a) q(b).", &LintOptions::default());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "L000");
        assert_eq!(diags[0].severity, Severity::Error);
        let span = diags[0].span.unwrap();
        assert_eq!((span.line, span.col), (1, 6));
    }

    #[test]
    fn clean_program_is_quiet() {
        let src = "edge(a, b).\nedge(b, c).\n\
                   path(X, Y) :- edge(X, Y).\npath(X, Z) :- edge(X, Y), path(Y, Z).\n\
                   main(X) :- path(a, X).\n";
        let diags = lint_source(src, &LintOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn diagnostics_are_sorted_and_deduped() {
        let src = "main(Xs) :- missing(Xs), missing(Xs).\n";
        let diags = lint_source(src, &LintOptions::default());
        let starts: Vec<usize> = diags.iter().filter_map(|d| d.span.map(|s| s.start)).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }
}
