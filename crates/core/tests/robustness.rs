//! Failure injection and degenerate inputs: the analyzer must return a
//! structured answer (never panic, never hang) on malformed or extreme
//! programs, and `analyze_source` must surface parse/usage errors cleanly.

use argus_core::{analyze, analyze_source, AnalysisOptions, Verdict};
use argus_logic::parser::parse_program;
use argus_logic::{Adornment, PredKey};

#[test]
fn analyze_source_reports_parse_errors() {
    let err = analyze_source("p(a", "p/1", "b").unwrap_err();
    assert!(err.contains("parse error"), "{err}");
}

#[test]
fn analyze_source_reports_bad_query_spec() {
    let err = analyze_source("p(a).", "p", "b").unwrap_err();
    assert!(err.contains("bad query spec"), "{err}");
    let err = analyze_source("p(a).", "p/x", "b").unwrap_err();
    assert!(err.contains("bad arity"), "{err}");
}

#[test]
fn analyze_source_reports_bad_adornment() {
    let err = analyze_source("p(a).", "p/1", "q").unwrap_err();
    assert!(err.contains("bad adornment"), "{err}");
    let err = analyze_source("p(a, b).", "p/2", "b").unwrap_err();
    assert!(err.contains("arity"), "{err}");
}

#[test]
fn empty_program_is_fine() {
    // A query over a predicate with no rules: nothing reachable, nothing
    // recursive, trivially terminating (the call just fails).
    let report = analyze_source("", "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates);
    assert!(report.sccs.is_empty());
}

#[test]
fn undefined_query_predicate() {
    let report = analyze_source("q(a).", "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates);
}

#[test]
fn facts_only_program() {
    let report = analyze_source("p(a).\np(b).\np(c).", "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates);
}

#[test]
fn zero_arity_recursion() {
    // go :- go. has no arguments at all: nothing can decrease.
    let report = analyze_source("go :- go.", "go/0", "").unwrap();
    assert_ne!(report.verdict, Verdict::Terminates);
}

#[test]
fn zero_arity_nonrecursive() {
    let report = analyze_source("go :- init.\ninit.", "go/0", "").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates);
}

#[test]
fn recursion_through_negation() {
    // p :- \+ p is pathological (non-stratified); Appendix D treats the
    // negative recursive subgoal as positive, so this must be rejected
    // like the direct loop — and must not crash.
    let report = analyze_source("p(X) :- \\+ p(X).", "p/1", "b").unwrap();
    assert_ne!(report.verdict, Verdict::Terminates);
}

#[test]
fn negative_recursive_subgoal_with_decrease() {
    // Appendix D: a negative recursive subgoal is analyzed as positive;
    // the size decrease still certifies termination.
    let report = analyze_source("p([]).\np([X|Xs]) :- \\+ p(Xs).", "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
}

#[test]
fn deep_terms_do_not_blow_up() {
    // A rule with a deeply nested head argument.
    let mut term = String::from("z");
    for _ in 0..60 {
        term = format!("s({term})");
    }
    let src = format!("p({term}).\np(s(X)) :- p(X).");
    let report = analyze_source(&src, "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates);
}

#[test]
fn wide_bodies_do_not_blow_up() {
    // One rule with many nonrecursive subgoals before the recursive one.
    let goals: Vec<String> = (0..30).map(|i| format!("e{i}(Xs)")).collect();
    let src = format!("p([]).\np([X|Xs]) :- {}, p(Xs).", goals.join(", "));
    let report = analyze_source(&src, "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates);
}

#[test]
fn many_rules_same_predicate() {
    let mut src = String::from("p([]).\n");
    for i in 0..25 {
        src.push_str(&format!("p([a{i}|Xs]) :- p(Xs).\n"));
    }
    let report = analyze_source(&src, "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates);
}

#[test]
fn duplicate_rules_are_harmless() {
    let src = "p([]).\np([_|Xs]) :- p(Xs).\np([_|Xs]) :- p(Xs).";
    let report = analyze_source(src, "p/1", "b").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates);
}

#[test]
fn options_zero_phases_disable_transformation() {
    // Example A.1 needs the transformations; with phases = 0 the raw
    // failure must be returned unchanged.
    let src = "p(g(X)) :- e(X).\np(g(X)) :- q(f(X)).\nq(Y) :- p(Y).\nq(f(Z)) :- p(Z), q(Z).";
    let program = parse_program(src).unwrap();
    let options = AnalysisOptions { transform_phases: 0, ..AnalysisOptions::default() };
    let report = analyze(&program, &PredKey::new("p", 1), Adornment::parse("b").unwrap(), &options);
    assert_ne!(report.verdict, Verdict::Terminates);
}

#[test]
fn manual_imported_constraints_are_honoured() {
    // Deliberately hide q's rules (EDB) and supply its size relation
    // manually, as the paper's own implementation did.
    use argus_linear::{Constraint, ConstraintSystem, LinExpr, Poly, Rat};
    let src = "p([]).\np(P) :- q(P, P1), p(P1).";
    let program = parse_program(src).unwrap();

    // Without any knowledge of q: unprovable.
    let none = analyze(
        &program,
        &PredKey::new("p", 1),
        Adornment::parse("b").unwrap(),
        &AnalysisOptions::default(),
    );
    assert_ne!(none.verdict, Verdict::Terminates);

    // With the manual constraint q1 >= 1 + q2: provable.
    let mut sys = ConstraintSystem::new();
    let mut e = LinExpr::var(1); // q2
    e.add_constant(&Rat::one());
    sys.push(Constraint::ge(LinExpr::var(0), e)); // q1 >= q2 + 1
    sys.push(Constraint::nonneg(0));
    sys.push(Constraint::nonneg(1));
    let options = AnalysisOptions {
        imported: vec![(PredKey::new("q", 2), Poly::from_constraints(2, sys))],
        ..AnalysisOptions::default()
    };
    let with = analyze(&program, &PredKey::new("p", 1), Adornment::parse("b").unwrap(), &options);
    assert_eq!(with.verdict, Verdict::Terminates, "{with}");
}

#[test]
fn variable_shadowing_across_rules() {
    // The same variable names in different rules must not interfere.
    let src = "p([], X).\np([X|Xs], X) :- p(Xs, X).";
    let report = analyze_source(src, "p/2", "bf").unwrap();
    assert_eq!(report.verdict, Verdict::Terminates);
}

#[test]
fn report_accessors_behave() {
    let report = analyze_source(
        "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        "append/3",
        "bff",
    )
    .unwrap();
    let key = PredKey::new("append", 3);
    assert!(report.scc_of(&key).is_some());
    assert!(report.witness_for(&key).is_some());
    assert!(report.scc_of(&PredKey::new("nope", 1)).is_none());
    assert!(report.witness_for(&PredKey::new("nope", 1)).is_none());
}

/// The groundness-aware adornment does not overclaim: a wildcard fact
/// `q(_)` succeeds without grounding its argument, so the recursive call
/// below runs with a FREE argument and must not be treated as a bound,
/// shrinking one.
#[test]
fn wildcard_fact_does_not_ground() {
    // Without groundness analysis, Ys would be marked bound after q(Ys)
    // and the imported relation q1 = q2 (from q(A, A)) would "prove" a
    // decrease for a call whose argument is not actually ground.
    let report = analyze_source(
        "q(_, _).\n\
         p([X|Xs]) :- q(Ys, Xs), p(Ys).\n\
         p([]).",
        "p/1",
        "b",
    )
    .unwrap();
    // Ys is free at the recursive call: p is reached with adornment f,
    // where no linear decrease exists. The analysis must NOT prove it.
    assert_ne!(report.verdict, Verdict::Terminates, "{report}");
}

/// But when the helper genuinely grounds its output, the proof goes
/// through as before.
#[test]
fn grounding_helper_still_proves() {
    let report = analyze_source(
        "shrink([_|Xs], Xs).\n\
         p([X|Xs]) :- shrink([X|Xs], Ys), p(Ys).\n\
         p([]).",
        "p/1",
        "b",
    )
    .unwrap();
    assert_eq!(report.verdict, Verdict::Terminates, "{report}");
}
