//! Seeded property tests for the size-change graph algebra.
//!
//! Everything is keyed on [`argus_prng::Rng64`], so a failure replays
//! from its printed seed. The tests cross-check the algebra against its
//! defining laws (associativity, closure idempotence) and check the
//! production criterion against the independent power-iteration decision
//! procedure on random closed sets.

use argus_prng::Rng64;
use argus_sct::graph::{closure, criterion, criterion_by_powers, Edge, Graph, GraphArena};

/// A random size-change graph between two nodes of the given arity:
/// each (from, to) position pair independently carries a strict edge, a
/// non-strict edge, or nothing.
fn random_graph(r: &mut Rng64, source: u32, target: u32, arity: u16) -> Graph {
    let mut edges = Vec::new();
    for from in 0..arity {
        for to in 0..arity {
            match r.below(4) {
                0 => edges.push(Edge { from, to, strict: true }),
                1 => edges.push(Edge { from, to, strict: false }),
                _ => {}
            }
        }
    }
    Graph::new(source, target, edges)
}

#[test]
fn composition_is_associative() {
    for seed in 0..300u64 {
        let mut r = Rng64::new(seed);
        let arity = 1 + r.below(4) as u16;
        let a = random_graph(&mut r, 0, 1, arity);
        let b = random_graph(&mut r, 1, 2, arity);
        let c = random_graph(&mut r, 2, 3, arity);
        let left = a.compose(&b).compose(&c);
        let right = a.compose(&b.compose(&c));
        assert_eq!(left, right, "seed {seed}: (a∘b)∘c != a∘(b∘c)");
    }
}

#[test]
fn composition_strictness_is_monotone() {
    // Downgrading a strict edge to non-strict can never *create*
    // strictness in a composition: every strict edge of the weakened
    // composite is strict in the original too.
    for seed in 0..200u64 {
        let mut r = Rng64::new(seed);
        let arity = 1 + r.below(4) as u16;
        let a = random_graph(&mut r, 0, 1, arity);
        let b = random_graph(&mut r, 1, 2, arity);
        let weaken = |g: &Graph| {
            Graph::new(g.source, g.target, g.edges.iter().map(|e| Edge { strict: false, ..*e }))
        };
        let strong = a.compose(&b);
        for weak in [weaken(&a).compose(&b), a.compose(&weaken(&b))] {
            for e in &weak.edges {
                if e.strict {
                    assert!(
                        strong.edges.iter().any(|s| s.from == e.from && s.to == e.to && s.strict),
                        "seed {seed}: weakened composition invented strictness"
                    );
                }
            }
        }
    }
}

/// Generate a random initial graph set over a small node universe and
/// intern it into a fresh arena.
fn random_initial(r: &mut Rng64, arena: &mut GraphArena) -> Vec<argus_sct::graph::GraphId> {
    let nodes = 1 + r.below(3) as u32;
    let arity = 1 + r.below(3) as u16;
    let count = 1 + r.below(4) as usize;
    let mut initial = Vec::new();
    for _ in 0..count {
        let s = r.below(nodes as u64) as u32;
        let t = r.below(nodes as u64) as u32;
        let g = random_graph(r, s, t, arity);
        initial.push(arena.intern(g));
    }
    initial.sort();
    initial.dedup();
    initial
}

#[test]
fn closure_is_idempotent() {
    for seed in 0..150u64 {
        let mut r = Rng64::new(seed);
        let mut arena = GraphArena::new();
        let initial = random_initial(&mut r, &mut arena);
        let once = closure(&mut arena, &initial);
        let twice = closure(&mut arena, &once);
        let set = |v: &[argus_sct::graph::GraphId]| {
            let mut v = v.to_vec();
            v.sort();
            v
        };
        assert_eq!(set(&once), set(&twice), "seed {seed}: closure(closure(S)) != closure(S)");
    }
}

#[test]
fn closure_contains_initial_and_is_composition_closed() {
    for seed in 0..100u64 {
        let mut r = Rng64::new(seed);
        let mut arena = GraphArena::new();
        let initial = random_initial(&mut r, &mut arena);
        let closed = closure(&mut arena, &initial);
        for id in &initial {
            assert!(closed.contains(id), "seed {seed}: closure dropped an initial graph");
        }
        for &a in &closed {
            for &b in &closed {
                if arena.get(a).target != arena.get(b).source {
                    continue;
                }
                let c = arena.compose_ids(a, b);
                assert!(closed.contains(&c), "seed {seed}: closure not closed under ∘");
            }
        }
    }
}

#[test]
fn criterion_agrees_with_power_iteration() {
    let mut holds = 0usize;
    let mut fails = 0usize;
    for seed in 0..300u64 {
        let mut r = Rng64::new(seed);
        let mut arena = GraphArena::new();
        let initial = random_initial(&mut r, &mut arena);
        let closed = closure(&mut arena, &initial);
        let mut idempotents = 0;
        let by_idempotents = criterion(&mut arena, &closed, &mut idempotents).is_none();
        let by_powers = criterion_by_powers(&mut arena, &closed);
        assert_eq!(
            by_idempotents, by_powers,
            "seed {seed}: idempotent criterion and power iteration disagree"
        );
        if by_idempotents {
            holds += 1;
        } else {
            fails += 1;
        }
    }
    // The generator must exercise both outcomes, or the agreement check
    // is vacuous.
    assert!(holds > 10 && fails > 10, "unbalanced population: {holds} holds, {fails} fails");
}
