//! Quickstart: prove that a logic procedure terminates.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Analyzes the paper's flagship example — `perm/2` with its first argument
//! bound — which no earlier published method could prove, and prints the
//! full report: the inferred size relations, the per-SCC verdicts, and the
//! θ witness (the linear combination of bound-argument sizes that decreases
//! on every recursive call).

use argus::prelude::*;

fn main() {
    let source = "\
        perm([], []).\n\
        perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
        append([], Ys, Ys).\n\
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n";

    println!("program:\n{source}");

    // The analysis needs to know which arguments are bound when the
    // predicate is invoked: here perm(+P, -L), written "bf".
    let report = analyze_source(source, "perm/2", "bf").expect("well-formed input");

    println!("{report}");

    // The interesting intermediate: the inter-argument size relation the
    // analyzer inferred for append — a constraint over THREE argument
    // sizes, which is what puts perm out of reach of earlier methods.
    let append = PredKey::new("append", 3);
    for suffix in ["", "__ffb", "__bbf"] {
        let key = PredKey::new(format!("append{suffix}"), 3);
        if report.size_relations.get(&key).is_some() {
            println!("size relation: {}", report.size_relations.render(&key));
        }
    }
    let _ = append;

    match report.verdict {
        Verdict::Terminates => {
            let theta = report
                .witness_for(&PredKey::new("perm", 2))
                .expect("witness accompanies the proof");
            println!(
                "\nperm/2 terminates: {} * size(arg1) strictly decreases on every \
                 recursive call (the paper's θ = 1/2).",
                theta[0]
            );
        }
        other => println!("\nunexpected verdict: {other:?}"),
    }
}
