//! Independent verification of termination certificates.
//!
//! A [`crate::SccOutcome::Proved`] outcome carries a witness: the θ vector
//! per predicate and the δ decrement per dependency edge. This module
//! re-checks that witness *without* trusting the machinery that produced
//! it: where the prover went through the LP dual and Fourier–Motzkin
//! (paper §4), the checker evaluates the PRIMAL condition directly —
//!
//! > for every rule × recursive-subgoal pair, the minimum of
//! > `θᵀx − βᵀy` over Eq. (1)'s feasible region is at least `δᵢⱼ`
//!
//! — with one exact LP per pair (the paper's Eq. 4), plus a fresh min-plus
//! closure confirming every dependency cycle has positive total δ. The two
//! code paths share only the Eq. (1) assembly and the rational arithmetic,
//! so a bug in the dual construction, the elimination order, or the
//! feasibility reduction would be caught here.

use crate::analyze::{SccOutcome, TerminationReport};
use crate::pairs::{build_pair_with_norm, primal_system};
use argus_linear::{LinExpr, LpOutcome, LpProblem, Rat};
use argus_logic::{DepGraph, Norm, PredKey};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why certificate verification failed.
///
/// Boxed at use sites is unnecessary: verification is cold-path, so the
/// large variant is acceptable; the lint is silenced deliberately.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::result_large_err)]
pub enum CertificateError {
    /// A predicate of a proved SCC has no θ vector in the witness.
    MissingWitness(PredKey),
    /// A dependency edge of a proved SCC has no δ in the witness.
    MissingDelta(PredKey, PredKey),
    /// A θ coefficient is negative.
    NegativeTheta(PredKey),
    /// The decrease condition fails for a rule × subgoal pair: the minimum
    /// of `θᵀx − βᵀy` is below δ (or unbounded below).
    DecreaseViolated {
        /// Head predicate.
        head: PredKey,
        /// Recursive subgoal predicate.
        sub: PredKey,
        /// Index of the rule within the SCC's rule list.
        rule_index: usize,
        /// The minimum found, if bounded.
        minimum: Option<Rat>,
        /// The δ that was required.
        required: Rat,
    },
    /// The δ assignment admits a nonpositive-weight dependency cycle.
    NonPositiveCycle(Vec<PredKey>),
}

impl fmt::Display for CertificateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertificateError::MissingWitness(p) => write!(f, "no θ witness for {p}"),
            CertificateError::MissingDelta(a, b) => write!(f, "no δ for edge {a} -> {b}"),
            CertificateError::NegativeTheta(p) => write!(f, "negative θ coefficient for {p}"),
            CertificateError::DecreaseViolated { head, sub, rule_index, minimum, required } => {
                write!(
                    f,
                    "decrease violated for {head} -> {sub} (rule #{rule_index}): min = {}, required ≥ {required}",
                    minimum.as_ref().map(|m| m.to_string()).unwrap_or_else(|| "-∞".into())
                )
            }
            CertificateError::NonPositiveCycle(cycle) => {
                let names: Vec<String> = cycle.iter().map(|p| p.to_string()).collect();
                write!(f, "dependency cycle with nonpositive δ sum: {}", names.join(" -> "))
            }
        }
    }
}

impl std::error::Error for CertificateError {}

/// Verify every proved SCC of `report` against the primal decrease
/// condition, under the `norm` the analysis used.
///
/// Returns the number of (pair, LP) checks performed on success.
#[allow(clippy::result_large_err)] // cold path; see CertificateError
pub fn verify_report(report: &TerminationReport, norm: Norm) -> Result<usize, CertificateError> {
    let graph = DepGraph::build(&report.program);
    let mut checks = 0usize;

    for scc in &report.sccs {
        let SccOutcome::Proved { witness, deltas } = &scc.outcome else {
            continue;
        };
        // θ sanity.
        for p in &scc.members {
            let theta =
                witness.get(p).ok_or_else(|| CertificateError::MissingWitness(p.clone()))?;
            if theta.iter().any(|t| t.is_negative()) {
                return Err(CertificateError::NegativeTheta(p.clone()));
            }
        }
        // Positive cycles over the δ assignment.
        verify_positive_cycles(&scc.members, deltas)?;

        // Primal decrease per rule × recursive subgoal.
        let scc_id =
            graph.scc_id(&scc.members[0]).expect("proved SCC exists in the report's program");
        for (ri, rule) in graph.scc_rules(&report.program, scc_id).iter().enumerate() {
            for si in graph.recursive_subgoals(rule) {
                let pair =
                    build_pair_with_norm(rule, ri, si, &report.modes, &report.size_relations, norm);
                let theta = witness
                    .get(&pair.head_pred)
                    .ok_or_else(|| CertificateError::MissingWitness(pair.head_pred.clone()))?;
                let beta = witness
                    .get(&pair.sub_pred)
                    .ok_or_else(|| CertificateError::MissingWitness(pair.sub_pred.clone()))?;
                let delta = deltas
                    .get(&(pair.head_pred.clone(), pair.sub_pred.clone()))
                    .cloned()
                    .ok_or_else(|| {
                    CertificateError::MissingDelta(pair.head_pred.clone(), pair.sub_pred.clone())
                })?;

                // Objective θᵀx − βᵀy over the primal variables.
                let (primal, x_vars, y_vars, _) = primal_system(&pair);
                let mut objective = LinExpr::zero();
                for (i, &xv) in x_vars.iter().enumerate() {
                    objective.add_term(xv, theta[i].clone());
                }
                for (j, &yv) in y_vars.iter().enumerate() {
                    objective.add_term(yv, -beta[j].clone());
                }
                let nonneg: BTreeSet<usize> = primal.vars().into_iter().collect();
                let lp = LpProblem { objective, constraints: primal, nonneg };
                checks += 1;
                match lp.solve() {
                    LpOutcome::Infeasible => {
                        // Eq. (1) unsatisfiable: this call path can never
                        // execute; the decrease holds vacuously.
                    }
                    LpOutcome::Optimal { value, .. } if value >= delta => {}
                    LpOutcome::Optimal { value, .. } => {
                        return Err(CertificateError::DecreaseViolated {
                            head: pair.head_pred.clone(),
                            sub: pair.sub_pred.clone(),
                            rule_index: pair.rule_index,
                            minimum: Some(value),
                            required: delta,
                        });
                    }
                    LpOutcome::Unbounded => {
                        return Err(CertificateError::DecreaseViolated {
                            head: pair.head_pred.clone(),
                            sub: pair.sub_pred.clone(),
                            rule_index: pair.rule_index,
                            minimum: None,
                            required: delta,
                        });
                    }
                }
            }
        }
    }
    Ok(checks)
}

/// Check all simple cycles have positive δ sum via min-plus closure.
#[allow(clippy::result_large_err)] // cold path; see CertificateError
fn verify_positive_cycles(
    members: &[PredKey],
    deltas: &BTreeMap<(PredKey, PredKey), Rat>,
) -> Result<(), CertificateError> {
    let n = members.len();
    let index: BTreeMap<&PredKey, usize> =
        members.iter().enumerate().map(|(i, p)| (p, i)).collect();
    let inf = Rat::from_int(i64::MAX / 4);
    let mut dist = vec![vec![inf.clone(); n]; n];
    for ((h, s), d) in deltas {
        // Edges may mention predicates outside `members` only if the
        // report is malformed; ignore such entries defensively.
        let (Some(&i), Some(&j)) = (index.get(h), index.get(s)) else { continue };
        if *d < dist[i][j] {
            dist[i][j] = d.clone();
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let through = &dist[i][k] + &dist[k][j];
                if through < dist[i][j] {
                    dist[i][j] = through;
                }
            }
        }
    }
    for (i, member) in members.iter().enumerate() {
        if dist[i][i] < inf && !dist[i][i].is_positive() {
            return Err(CertificateError::NonPositiveCycle(vec![member.clone()]));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, AnalysisOptions};
    use argus_logic::parser::parse_program;
    use argus_logic::Adornment;

    fn certified(src: &str, name: &str, arity: usize, adn: &str) -> usize {
        let program = parse_program(src).unwrap();
        let report = analyze(
            &program,
            &PredKey::new(name, arity),
            Adornment::parse(adn).unwrap(),
            &AnalysisOptions::default(),
        );
        assert_eq!(report.verdict, crate::Verdict::Terminates, "{report}");
        verify_report(&report, Norm::StructuralSize).expect("certificate verifies")
    }

    #[test]
    fn append_certificate() {
        let n = certified(
            "append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
            "append",
            3,
            "bff",
        );
        assert_eq!(n, 1, "one rule × subgoal pair");
    }

    #[test]
    fn perm_certificate() {
        let n = certified(
            "perm([], []).\n\
             perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).\n\
             append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
            "perm",
            2,
            "bf",
        );
        // perm pair + two adorned append copies.
        assert_eq!(n, 3);
    }

    #[test]
    fn parser_certificate_covers_all_pairs() {
        let n = certified(
            "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
             e(L, T) :- t(L, T).\n\
             t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
             t(L, T) :- n(L, T).\n\
             n(['('|A], T) :- e(A, [')'|T]).\n\
             n([L|T], T) :- z(L).",
            "e",
            2,
            "bf",
        );
        // Rules 1 and 3 have two recursive subgoals each; rules 2, 4, 5
        // one each: 7 pairs.
        assert_eq!(n, 7);
    }

    #[test]
    fn tampered_witness_is_rejected() {
        let program =
            parse_program("append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).")
                .unwrap();
        let mut report = analyze(
            &program,
            &PredKey::new("append", 3),
            Adornment::parse("bff").unwrap(),
            &AnalysisOptions::default(),
        );
        // Corrupt the witness: zero out θ.
        for scc in report.sccs.iter_mut() {
            if let SccOutcome::Proved { witness, .. } = &mut scc.outcome {
                for theta in witness.values_mut() {
                    for t in theta.iter_mut() {
                        *t = Rat::zero();
                    }
                }
            }
        }
        let err = verify_report(&report, Norm::StructuralSize).unwrap_err();
        assert!(matches!(err, CertificateError::DecreaseViolated { .. }), "{err}");
    }

    #[test]
    fn tampered_delta_cycle_is_rejected() {
        let program = parse_program(
            "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
             e(L, T) :- t(L, T).\n\
             t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
             t(L, T) :- n(L, T).\n\
             n(['('|A], T) :- e(A, [')'|T]).\n\
             n([L|T], T) :- z(L).",
        )
        .unwrap();
        let mut report = analyze(
            &program,
            &PredKey::new("e", 2),
            Adornment::parse("bf").unwrap(),
            &AnalysisOptions::default(),
        );
        // Zero the n→e delta: the e→t→n→e cycle now weighs 0.
        for scc in report.sccs.iter_mut() {
            if let SccOutcome::Proved { deltas, .. } = &mut scc.outcome {
                if let Some(d) = deltas.get_mut(&(PredKey::new("n", 2), PredKey::new("e", 2))) {
                    *d = Rat::zero();
                }
            }
        }
        let err = verify_report(&report, Norm::StructuralSize).unwrap_err();
        assert!(matches!(err, CertificateError::NonPositiveCycle(_)), "{err}");
    }

    #[test]
    fn missing_witness_detected() {
        let program =
            parse_program("append([], Ys, Ys).\nappend([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).")
                .unwrap();
        let mut report = analyze(
            &program,
            &PredKey::new("append", 3),
            Adornment::parse("bff").unwrap(),
            &AnalysisOptions::default(),
        );
        for scc in report.sccs.iter_mut() {
            if let SccOutcome::Proved { witness, .. } = &mut scc.outcome {
                witness.clear();
            }
        }
        let err = verify_report(&report, Norm::StructuralSize).unwrap_err();
        assert!(matches!(err, CertificateError::MissingWitness(_)), "{err}");
    }
}
