//! # argus-sizerel — inter-argument size-relation inference
//!
//! The termination method of *Sohn & Van Gelder (PODS 1991)* imports, for
//! every subgoal predicate, *feasibility constraints* relating the sizes of
//! the arguments of derivable facts — e.g. for `append/3` the constraint
//! `a1 + a2 = a3`, or for the expression parser's `t/2` the constraint
//! `t1 ≥ 2 + t2`. The paper takes these from Van Gelder's companion work
//! (\[VG90\]) and notes that in its own implementation they are "taken as
//! input … not automated". This crate automates them.
//!
//! The inference is a bottom-up abstract interpretation over the domain of
//! closed convex polyhedra ([`argus_linear::Poly`]): the meaning of an
//! `n`-ary predicate is abstracted by a polyhedron in ℝ₊ⁿ containing the
//! argument-size vectors of all derivable facts (exactly the geometric view
//! of the paper's §1: "argument sizes of derivable facts … are viewed as
//! points in the positive orthant of Rⁿ"). Rules are abstracted by the
//! obvious linear translation of structural term size (§2.2); joins are
//! convex hulls; termination of the fixpoint is forced by widening.
//!
//! ```
//! use argus_logic::{parser::parse_program, PredKey};
//! use argus_sizerel::{infer_size_relations, InferOptions};
//!
//! let program = parse_program(
//!     "append([], Ys, Ys).\n\
//!      append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
//! ).unwrap();
//! let rels = infer_size_relations(&program, &InferOptions::default());
//! // The classic invariant a1 + a2 = a3 is derived automatically.
//! let poly = rels.get(&PredKey::new("append", 3)).unwrap();
//! assert!(rels.entails_sum_equality(&PredKey::new("append", 3), &[0, 1], 2));
//! # let _ = poly;
//! ```

#![warn(missing_docs)]

use argus_linear::fm::{self, FmResult};
use argus_linear::{Constraint, ConstraintSystem, LinExpr, Poly, Rat, Rel, Var};
use argus_logic::program::ProcIndex;
use argus_logic::{DepGraph, Norm, PredKey, Program, Rule, Sym, TermArena, TermId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Options controlling the fixpoint iteration.
#[derive(Debug, Clone)]
pub struct InferOptions {
    /// Number of exact (hull-only) iterations before widening kicks in.
    /// Small delays preserve more equalities; the default of 2 recovers
    /// `append`'s `a1 + a2 = a3` and the paper's parser constraints.
    pub widening_delay: usize,
    /// Hard cap on iterations per SCC; on overrun the affected predicates
    /// fall back to the sound top element (sizes ≥ 0).
    pub max_iterations: usize,
    /// Term-size norm the relations are expressed in. Must match the norm
    /// used by the termination analysis consuming them.
    pub norm: Norm,
}

impl Default for InferOptions {
    fn default() -> InferOptions {
        InferOptions { widening_delay: 2, max_iterations: 20, norm: Norm::default() }
    }
}

/// The inferred size-relation polyhedron for each predicate. Dimension `i`
/// of the polyhedron for `p/n` is the structural size of the `i`-th
/// argument of a derivable `p` fact.
#[derive(Debug, Clone, Default)]
pub struct SizeRelations {
    map: BTreeMap<PredKey, Poly>,
}

impl SizeRelations {
    /// Empty store.
    pub fn new() -> SizeRelations {
        SizeRelations::default()
    }

    /// The polyhedron for `p`, if known.
    pub fn get(&self, p: &PredKey) -> Option<&Poly> {
        self.map.get(p)
    }

    /// Insert or overwrite (used to supply constraints manually, as the
    /// paper's implementation did).
    pub fn insert(&mut self, p: PredKey, poly: Poly) {
        assert_eq!(poly.dim(), p.arity, "polyhedron dimension must equal arity");
        self.map.insert(p, poly);
    }

    /// The polyhedron for `p`, defaulting to "sizes are nonnegative" when
    /// nothing is known (EDB predicates, builtins, analysis fallback).
    pub fn get_or_top(&self, p: &PredKey) -> Poly {
        self.map.get(p).cloned().unwrap_or_else(|| Poly::nonneg_universe(p.arity))
    }

    /// Iterate over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&PredKey, &Poly)> {
        self.map.iter()
    }

    /// Convenience check: do the inferred relations entail
    /// `Σ_{i ∈ lhs} aᵢ = a_rhs` for predicate `p` (argument indices
    /// 0-based)? E.g. `append`'s `a1 + a2 = a3` is `(&[0, 1], 2)`.
    pub fn entails_sum_equality(&self, p: &PredKey, lhs: &[usize], rhs: usize) -> bool {
        let Some(poly) = self.map.get(p) else { return false };
        let mut e = LinExpr::zero();
        for &i in lhs {
            e.add_term(i, Rat::one());
        }
        e.add_term(rhs, -Rat::one());
        let c = Constraint { expr: e, rel: Rel::Eq };
        poly.is_empty()
            || argus_linear::simplex::is_implied(poly.constraints(), &BTreeSet::new(), &c)
    }

    /// Convenience check: do the relations entail `a_i ≥ a_j + k`?
    pub fn entails_gap(&self, p: &PredKey, i: usize, j: usize, k: i64) -> bool {
        let Some(poly) = self.map.get(p) else { return false };
        let mut e = LinExpr::var(j);
        e.add_term(i, -Rat::one());
        e.add_constant(&Rat::from_int(k));
        // a_j + k - a_i <= 0
        let c = Constraint { expr: e, rel: Rel::Le };
        poly.is_empty()
            || argus_linear::simplex::is_implied(poly.constraints(), &BTreeSet::new(), &c)
    }

    /// Render the relation for `p` with argument names `p1, p2, …`.
    pub fn render(&self, p: &PredKey) -> String {
        match self.map.get(p) {
            None => format!("{p}: (no information)"),
            Some(poly) if poly.is_empty() => format!("{p}: (no derivable facts)"),
            Some(poly) => {
                let mut pool = argus_linear::VarPool::new();
                for i in 1..=p.arity {
                    pool.fresh(format!("{}{}", p.name, i));
                }
                let rows: Vec<String> = poly
                    .minimized()
                    .constraints()
                    .constraints()
                    .iter()
                    .map(|c| pool.render_constraint(c))
                    .collect();
                format!("{p}: {}", rows.join(";  "))
            }
        }
    }
}

impl fmt::Display for SizeRelations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.map.keys() {
            writeln!(f, "{}", self.render(p))?;
        }
        Ok(())
    }
}

/// Abstract one rule: the polyhedron (over the head's argument-size
/// dimensions) of head-size vectors derivable through this rule, given the
/// current approximations `env` for all predicates.
///
/// Construction (paper §2.2 + §3): allocate one variable per head argument
/// size, one per logical variable of the rule, and one per argument of each
/// positive subgoal; emit the argument-size equations for the head and each
/// subgoal, instantiate each subgoal predicate's current polyhedron on its
/// argument variables, and project everything but the head dimensions away.
pub fn rule_poly(rule: &Rule, env: &SizeRelations) -> Poly {
    rule_poly_with_norm(rule, env, Norm::default())
}

/// [`rule_poly`] under an explicit term-size norm, with this module's
/// [`FM_ROW_CAP`] guarding the projection.
pub fn rule_poly_with_norm(rule: &Rule, env: &SizeRelations, norm: Norm) -> Poly {
    let cfg = fm::FmConfig { max_rows: FM_ROW_CAP, ..fm::FmConfig::default() };
    rule_poly_instrumented(rule, env, norm, &cfg, &mut fm::FmStats::default())
}

/// [`rule_poly_with_norm`] under an explicit FM configuration (tier, row
/// cap, LP budget all caller-controlled), accumulating counters into
/// `stats` — the instrumentation hook for the `fm_redundancy` bench, which
/// raises the cap to expose the untiered blowup that production's
/// [`FM_ROW_CAP`] would truncate.
pub fn rule_poly_instrumented(
    rule: &Rule,
    env: &SizeRelations,
    norm: Norm,
    cfg: &fm::FmConfig,
    stats: &mut fm::FmStats,
) -> Poly {
    let mut ctx = SizeCtx::new(norm);
    let ids = RuleIds::of(rule, &mut ctx);
    rule_poly_ids(rule, &ids, env, cfg, stats, &mut ctx)
}

/// Per-program size-polynomial context: every argument term is interned
/// into one flat [`TermArena`] (hash-consed, so repeated argument shapes
/// share nodes) and its norm polynomial is computed on indices exactly
/// once, no matter how many fixpoint iterations revisit the rule.
struct SizeCtx {
    arena: TermArena,
    memo: HashMap<TermId, argus_logic::SizePolynomial>,
    norm: Norm,
}

impl SizeCtx {
    fn new(norm: Norm) -> SizeCtx {
        SizeCtx { arena: TermArena::new(), memo: HashMap::new(), norm }
    }

    fn poly(&mut self, id: TermId) -> &argus_logic::SizePolynomial {
        if !self.memo.contains_key(&id) {
            let p = self.norm.polynomial_id(&self.arena, id);
            self.memo.insert(id, p);
        }
        &self.memo[&id]
    }
}

/// Arena ids of one rule's argument terms: `head[i]` for the head,
/// `body[k][j]` for positive literal `k` (negative literals get an empty
/// row — they contribute no size information).
struct RuleIds {
    head: Vec<TermId>,
    body: Vec<Vec<TermId>>,
}

impl RuleIds {
    fn of(rule: &Rule, ctx: &mut SizeCtx) -> RuleIds {
        RuleIds {
            head: rule.head.args.iter().map(|t| ctx.arena.insert(t)).collect(),
            body: rule
                .body
                .iter()
                .map(|lit| {
                    if lit.positive {
                        lit.atom.args.iter().map(|t| ctx.arena.insert(t)).collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect(),
        }
    }
}

/// [`rule_poly_instrumented`] on pre-interned argument ids — the fixpoint
/// body. All size polynomials come memoized out of `ctx`.
fn rule_poly_ids(
    rule: &Rule,
    ids: &RuleIds,
    env: &SizeRelations,
    cfg: &fm::FmConfig,
    stats: &mut fm::FmStats,
    ctx: &mut SizeCtx,
) -> Poly {
    let head_arity = rule.head.args.len();
    let mut next: Var = head_arity;
    let mut var_of: BTreeMap<Sym, Var> = BTreeMap::new();
    let mut sys = ConstraintSystem::new();

    let size_expr = |poly: &argus_logic::SizePolynomial,
                     var_of: &mut BTreeMap<Sym, Var>,
                     next: &mut Var,
                     sys: &mut ConstraintSystem| {
        let mut e = LinExpr::constant(Rat::from_int(poly.constant as i64));
        for (name, coeff) in &poly.coeffs {
            let v = *var_of.entry(*name).or_insert_with(|| {
                let v = *next;
                *next += 1;
                // Logical-variable sizes are nonnegative (§2.2).
                sys.push(Constraint::nonneg(v));
                v
            });
            e.add_term(v, Rat::from_int(*coeff as i64));
        }
        e
    };

    // Head argument-size equations: x_i = size(t_i), x_i >= 0.
    for (i, id) in ids.head.iter().enumerate() {
        let sp = ctx.poly(*id);
        let e = size_expr(sp, &mut var_of, &mut next, &mut sys);
        sys.push(Constraint::eq(LinExpr::var(i), e));
        sys.push(Constraint::nonneg(i));
    }

    // Subgoal contributions.
    for (lit, lit_ids) in rule.body.iter().zip(&ids.body) {
        if !lit.positive {
            // Negative subgoals yield no size information (Appendix D).
            continue;
        }
        let key = lit.atom.key();
        match (&*key.name, key.arity) {
            ("=", 2) => {
                // Unification: equal terms have equal sizes. (`a` is
                // cloned out of the memo so `b`'s lookup can re-borrow
                // `ctx`; the expression build order — `ea` before `eb` —
                // fixes fresh-variable numbering and must not change.)
                let a = ctx.poly(lit_ids[0]).clone();
                let ea = size_expr(&a, &mut var_of, &mut next, &mut sys);
                let b = ctx.poly(lit_ids[1]);
                let eb = size_expr(b, &mut var_of, &mut next, &mut sys);
                sys.push(Constraint::eq(ea, eb));
            }
            ("is", 2) => {
                // The left argument becomes an integer constant, which has
                // size 0 under either norm.
                let a = ctx.poly(lit_ids[0]);
                let ea = size_expr(a, &mut var_of, &mut next, &mut sys);
                sys.push(Constraint::eq(ea, LinExpr::zero()));
            }
            (op, 2) if argus_logic::modes::TEST_BUILTINS.contains(&op) => {
                // Comparisons supply no size contribution (paper, Ex. 5.1:
                // "the subgoal X =< Y does not supply any contribution").
            }
            _ => {
                // Ordinary subgoal: allocate argument-size vars, equate with
                // term sizes, and instantiate the predicate's polyhedron.
                let approx = env.get_or_top(&key);
                if approx.is_empty() {
                    // The subgoal is (currently) underivable: this rule
                    // contributes nothing.
                    return Poly::empty(head_arity);
                }
                let base = next;
                next += key.arity;
                for (j, id) in lit_ids.iter().enumerate() {
                    let sp = ctx.poly(*id);
                    let e = size_expr(sp, &mut var_of, &mut next, &mut sys);
                    sys.push(Constraint::eq(LinExpr::var(base + j), e));
                    sys.push(Constraint::nonneg(base + j));
                }
                let map: BTreeMap<Var, Var> = (0..key.arity).map(|j| (j, base + j)).collect();
                for c in approx.constraints().constraints() {
                    sys.push(c.rename(&map));
                }
            }
        }
    }

    // Project onto the head dimensions; exceeding the caller's row cap
    // falls back to the sound top element (sizes nonnegative, nothing more).
    let keep: BTreeSet<Var> = (0..head_arity).collect();
    match fm::project_onto_with(&sys, &keep, cfg, stats) {
        Ok(FmResult::Projected(projected)) => Poly::from_constraints(head_arity, projected.dedup()),
        Ok(FmResult::Infeasible) => Poly::empty(head_arity),
        Err(_) => Poly::nonneg_universe(head_arity),
    }
}

/// Row cap for Fourier–Motzkin projections inside the inference; beyond
/// this the analysis falls back to a sound over-approximation rather than
/// risking FM's worst-case blowup.
const FM_ROW_CAP: usize = 500;

/// Infer size relations for every IDB predicate of `program`, processing
/// SCCs bottom-up and iterating recursive SCCs to a (widened) fixpoint.
pub fn infer_size_relations(program: &Program, options: &InferOptions) -> SizeRelations {
    infer_size_relations_instrumented(
        program,
        options,
        &fm::FmConfig::default(),
        &mut fm::FmStats::default(),
    )
}

/// [`infer_size_relations`] with an explicit FM redundancy tier: every
/// rule-poly projection and hull inside the fixpoint runs at `cfg.tier`
/// and accumulates counters into `stats`. The production row caps
/// ([`FM_ROW_CAP`] for rule projections, [`argus_linear::poly::HULL_ROW_CAP`]
/// for hulls) still apply — `cfg.max_rows` can only tighten them — so the
/// inferred relations match [`infer_size_relations`] at the default tier.
/// This is how the `fm_redundancy` bench measures the FM load of a corpus
/// program's inference tier by tier.
pub fn infer_size_relations_instrumented(
    program: &Program,
    options: &InferOptions,
    cfg: &fm::FmConfig,
    stats: &mut fm::FmStats,
) -> SizeRelations {
    let rule_cfg = fm::FmConfig { max_rows: cfg.max_rows.min(FM_ROW_CAP), ..*cfg };
    let hull_cfg =
        fm::FmConfig { max_rows: cfg.max_rows.min(argus_linear::poly::HULL_ROW_CAP), ..*cfg };
    let graph = DepGraph::build(program);
    let index = ProcIndex::build(program);
    // One arena + polynomial memo for the whole program: argument-term
    // polynomials are computed once, then every fixpoint iteration (and
    // every SCC) reuses them by id.
    let mut ctx = SizeCtx::new(options.norm);
    let rule_ids: Vec<RuleIds> = program.rules.iter().map(|r| RuleIds::of(r, &mut ctx)).collect();
    let mut rels = SizeRelations::new();

    for scc_id in graph.sccs_bottom_up() {
        let members: Vec<PredKey> =
            graph.scc(scc_id).into_iter().filter(|p| !index.rule_indices(p).is_empty()).collect();
        if members.is_empty() {
            continue; // EDB-only SCC; stays at implicit top.
        }
        let recursive = members.iter().any(|p| graph.is_recursive(p));
        infer_scc_inner(
            program,
            &index,
            &members,
            recursive,
            &mut rels,
            options,
            &rule_cfg,
            &hull_cfg,
            stats,
            &mut ctx,
            &IdsTable::Full(&rule_ids),
        );
    }
    // Canonicalize: drop redundant rows so downstream consumers (the
    // termination analyzer's Eq. 1 assembly) see minimal systems, matching
    // the paper's hand-derived constraint shapes.
    let keys: Vec<PredKey> = rels.map.keys().cloned().collect();
    for k in keys {
        let minimized = rels.map[&k].minimized();
        rels.map.insert(k, minimized);
    }
    rels
}

/// Rule-id lookup used by the shared per-SCC fixpoint body: the global
/// entry point precomputes ids for the whole program, while the per-SCC
/// entry point builds them only for the SCC's own rules.
enum IdsTable<'a> {
    Full(&'a [RuleIds]),
    Sparse(&'a BTreeMap<usize, RuleIds>),
}

impl IdsTable<'_> {
    fn get(&self, ri: usize) -> &RuleIds {
        match self {
            IdsTable::Full(v) => &v[ri],
            IdsTable::Sparse(m) => &m[&ri],
        }
    }
}

/// The per-SCC inference body shared by [`infer_size_relations_instrumented`]
/// and [`infer_scc_sizes`]: a single pass for non-recursive SCCs, a Kleene
/// iteration with delayed widening for recursive ones. On return `rels`
/// holds the SCC's *work-state* polyhedra (inserted pre-minimized between
/// iterations, not re-minimized at the end) — callers that feed the result
/// to the termination analyzer must still canonicalize with
/// [`Poly::minimized`].
#[allow(clippy::too_many_arguments)]
fn infer_scc_inner(
    program: &Program,
    index: &ProcIndex,
    members: &[PredKey],
    recursive: bool,
    rels: &mut SizeRelations,
    options: &InferOptions,
    rule_cfg: &fm::FmConfig,
    hull_cfg: &fm::FmConfig,
    stats: &mut fm::FmStats,
    ctx: &mut SizeCtx,
    ids: &IdsTable<'_>,
) {
    // Non-recursive SCC: single pass.
    if !recursive {
        for p in members {
            let mut acc = Poly::empty(p.arity);
            for &ri in index.rule_indices(p) {
                let rp = rule_poly_ids(&program.rules[ri], ids.get(ri), rels, rule_cfg, stats, ctx);
                acc = acc.hull_with(&rp, hull_cfg, stats);
            }
            rels.insert(p.clone(), acc.minimized());
        }
        return;
    }

    // Recursive SCC: Kleene iteration from bottom with delayed widening.
    for p in members {
        rels.insert(p.clone(), Poly::empty(p.arity));
    }
    let mut stable = false;
    for iteration in 0..options.max_iterations {
        let mut changed = false;
        for p in members {
            let old = rels.get(p).cloned().expect("seeded");
            let mut new = Poly::empty(p.arity);
            for &ri in index.rule_indices(p) {
                let rp = rule_poly_ids(&program.rules[ri], ids.get(ri), rels, rule_cfg, stats, ctx);
                new = new.hull_with(&rp, hull_cfg, stats);
            }
            // Join with previous to enforce monotonicity, then widen.
            let joined = old.hull_with(&new, hull_cfg, stats);
            let next =
                if iteration >= options.widening_delay { old.widen(&joined) } else { joined };
            if !next.same_set(&old) {
                // Keep representations minimal between iterations:
                // redundant rows compound across hulls and can trip
                // the FM row caps.
                rels.insert(p.clone(), next.minimized());
                changed = true;
            }
        }
        if !changed {
            stable = true;
            break;
        }
    }
    if !stable {
        // Sound fallback: forget everything for this SCC.
        for p in members {
            rels.insert(p.clone(), Poly::nonneg_universe(p.arity));
        }
    }
}

/// Run the size-relation fixpoint for a single SCC against an environment
/// `rels` that already holds the work-state polyhedra of every callee SCC
/// (absent entries are treated as top, exactly as in the global pass).
///
/// `members` must list the SCC's predicates that have rules, in the
/// [`DepGraph::scc`] order, and `recursive` must be the SCC's
/// [`DepGraph::is_recursive`] status — passing the same values the global
/// pass derives makes the inserted polyhedra byte-identical to a cold
/// [`infer_size_relations`] run. A fresh term arena is built for just this
/// SCC's rules; the arena is a pure memo, so sharing or not sharing it
/// does not change any result.
pub fn infer_scc_sizes(
    program: &Program,
    index: &ProcIndex,
    members: &[PredKey],
    recursive: bool,
    rels: &mut SizeRelations,
    options: &InferOptions,
) {
    let cfg = fm::FmConfig::default();
    let rule_cfg = fm::FmConfig { max_rows: cfg.max_rows.min(FM_ROW_CAP), ..cfg };
    let hull_cfg =
        fm::FmConfig { max_rows: cfg.max_rows.min(argus_linear::poly::HULL_ROW_CAP), ..cfg };
    let mut stats = fm::FmStats::default();
    let mut ctx = SizeCtx::new(options.norm);
    let mut ids: BTreeMap<usize, RuleIds> = BTreeMap::new();
    for p in members {
        for &ri in index.rule_indices(p) {
            ids.entry(ri).or_insert_with(|| RuleIds::of(&program.rules[ri], &mut ctx));
        }
    }
    infer_scc_inner(
        program,
        index,
        members,
        recursive,
        rels,
        options,
        &rule_cfg,
        &hull_cfg,
        &mut stats,
        &mut ctx,
        &IdsTable::Sparse(&ids),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use argus_logic::parser::parse_program;

    fn infer(src: &str) -> SizeRelations {
        let p = parse_program(src).unwrap();
        infer_size_relations(&p, &InferOptions::default())
    }

    #[test]
    fn append_sum_equality() {
        // The imported feasibility constraint of the paper's Example 3.1:
        // append1 + append2 = append3.
        let rels = infer(
            "append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        );
        let app = PredKey::new("append", 3);
        assert!(rels.entails_sum_equality(&app, &[0, 1], 2), "{}", rels.render(&app));
    }

    #[test]
    fn parser_t_gap() {
        // The imported constraint of the paper's Example 6.1: t1 >= 2 + t2
        // (and likewise for e and n).
        let rels = infer(
            "e(L, T) :- t(L, ['+'|C]), e(C, T).\n\
             e(L, T) :- t(L, T).\n\
             t(L, T) :- n(L, ['*'|C]), t(C, T).\n\
             t(L, T) :- n(L, T).\n\
             n(['('|A], T) :- e(A, [')'|T]).\n\
             n([L|T], T) :- z(L).",
        );
        for name in ["e", "t", "n"] {
            let p = PredKey::new(name, 2);
            assert!(rels.entails_gap(&p, 0, 1, 2), "{}", rels.render(&p));
        }
    }

    #[test]
    fn facts_only_predicate() {
        let rels = infer("p(a, [b]).\np(c, [d, e]).");
        let p = PredKey::new("p", 2);
        let poly = rels.get(&p).unwrap();
        assert!(!poly.is_empty());
        // First arg always a constant: size 0. Second arg between 2 and 4.
        let pt = |a: i64, b: i64| -> BTreeMap<Var, Rat> {
            [(0, Rat::from_int(a)), (1, Rat::from_int(b))].into_iter().collect()
        };
        assert!(poly.contains_point(&pt(0, 2)));
        assert!(poly.contains_point(&pt(0, 4)));
        assert!(poly.contains_point(&pt(0, 3))); // hull fills the middle
        assert!(!poly.contains_point(&pt(1, 2)));
        assert!(!poly.contains_point(&pt(0, 5)));
    }

    #[test]
    fn reverse_with_accumulator() {
        // rev(Xs, Acc, Ys): |Xs| + |Acc| = |Ys| in list-length terms;
        // in structural size the same linear relation holds.
        let rels = infer(
            "rev([], Acc, Acc).\n\
             rev([X|Xs], Acc, Ys) :- rev(Xs, [X|Acc], Ys).",
        );
        let p = PredKey::new("rev", 3);
        assert!(rels.entails_sum_equality(&p, &[0, 1], 2), "{}", rels.render(&p));
    }

    #[test]
    fn underivable_predicate_is_empty() {
        // p has only a recursive rule and no base case: no derivable facts.
        let rels = infer("p(X) :- p(X).");
        let p = PredKey::new("p", 1);
        assert!(rels.get(&p).unwrap().is_empty());
    }

    #[test]
    fn edb_subgoals_default_to_top() {
        let rels = infer("p(X, Y) :- e(X, Y).");
        let p = PredKey::new("p", 2);
        let poly = rels.get(&p).unwrap();
        // Nothing known about e beyond nonnegativity.
        assert!(!poly.is_empty());
        let pt: BTreeMap<Var, Rat> =
            [(0, Rat::from_int(7)), (1, Rat::from_int(0))].into_iter().collect();
        assert!(poly.contains_point(&pt));
        // e itself is not in the store (it has no rules).
        assert!(rels.get(&PredKey::new("e", 2)).is_none());
        assert!(!rels.get_or_top(&PredKey::new("e", 2)).is_empty());
    }

    #[test]
    fn unification_builtin_contributes_equality() {
        let rels = infer("p(X, Y) :- X = Y.");
        let p = PredKey::new("p", 2);
        let mut e = LinExpr::var(0);
        e.add_term(1, -Rat::one());
        let c = Constraint { expr: e, rel: Rel::Eq };
        assert!(argus_linear::simplex::is_implied(
            rels.get(&p).unwrap().constraints(),
            &BTreeSet::new(),
            &c
        ));
    }

    #[test]
    fn comparison_contributes_nothing() {
        let rels = infer("p(X, Y) :- X =< Y.");
        let p = PredKey::new("p", 2);
        let poly = rels.get(&p).unwrap();
        let pt: BTreeMap<Var, Rat> =
            [(0, Rat::from_int(9)), (1, Rat::from_int(1))].into_iter().collect();
        assert!(poly.contains_point(&pt), "X =< Y must not constrain sizes");
    }

    #[test]
    fn nonlinear_recursion_fixpoint_terminates() {
        // Fibonacci-shaped recursion on lists; just check we stabilize and
        // produce a sound nonempty result with the decrease visible.
        let rels = infer(
            "f([], []).\n\
             f([X|Xs], [X|Ys]) :- f(Xs, Ys).\n\
             g([], []).\n\
             g([_,_|Xs], Ys) :- g(Xs, A), g(Xs, B), app2(A, B, Ys).\n\
             app2([], Ys, Ys).\n\
             app2([X|Xs], Ys, [X|Zs]) :- app2(Xs, Ys, Zs).",
        );
        let f = PredKey::new("f", 2);
        assert!(rels.entails_sum_equality(&f, &[0], 1), "{}", rels.render(&f));
        let g = PredKey::new("g", 2);
        assert!(!rels.get(&g).unwrap().is_empty());
    }

    #[test]
    fn widening_fallback_is_sound_not_crashing() {
        // A rule that grows an argument forever still stabilizes via
        // widening (the upper bound is dropped, not looped on).
        let rels = infer(
            "grow([], []).\n\
             grow(Xs, [a|Ys]) :- grow(Xs, Ys).",
        );
        let p = PredKey::new("grow", 2);
        let poly = rels.get(&p).unwrap();
        assert!(!poly.is_empty());
        // Size of second arg is unbounded: the poly must admit large values.
        let pt: BTreeMap<Var, Rat> =
            [(0, Rat::from_int(0)), (1, Rat::from_int(1000))].into_iter().collect();
        assert!(poly.contains_point(&pt));
    }

    #[test]
    fn manual_insert_overrides() {
        let program = parse_program("p(X) :- e(X).").unwrap();
        let mut rels = infer_size_relations(&program, &InferOptions::default());
        let p = PredKey::new("p", 1);
        let mut sys = ConstraintSystem::new();
        sys.push(Constraint::eq(LinExpr::var(0), LinExpr::constant(Rat::from_int(7))));
        rels.insert(p.clone(), Poly::from_constraints(1, sys));
        assert!(rels.entails_gap(&p, 0, 0, 0));
        let pt: BTreeMap<Var, Rat> = [(0, Rat::from_int(7))].into_iter().collect();
        assert!(rels.get(&p).unwrap().contains_point(&pt));
    }

    #[test]
    fn render_is_readable() {
        let rels = infer(
            "append([], Ys, Ys).\n\
             append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
        );
        let s = rels.render(&PredKey::new("append", 3));
        assert!(s.starts_with("append/3:"), "{s}");
        assert!(s.contains("append1"), "{s}");
    }
}
