//! Capture-rule query planning (the paper's §1 motivation).
//!
//! "Capture rules were introduced by Ullman as a way to plan the
//! evaluation of queries in a knowledge base … In particular, top-down
//! capture rules require a proof of termination to justify use of top-down
//! rule evaluation."
//!
//! This module is that planner: given a program and a query mode, it runs
//! the termination analysis and commits to Prolog-style top-down
//! resolution when (and only when) termination is proved, falling back to
//! semi-naive bottom-up saturation otherwise. [`execute`] then actually
//! answers a query with the chosen strategy, so the analyzer's verdict has
//! an operational consequence, exactly as the paper envisions.

use crate::core::{analyze, AnalysisOptions, TerminationReport, Verdict};
use crate::interp::bottomup::{saturate, BottomUpOptions, Saturation};
use crate::interp::machine::solve_iterative;
use crate::interp::sld::{InterpOptions, Outcome};
use crate::logic::program::Literal;
use crate::logic::unify::{unify_atoms, Subst};
use crate::logic::{Adornment, PredKey, Program, Term};
use std::collections::BTreeMap;

/// The evaluation strategy a capture rule selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Prolog-style SLD resolution — chosen when termination is proved.
    TopDown,
    /// Semi-naive bottom-up saturation — the fallback.
    BottomUp,
}

/// A committed query plan.
#[derive(Debug, Clone)]
pub struct Plan {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// The termination analysis that justified the choice.
    pub report: TerminationReport,
    /// The planned predicate.
    pub query: PredKey,
    /// The planned mode.
    pub adornment: Adornment,
}

/// Decide the strategy for `query` with `adornment` over `program`.
pub fn plan_query(
    program: &Program,
    query: &PredKey,
    adornment: Adornment,
    options: &AnalysisOptions,
) -> Plan {
    let report = analyze(program, query, adornment.clone(), options);
    let strategy =
        if report.verdict == Verdict::Terminates { Strategy::TopDown } else { Strategy::BottomUp };
    Plan { strategy, report, query: query.clone(), adornment }
}

/// Execution budgets for [`execute`].
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Budgets for the top-down engine.
    pub sld: InterpOptions,
    /// Budgets for the bottom-up engine.
    pub bottom_up: BottomUpOptions,
}

/// The result of executing a query under a plan.
#[derive(Debug, Clone)]
pub enum Answers {
    /// All answers, as bindings of the query's variables.
    Complete(Vec<BTreeMap<String, Term>>),
    /// The chosen engine ran out of budget (for bottom-up: diverged).
    BudgetExhausted {
        /// Which strategy hit its budget.
        strategy: Strategy,
    },
}

impl Answers {
    /// Number of answers produced (0 if the budget tripped).
    pub fn len(&self) -> usize {
        match self {
            Answers::Complete(v) => v.len(),
            Answers::BudgetExhausted { .. } => 0,
        }
    }

    /// True iff no answers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Execute a single-goal query under `plan`.
///
/// For [`Strategy::TopDown`] this is plain SLD. For
/// [`Strategy::BottomUp`] the program is saturated and the goal matched
/// against the fixpoint, returning the matching substitutions restricted
/// to the goal's variables.
pub fn execute(program: &Program, goal: &Literal, plan: &Plan, options: &ExecOptions) -> Answers {
    match plan.strategy {
        Strategy::TopDown => {
            match solve_iterative(program, std::slice::from_ref(goal), &options.sld) {
                Outcome::Completed { solutions, .. } => Answers::Complete(solutions),
                Outcome::OutOfBudget { .. } => {
                    Answers::BudgetExhausted { strategy: Strategy::TopDown }
                }
            }
        }
        Strategy::BottomUp => {
            // Goal-directed bottom-up: adorn for the planned mode, rewrite
            // with magic sets seeded by the goal's bound arguments, then
            // saturate — only facts relevant to the query are derived.
            let adorned = crate::logic::adorn_program(program, &plan.query, plan.adornment.clone());
            let adorned_goal = crate::logic::Atom {
                name: adorned.query.name,
                args: goal.atom.args.clone(),
                span: goal.atom.span,
            };
            let rewritten =
                crate::transform::magic_rewrite(&adorned.program, &adorned.modes, &adorned_goal);
            let goal = Literal { atom: adorned_goal, positive: goal.positive, span: goal.span };
            match saturate(&rewritten.program, &options.bottom_up) {
                Saturation::Fixpoint { facts, .. } => {
                    let vars = goal.atom.vars();
                    let mut answers = Vec::new();
                    for fact in &facts {
                        let mut s = Subst::new();
                        if unify_atoms(&mut s, &goal.atom, fact, false) {
                            answers.push(
                                vars.iter()
                                    .map(|v| (v.to_string(), s.resolve(&Term::Var(*v))))
                                    .collect(),
                            );
                        }
                    }
                    if goal.positive {
                        Answers::Complete(answers)
                    } else {
                        // Negative goal: succeeds (with no bindings) iff no match.
                        if answers.is_empty() {
                            Answers::Complete(vec![BTreeMap::new()])
                        } else {
                            Answers::Complete(Vec::new())
                        }
                    }
                }
                Saturation::Diverged { .. } => {
                    Answers::BudgetExhausted { strategy: Strategy::BottomUp }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logic::parser::{parse_program, parse_query};

    fn goal(q: &str) -> Literal {
        parse_query(q).unwrap().remove(0)
    }

    #[test]
    fn structural_recursion_goes_top_down() {
        let program =
            parse_program("app([], Ys, Ys).\napp([X|Xs], Ys, [X|Zs]) :- app(Xs, Ys, Zs).").unwrap();
        let plan = plan_query(
            &program,
            &PredKey::new("app", 3),
            Adornment::parse("bff").unwrap(),
            &AnalysisOptions::default(),
        );
        assert_eq!(plan.strategy, Strategy::TopDown);
        let answers =
            execute(&program, &goal("app([a, b], [c], Z)"), &plan, &ExecOptions::default());
        match answers {
            Answers::Complete(sols) => {
                assert_eq!(sols.len(), 1);
                assert_eq!(sols[0]["Z"].to_string(), "[a, b, c]");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cyclic_datalog_goes_bottom_up() {
        let program = parse_program(
            "edge(a, b).\nedge(b, c).\nedge(c, a).\n\
             tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        )
        .unwrap();
        let plan = plan_query(
            &program,
            &PredKey::new("tc", 2),
            Adornment::parse("bf").unwrap(),
            &AnalysisOptions::default(),
        );
        assert_eq!(plan.strategy, Strategy::BottomUp);
        let answers = execute(&program, &goal("tc(a, Y)"), &plan, &ExecOptions::default());
        match answers {
            Answers::Complete(sols) => {
                // a reaches a, b, c on the 3-cycle.
                assert_eq!(sols.len(), 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn magic_sets_make_bottom_up_goal_directed() {
        // Recursion on structure diverges under NAIVE bottom-up, but the
        // planner's bottom-up path is magic-rewritten: the bound goal
        // nat(s(z)) seeds only the call patterns s(z), z, and saturation
        // converges with the same answer top-down would give.
        let program = parse_program("nat(z).\nnat(s(N)) :- nat(N).").unwrap();
        let plan = plan_query(
            &program,
            &PredKey::new("nat", 1),
            Adornment::parse("b").unwrap(),
            &AnalysisOptions::default(),
        );
        assert_eq!(plan.strategy, Strategy::TopDown, "nat is provable");
        let forced = Plan { strategy: Strategy::BottomUp, ..plan.clone() };
        let answers = execute(
            &program,
            &goal("nat(s(z))"),
            &forced,
            &ExecOptions {
                bottom_up: BottomUpOptions { max_facts: 100, max_iterations: 1000 },
                ..ExecOptions::default()
            },
        );
        match answers {
            Answers::Complete(sols) => assert_eq!(sols.len(), 1),
            other => panic!("magic-rewritten saturation should converge: {other:?}"),
        }
    }

    #[test]
    fn bottom_up_divergence_is_reported() {
        // An all-free generator goal has an empty magic seed projection:
        // nothing constrains the saturation and it genuinely diverges.
        let program = parse_program("nat(z).\nnat(s(N)) :- nat(N).").unwrap();
        let plan = plan_query(
            &program,
            &PredKey::new("nat", 1),
            Adornment::parse("f").unwrap(),
            &AnalysisOptions::default(),
        );
        assert_eq!(plan.strategy, Strategy::BottomUp, "free nat is unprovable");
        let answers = execute(
            &program,
            &goal("nat(X)"),
            &plan,
            &ExecOptions {
                bottom_up: BottomUpOptions { max_facts: 100, max_iterations: 1000 },
                ..ExecOptions::default()
            },
        );
        assert!(matches!(answers, Answers::BudgetExhausted { strategy: Strategy::BottomUp }));
    }

    #[test]
    fn both_strategies_agree_where_both_work() {
        // Acyclic reachability: terminates top-down AND saturates
        // bottom-up; the answer sets must coincide.
        let program = parse_program(
            "edge(a, b).\nedge(b, c).\n\
             tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- edge(X, Y), tc(Y, Z).",
        )
        .unwrap();
        let report = analyze(
            &program,
            &PredKey::new("tc", 2),
            Adornment::parse("bf").unwrap(),
            &AnalysisOptions::default(),
        );
        let g = goal("tc(a, Y)");
        let base = Plan {
            strategy: Strategy::TopDown,
            report,
            query: PredKey::new("tc", 2),
            adornment: Adornment::parse("bf").unwrap(),
        };
        let td = execute(&program, &g, &base, &ExecOptions::default());
        let bu = execute(
            &program,
            &g,
            &Plan { strategy: Strategy::BottomUp, ..base },
            &ExecOptions::default(),
        );
        let norm = |a: &Answers| -> Vec<String> {
            match a {
                Answers::Complete(sols) => {
                    let mut v: Vec<String> = sols.iter().map(|m| format!("{m:?}")).collect();
                    v.sort();
                    v.dedup();
                    v
                }
                _ => panic!("budget"),
            }
        };
        assert_eq!(norm(&td), norm(&bu));
    }
}
