//! A dependency-free JSON parser for request bodies.
//!
//! The rest of the workspace only *emits* JSON (hand-rolled, stable-byte
//! writers in `argus-core::json` and `argus-diag::render`); the server is
//! the first component that must *read* it. This is a strict
//! recursive-descent parser over the RFC 8259 grammar with two deliberate
//! properties:
//!
//! * every error carries the byte offset it was detected at, so the
//!   request handlers can render a caret diagnostic pointing into the
//!   offending body (the same presentation `argus lint` uses for program
//!   text);
//! * nesting depth is capped, so a hostile body of 100 000 `[`s is a
//!   parse error, not a stack overflow.
//!
//! Numbers are kept as `f64` — the request schema only uses small
//! integers (worker counts, tier indices), far inside the exact range.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum array/object nesting the parser accepts.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (kept as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalized (sorted); duplicate keys are a
    /// parse error — the strictness suits a request schema, where a
    /// duplicate option is always a client bug worth surfacing.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a nonnegative integer, if this is a number that is
    /// one (finite, integral, in `u64` range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure, located by byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error was detected at (≤ input length).
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser { src: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("unexpected trailing content"));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos.min(self.src.len()), message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key_off = self.pos;
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            if map.insert(key.clone(), val).is_some() {
                return Err(JsonError {
                    offset: key_off,
                    message: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Bulk-copy the maximal run of plain characters. The
                    // delimiters scanned for are all ASCII (and UTF-8
                    // continuation bytes are ≥ 0x80), so the run always
                    // ends on a scalar boundary and each input byte is
                    // validated exactly once — keeping the whole parse
                    // linear even for megabyte string payloads.
                    let start = self.pos;
                    while let Some(&b) = self.src.get(self.pos) {
                        if b == b'"' || b == b'\\' || b < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.src[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    /// Four hex digits; advances past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("expected four hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected an exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ASCII digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(JsonError { offset: start, message: "number out of range".into() }),
        }
    }
}

/// Escape `s` as the contents of a JSON string literal (no quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` as a complete JSON string literal, quotes included.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let v = parse(r#"{"program": "p.\n", "jobs": 2, "stats": true, "x": null}"#).unwrap();
        assert_eq!(v.get("program").and_then(Json::as_str), Some("p.\n"));
        assert_eq!(v.get("jobs").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("stats").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let src = "a\"b\\c\nd\te\u{1F600}é";
        let lit = json_str(src);
        let back = parse(&lit).unwrap();
        assert_eq!(back.as_str(), Some(src));
    }

    #[test]
    fn long_mixed_strings_round_trip() {
        // Exercises the bulk-copy fast path: long plain runs interleaved
        // with escapes and multibyte scalars, at LSP-payload sizes.
        let src = format!("{}\"é😀\\{}\n", "a".repeat(50_000), "b".repeat(50_000)).repeat(4);
        let back = parse(&json_str(&src)).unwrap();
        assert_eq!(back.as_str(), Some(src.as_str()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse(r#""\udc00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("{\"a\": nope}").unwrap_err();
        assert_eq!(e.offset, 6);
        let e = parse("[1, 2,]").unwrap_err();
        assert_eq!(e.offset, 6);
        let e = parse("{\"a\": 1, \"a\": 2}").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
        assert_eq!(e.offset, 9);
    }

    #[test]
    fn depth_bomb_is_an_error_not_a_crash() {
        let bomb = "[".repeat(100_000);
        let e = parse(&bomb).unwrap_err();
        assert!(e.message.contains("deep"), "{e}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("{} {}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("0").unwrap(), Json::Num(0.0));
        assert!(parse("01").is_err(), "leading zero then digit is trailing garbage");
        assert!(parse("1e999").is_err(), "infinite after parse");
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
