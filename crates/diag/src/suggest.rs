//! L011 — suggest an inferred termination condition.
//!
//! L009/L010 explain *why* a query is unproven; this pass tells the user
//! what would make it provable. When the queried adornment fails, the
//! backwards inference engine ([`argus_core::backwards`]) computes the
//! predicate's full termination condition, and the diagnostic names the
//! condition plus the *nearest* disjunct — the one needing the fewest
//! additional bound arguments over what the query already binds:
//!
//! ```text
//! note[L011]: termination of append/3 with adornment fbf is unproven;
//!             provable if arg1 bound or arg3 bound
//!   = note: nearest provable instantiation: additionally bind arg1
//! ```
//!
//! Like the blame lints, L011 needs a query and is silent without one.
//! It is also silent when the condition is `false` (L009/L010 already
//! cover "nothing helps") — there is no instantiation to suggest.

use crate::{Diagnostic, LintContext, LintPass, Severity};
use argus_core::{
    analyze_with_caches, infer_conditions_for, AnalysisOptions, BackwardsOptions, Verdict,
};
use argus_logic::span::Span;
use argus_logic::PredKey;
use std::collections::BTreeSet;

/// Cap on exhaustive condition search inside a lint pass: 2⁴ probes with
/// the raw-first pipeline stays interactive even on FM-heavy programs.
const LINT_MAX_ARITY: usize = 4;

/// Suggests the nearest inferred termination condition (L011).
pub struct ConditionSuggestion;

/// Span of the first parsed recursive rule of `pred`'s SCC — the anchor
/// the blame lints use, so L009 and L011 point at the same place. Falls
/// back to any rule defining `pred` when the recursion is elsewhere in
/// the SCC chain.
fn recursion_span(ctx: &LintContext<'_>, pred: &PredKey) -> Option<Span> {
    let members: Vec<PredKey> =
        ctx.graph.scc_id(pred).map(|id| ctx.graph.scc(id)).unwrap_or_default();
    ctx.program
        .rules
        .iter()
        .filter(|r| r.head.key() == *pred || members.contains(&r.head.key()))
        .filter(|r| r.body.iter().any(|l| members.contains(&l.atom.key())))
        .chain(ctx.program.rules.iter().filter(|r| r.head.key() == *pred))
        .find_map(|r| r.head.span.get().or_else(|| r.span.get()))
}

impl LintPass for ConditionSuggestion {
    fn name(&self) -> &'static str {
        "condition-suggestion"
    }

    fn run(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some((root, adornment)) = ctx.query else { return };
        if !ctx.program.idb_predicates().contains(root) {
            return; // L002 already covers the undefined query
        }
        let analysis = AnalysisOptions { parallelism: ctx.jobs, ..AnalysisOptions::default() };
        let report = analyze_with_caches(
            ctx.program,
            root,
            adornment.clone(),
            &analysis,
            None,
            ctx.memo.as_deref(),
        );
        ctx.record_incremental(report.incremental);
        if report.verdict == Verdict::Terminates {
            return;
        }
        let options = BackwardsOptions {
            max_arity: LINT_MAX_ARITY,
            analysis,
            scc_memo: ctx.memo.clone(),
            ..Default::default()
        };
        let inferred =
            infer_conditions_for(ctx.program, &[root.clone()].into_iter().collect(), &options);
        let Some(cond) = inferred.conditions.iter().find(|c| c.pred == *root) else { return };
        if cond.condition.is_false() {
            return; // L009/L010 already say nothing helps
        }

        let bound: BTreeSet<usize> = adornment.bound_positions().into_iter().collect();
        let nearest = cond
            .condition
            .disjuncts()
            .min_by_key(|d| (d.difference(&bound).count(), (*d).clone()))
            .expect("non-false condition has a disjunct");
        let missing: Vec<String> =
            nearest.difference(&bound).map(|p| format!("arg{}", p + 1)).collect();

        let with_adornment = if adornment.arity() == 0 {
            String::new()
        } else {
            format!(" with adornment {adornment}")
        };
        let mut d = Diagnostic::new(
            "L011",
            Severity::Note,
            recursion_span(ctx, root),
            format!(
                "termination of {root}{with_adornment} is unproven; provable if {}",
                cond.condition
            ),
        );
        d = if missing.is_empty() {
            // The condition covers the queried adornment even though the
            // direct analysis failed (possible on the fringes of the
            // abstraction); point at the disjunct that establishes it.
            d.with_note(format!(
                "the inferred condition already covers this instantiation \
                 (disjunct: {})",
                nearest.iter().map(|p| format!("arg{}", p + 1)).collect::<Vec<_>>().join(" and ")
            ))
        } else {
            d.with_note(format!(
                "nearest provable instantiation: additionally bind {}",
                missing.join(" and ")
            ))
        };
        if cond.capped {
            d = d.with_note(format!(
                "arity exceeds the inference cap ({LINT_MAX_ARITY}): only the all-bound \
                 instantiation was probed, so a weaker condition may exist"
            ));
        }
        out.push(d);
    }
}

#[cfg(test)]
mod tests {
    use crate::moded::parse_query_spec;
    use crate::{lint_source, LintOptions};

    fn options(spec: &str, adn: &str) -> LintOptions {
        LintOptions { query: Some(parse_query_spec(spec, adn).unwrap()) }
    }

    const APPEND: &str = "append([], Ys, Ys).\n\
                          append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n";

    #[test]
    fn unproven_query_gets_a_condition_suggestion() {
        let diags = lint_source(APPEND, &options("append/3", "fbf"));
        let d = diags.iter().find(|d| d.code == "L011").expect("L011");
        assert!(d.message.contains("arg1 bound or arg3 bound"), "{}", d.message);
        assert!(d.message.contains("fbf"), "{}", d.message);
        assert!(d.notes.iter().any(|n| n.contains("additionally bind arg1")), "{:?}", d.notes);
        assert!(d.span.is_some(), "anchored at the recursive rule");
    }

    #[test]
    fn proved_query_is_silent() {
        let diags = lint_source(APPEND, &options("append/3", "bff"));
        assert!(!diags.iter().any(|d| d.code == "L011"), "{diags:?}");
    }

    #[test]
    fn hopeless_query_is_left_to_blame_lints() {
        let diags = lint_source("p(X) :- p(X).\n", &options("p/1", "f"));
        assert!(!diags.iter().any(|d| d.code == "L011"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "L009" || d.code == "L010"), "{diags:?}");
    }

    #[test]
    fn suggestion_needs_a_query() {
        let diags = lint_source(APPEND, &LintOptions::default());
        assert!(!diags.iter().any(|d| d.code == "L011"), "{diags:?}");
    }
}
