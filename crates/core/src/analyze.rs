//! The end-to-end termination analyzer.
//!
//! Pipeline (paper §3–§6 plus appendices):
//!
//! 1. **Preprocess** (Appendix A): eliminate positive equality; alternate
//!    safe unfolding and predicate splitting for a fixed number of phases.
//! 2. **Modes**: propagate the query's bound–free adornment so every
//!    predicate has a single adornment (§3's standing assumption).
//! 3. **Size relations** (\[VG90\], automated in `argus-sizerel`): infer the
//!    imported inter-argument feasibility constraints for every predicate —
//!    required for the *whole* SCC before its termination analysis starts
//!    (§6.2). Manual constraints may override the inference.
//! 4. **Per SCC, bottom-up**: build Eq. (1) for every rule × recursive-
//!    subgoal pair, choose the δ's (§6.1 or Appendix C), take the LP dual
//!    and eliminate the undistinguished variables by Fourier–Motzkin
//!    (§4), conjoin all pairs' θ-constraints, and test feasibility with an
//!    exact simplex. A feasible point is a *termination witness*: per
//!    predicate, the nonnegative coefficients of a linear combination of
//!    bound argument sizes that strictly decreases (by δ) on every
//!    recursive descent.

use crate::delta::{assign_deltas, DeltaOutcome};
use crate::dual::{dual_fm_config, eq9_system, feasibility_system, project_pair_with, DeltaTerm};
use crate::incremental::{IncrementalRunStats, SccCache};
use crate::negweight::{positive_cycle_constraints, DeltaVars};
use crate::pairs::{ProjectionCache, RuleSubgoalSystem};
use crate::theta::ThetaSpace;
use argus_linear::fm::{FmStats, FmTier};
use argus_linear::{ConstraintSystem, Rat, Var};
use argus_logic::modes::{Adornment, ModeMap};
use argus_logic::span::Span;
use argus_logic::{DepGraph, PredKey, Program, Rule};
use argus_sizerel::{infer_size_relations, InferOptions, SizeRelations};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How δ decrements are chosen for mutual recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaMode {
    /// The paper's §6.1 procedure: δ ∈ {0, 1} fixed up front, Floyd
    /// min-plus closure to reject zero-weight cycles.
    #[default]
    Paper,
    /// Appendix C: δ's are variables, positive cycles enforced by path
    /// constraints; permits negative δ on some edges.
    PathConstraints,
}

/// Options for [`analyze`].
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Rounds of the Appendix A transformation driver (0 disables
    /// preprocessing; the paper suggests 3).
    pub transform_phases: usize,
    /// δ selection strategy.
    pub delta_mode: DeltaMode,
    /// Options for the size-relation inference.
    pub infer: InferOptions,
    /// Manually supplied size relations (override the inference, exactly
    /// like the paper's "imported feasibility constraints … taken as
    /// input").
    pub imported: Vec<(PredKey, argus_linear::Poly)>,
    /// Term-size norm used for both the size-relation inference and the
    /// decrease condition. The paper fixes structural size; [UVG88]'s
    /// list-length (right spine) is available as an alternative — some
    /// programs are provable under one and not the other.
    pub norm: argus_logic::Norm,
    /// Extension beyond the paper: when the single linear combination fails
    /// for an SCC, attempt a LEXICOGRAPHIC tuple of combinations
    /// ([`crate::lexico`]). Lifts the §7 limitation on programs like
    /// Ackermann whose descent alternates between arguments. Off by
    /// default to keep the baseline faithful to the paper.
    pub lexicographic: bool,
    /// Appendix B: restrict the imported relations to *binary partial-order
    /// constraints* (two variables, unit coefficients) — the information a
    /// Brodsky–Sagiv-style argument-mapping method works from. The paper
    /// observes this restriction still handles Examples 5.1 and 6.1 but
    /// loses Example 3.1 (`perm`), whose `append` constraint relates three
    /// sizes at once.
    pub restrict_imports_to_binary_orders: bool,
    /// Worker threads for the level-scheduled SCC pipeline and the
    /// per-pair projection probes. `0` (the default) means one per
    /// available core; `1` forces the fully sequential path. The analysis
    /// result — report text, certificates, JSON — is byte-identical at
    /// every setting.
    pub parallelism: usize,
    /// Fourier–Motzkin redundancy tier for the per-pair dual projections
    /// (debug knob; the analysis result is byte-identical at every tier,
    /// only the work done differs).
    pub fm_tier: FmTier,
    /// Share structurally identical per-pair projections through a per-run
    /// cache (on by default; another bytes-identical knob).
    pub fm_cache: bool,
    /// Wall-clock deadline for the whole analysis. Threaded into the
    /// Fourier–Motzkin engine ([`argus_linear::FmConfig::deadline`]) so a
    /// runaway projection aborts mid-elimination, and checked before the
    /// Appendix A transform retry. A deadline abort degrades the affected
    /// SCC to "no linear decrease found" — callers that care (the `argus
    /// serve` request path) must check the wall clock afterwards and
    /// discard the report rather than present it as a genuine verdict.
    /// `None` (the default) preserves the fully deterministic behavior.
    pub deadline: Option<std::time::Instant>,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        AnalysisOptions {
            transform_phases: 3,
            delta_mode: DeltaMode::Paper,
            infer: InferOptions::default(),
            imported: Vec::new(),
            norm: argus_logic::Norm::default(),
            lexicographic: false,
            restrict_imports_to_binary_orders: false,
            parallelism: 0,
            fm_tier: FmTier::default(),
            fm_cache: true,
            deadline: None,
        }
    }
}

/// Outcome of analyzing one SCC.
#[derive(Debug, Clone)]
pub enum SccOutcome {
    /// The SCC is not recursive: nothing to prove.
    NonRecursive,
    /// Termination proved; the witness gives, per predicate, the θ vector
    /// over its bound arguments.
    Proved {
        /// Per-predicate θ coefficients (bound argument positions).
        witness: BTreeMap<PredKey, Vec<Rat>>,
        /// The δ decrement chosen per dependency edge.
        deltas: BTreeMap<(PredKey, PredKey), Rat>,
    },
    /// Proved by the lexicographic extension ([`crate::lexico`]): a tuple
    /// of linear combinations ranks the recursion even though no single
    /// one does.
    ProvedLexicographic {
        /// The multi-level ranking.
        proof: crate::lexico::LexicographicProof,
    },
    /// §6.1 step 3 found a zero-weight cycle — strong evidence of
    /// nontermination.
    ZeroWeightCycle(Vec<PredKey>),
    /// The combined θ system is infeasible: no nonnegative linear
    /// combination of bound argument sizes provably decreases.
    NoLinearDecrease {
        /// A Farkas refutation of the θ system (over
        /// [`SccAnalysis::refutation_system`]), when one was found within
        /// the certificate budget. Lets the failure be re-checked without
        /// trusting the simplex: the multipliers combine the system's rows
        /// into an absurd positive constant.
        refutation: Option<argus_linear::FarkasCertificate>,
    },
}

/// How a blamed rule × subgoal pair defeats the θ search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlameKind {
    /// The pair's own constraints already admit no decreasing linear
    /// combination — this recursive call is unprovable in isolation.
    Alone,
    /// Every pair is satisfiable alone, but adding this one makes the
    /// conjunction infeasible: it demands a measure incompatible with the
    /// measures the earlier pairs allow.
    Conjunction,
}

/// The rule × recursive-subgoal pair that blocks the termination proof of
/// an SCC — the "which recursive call defeats every argument-size measure"
/// explanation attached to [`SccOutcome::NoLinearDecrease`].
#[derive(Debug, Clone)]
pub struct PairBlame {
    /// Head predicate of the blamed rule.
    pub head_pred: PredKey,
    /// Predicate of the blamed recursive subgoal.
    pub sub_pred: PredKey,
    /// The blamed rule itself (spans intact when the program was parsed).
    pub rule: Rule,
    /// Index of the blamed rule in the SCC's [`DepGraph::scc_rules`] list
    /// (lets the incremental memo store blame positionally and re-attach
    /// the rule — with current spans — on a cache hit).
    pub rule_index: usize,
    /// Index of the blamed recursive subgoal in the rule body.
    pub subgoal_index: usize,
    /// Whether the pair fails alone or only in conjunction.
    pub kind: BlameKind,
}

impl PairBlame {
    /// Source span of the blamed recursive call, if the rule was parsed.
    pub fn subgoal_span(&self) -> Option<Span> {
        self.rule
            .body
            .get(self.subgoal_index)
            .and_then(|l| l.atom.span.get().or_else(|| l.span.get()))
            .or_else(|| self.rule.span.get())
    }

    /// One-line human-readable explanation.
    pub fn describe(&self) -> String {
        let call = self
            .rule
            .body
            .get(self.subgoal_index)
            .map(|l| l.atom.to_string())
            .unwrap_or_else(|| self.sub_pred.to_string());
        let loc = match self.subgoal_span() {
            Some(s) => format!(" at {s}"),
            None => String::new(),
        };
        let how = match self.kind {
            BlameKind::Alone => "admits no decreasing measure even alone",
            BlameKind::Conjunction => {
                "is incompatible with the measures the other recursive calls allow"
            }
        };
        format!("recursive call `{call}`{loc} in a rule for {head} {how}", head = self.head_pred)
    }
}

impl SccOutcome {
    /// Does this outcome certify termination of the SCC?
    pub fn is_proved(&self) -> bool {
        matches!(
            self,
            SccOutcome::NonRecursive
                | SccOutcome::Proved { .. }
                | SccOutcome::ProvedLexicographic { .. }
        )
    }
}

/// Per-SCC performance counters (`argus analyze --stats`). The FM counters
/// are exact deterministic counts — identical at every `--jobs` setting and
/// independent of the cache hit/miss pattern (cache hits replay the stored
/// counters) — so they are safe to pin in CI. Wall time is the one
/// exception and is kept out of JSON output.
#[derive(Debug, Clone, Copy, Default)]
pub struct SccStats {
    /// Wall-clock time analyzing this SCC (text reports only; not stable).
    pub wall_nanos: u128,
    /// Merged Fourier–Motzkin counters over every pair projection.
    pub fm: FmStats,
    /// Pair projections performed (cache hits included).
    pub projections: u64,
}

/// Whole-run counters (`argus analyze --stats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Projection-cache lookups (equals total pair projections).
    pub cache_requests: u64,
    /// Distinct projections computed (cache entries).
    pub cache_entries: u64,
}

impl RunStats {
    /// Lookups answered from the cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_requests.saturating_sub(self.cache_entries)
    }
}

/// The analysis record of one SCC.
#[derive(Debug, Clone)]
pub struct SccAnalysis {
    /// Predicates of the SCC.
    pub members: Vec<PredKey>,
    /// Result.
    pub outcome: SccOutcome,
    /// The θ constraint system after eliminating all undistinguished
    /// variables (for display; empty for nonrecursive SCCs).
    pub theta_constraints: ConstraintSystem,
    /// θ variable allocation (for rendering `theta_constraints`).
    pub theta_space: ThetaSpace,
    /// Number of rule × recursive-subgoal pairs processed.
    pub pair_count: usize,
    /// When the outcome is [`SccOutcome::NoLinearDecrease`], the pair that
    /// blocks the proof (when one could be isolated).
    pub blame: Option<PairBlame>,
    /// Performance counters for this SCC's analysis.
    pub stats: SccStats,
}

impl SccAnalysis {
    /// The system a [`SccOutcome::NoLinearDecrease`] refutation certifies
    /// against: the reduced θ constraints plus the `θ ≥ 0` rows.
    pub fn refutation_system(&self) -> ConstraintSystem {
        let mut sys = self.theta_constraints.clone();
        for v in self.theta_space.all_vars() {
            sys.push(argus_linear::Constraint::nonneg(v));
        }
        sys
    }

    /// If the outcome carries a Farkas refutation, re-verify it against
    /// [`SccAnalysis::refutation_system`].
    pub fn verify_refutation(&self) -> Option<bool> {
        match &self.outcome {
            SccOutcome::NoLinearDecrease { refutation: Some(cert) } => {
                Some(cert.verify(&self.refutation_system()))
            }
            _ => None,
        }
    }

    /// Render the reduced θ constraints with their paper-style names.
    pub fn render_constraints(&self) -> Vec<String> {
        self.theta_constraints
            .constraints()
            .iter()
            .map(|c| self.theta_space.pool().render_constraint(c))
            .collect()
    }
}

/// Overall verdict for the queried predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every recursive SCC reachable from the query has a decrease
    /// certificate: top-down evaluation terminates.
    Terminates,
    /// At least one SCC could not be certified. The method is a sufficient
    /// condition: this does NOT prove nontermination …
    Unknown,
    /// … except that a zero-weight cycle is reported separately as strong
    /// evidence of nontermination (§6.1).
    ZeroWeightCycle,
}

/// Full report of a termination analysis.
#[derive(Debug, Clone)]
pub struct TerminationReport {
    /// The program after Appendix A preprocessing.
    pub program: Program,
    /// The query predicate.
    pub query: PredKey,
    /// Inferred adornments.
    pub modes: ModeMap,
    /// Inferred (or supplied) size relations.
    pub size_relations: SizeRelations,
    /// Per-SCC analyses, bottom-up.
    pub sccs: Vec<SccAnalysis>,
    /// Overall verdict.
    pub verdict: Verdict,
    /// Whole-run performance counters.
    pub run_stats: RunStats,
    /// Per-SCC memo counters when the run used [`analyze_with_caches`]'s
    /// incremental mode (`None` on a cold run). Stats-only: never part of
    /// the default report text or JSON, which stay byte-identical to a
    /// cold run.
    pub incremental: Option<IncrementalRunStats>,
}

impl TerminationReport {
    /// The analysis record covering predicate `p`, if any.
    pub fn scc_of(&self, p: &PredKey) -> Option<&SccAnalysis> {
        self.sccs.iter().find(|s| s.members.contains(p))
    }

    /// The θ witness for `p`, if the analysis proved its SCC.
    pub fn witness_for(&self, p: &PredKey) -> Option<&[Rat]> {
        match &self.scc_of(p)?.outcome {
            SccOutcome::Proved { witness, .. } => witness.get(p).map(|v| v.as_slice()),
            _ => None,
        }
    }

    /// Render the `--stats` text block: per-SCC wall time and FM counters,
    /// then the projection-cache hit rate.
    pub fn render_stats(&self) -> String {
        use fmt::Write as _;
        let mut out = String::from("stats:\n");
        for scc in &self.sccs {
            let names: Vec<String> = scc.members.iter().map(|p| p.to_string()).collect();
            let fm = &scc.stats.fm;
            let _ = writeln!(
                out,
                "  SCC {{{}}}: {:.3}ms, {} projection(s), fm rows {} -> {} (peak {}), \
                 pairs {}, dedup {}, subsume {}, chernikov {}, lp {}, combs {}i64/{}big",
                names.join(", "),
                scc.stats.wall_nanos as f64 / 1e6,
                scc.stats.projections,
                fm.rows_in,
                fm.rows_out,
                fm.peak_rows,
                fm.pairs_combined,
                fm.dedup_hits,
                fm.subsume_hits,
                fm.chernikov_drops,
                fm.lp_drops,
                fm.small_combs,
                fm.big_combs,
            );
        }
        let rs = &self.run_stats;
        if rs.cache_requests > 0 {
            let _ = writeln!(
                out,
                "  projection cache: {} request(s), {} computed, {} hit(s) ({:.1}%)",
                rs.cache_requests,
                rs.cache_entries,
                rs.cache_hits(),
                100.0 * rs.cache_hits() as f64 / rs.cache_requests as f64,
            );
        } else {
            let _ = writeln!(out, "  projection cache: disabled or unused");
        }
        if let Some(inc) = &self.incremental {
            let _ = writeln!(
                out,
                "  incremental: sizerel {} hit(s) / {} miss(es), theta {} hit(s) / {} miss(es), \
                 dirty cone {} of {} scc computation(s)",
                inc.size_hits,
                inc.size_misses,
                inc.theta_hits,
                inc.theta_misses,
                inc.dirty(),
                inc.total(),
            );
        }
        // Process-global substrate gauges (intentionally text-only: they
        // accumulate across every program this process has touched, so
        // they would break byte-stability of the JSON report).
        let _ = writeln!(
            out,
            "  substrate: {} symbol(s) interned ({} bytes), {} arena byte(s) live",
            argus_logic::intern::symbols_interned(),
            argus_logic::intern::interned_bytes(),
            argus_logic::arena::arena_bytes(),
        );
        out
    }
}

impl fmt::Display for TerminationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query: {} — verdict: {:?}", self.query, self.verdict)?;
        for scc in &self.sccs {
            let names: Vec<String> = scc.members.iter().map(|p| p.to_string()).collect();
            write!(f, "  SCC {{{}}}: ", names.join(", "))?;
            match &scc.outcome {
                SccOutcome::NonRecursive => writeln!(f, "nonrecursive")?,
                SccOutcome::Proved { witness, deltas } => {
                    writeln!(f, "PROVED")?;
                    for (p, th) in witness {
                        let parts: Vec<String> = th.iter().map(|r| r.to_string()).collect();
                        writeln!(f, "    theta[{p}] = ({})", parts.join(", "))?;
                    }
                    for ((h, s), d) in deltas {
                        writeln!(f, "    delta[{h} -> {s}] = {d}")?;
                    }
                }
                SccOutcome::ProvedLexicographic { proof } => {
                    writeln!(f, "PROVED (lexicographic, {} level(s))", proof.levels.len())?;
                    for (li, level) in proof.levels.iter().enumerate() {
                        for (p, th) in level {
                            let parts: Vec<String> = th.iter().map(|r| r.to_string()).collect();
                            writeln!(
                                f,
                                "    level {} theta[{p}] = ({})",
                                li + 1,
                                parts.join(", ")
                            )?;
                        }
                    }
                }
                SccOutcome::ZeroWeightCycle(cycle) => {
                    let names: Vec<String> = cycle.iter().map(|p| p.to_string()).collect();
                    writeln!(f, "ZERO-WEIGHT CYCLE: {}", names.join(" -> "))?
                }
                SccOutcome::NoLinearDecrease { refutation } => {
                    writeln!(
                        f,
                        "no linear decrease found{}",
                        if refutation.is_some() { " (Farkas refutation attached)" } else { "" }
                    )?;
                    if let Some(blame) = &scc.blame {
                        writeln!(f, "    blame: {}", blame.describe())?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Analyze `program` for top-down termination of `query` called with
/// `adornment`.
///
/// The Appendix A transformations are applied *lazily*: the raw program is
/// analyzed first, and only when that fails are the transformations run and
/// the analysis retried (the transformations exist to *enable* analysis on
/// programs not already in the required form, such as Example A.1; applying
/// them to already-analyzable programs only obscures the result).
pub fn analyze(
    program: &Program,
    query: &PredKey,
    adornment: Adornment,
    options: &AnalysisOptions,
) -> TerminationReport {
    analyze_with_cache(program, query, adornment, options, None)
}

/// [`analyze`] with an externally owned projection cache.
///
/// When `shared_cache` is `Some`, per-pair dual projections are looked up
/// in — and published to — the supplied cache instead of a cache created
/// for this run, letting a long-lived process (the `argus serve` worker
/// pool) reuse projections across analyses. The cache is keyed on
/// canonical renamed rows plus the FM tier and row cap, and entries are
/// pure functions of their key, so sharing cannot change any report byte;
/// only [`RunStats`] (which then snapshots the shared cache's lifetime
/// totals) differs from the per-run configuration. With `None` this is
/// exactly [`analyze`].
pub fn analyze_with_cache(
    program: &Program,
    query: &PredKey,
    adornment: Adornment,
    options: &AnalysisOptions,
    shared_cache: Option<&ProjectionCache>,
) -> TerminationReport {
    analyze_with_caches(program, query, adornment, options, shared_cache, None)
}

/// [`analyze_with_cache`] with an additional per-SCC memo (the incremental
/// mode behind `argus analyze --incremental`, `argus watch`, and the serve
/// layer's SCC cache).
///
/// With `scc_memo` supplied, both per-SCC computations of the pipeline —
/// the size-relation fixpoint and the θ analysis — are keyed on a content
/// hash of the SCC's rules plus its imported inputs and answered from the
/// memo when unchanged (see [`crate::incremental`]). After an edit only
/// the dirty SCC cone recomputes, and the resulting report is
/// byte-identical to a cold run in its text and default-JSON forms.
/// [`RunStats`] (projection-cache totals, `--stats` only) legitimately
/// differs — cache hits skip projections entirely — and
/// [`TerminationReport::incremental`] is populated with hit/miss counters.
pub fn analyze_with_caches(
    program: &Program,
    query: &PredKey,
    adornment: Adornment,
    options: &AnalysisOptions,
    shared_cache: Option<&ProjectionCache>,
    scc_memo: Option<&SccCache>,
) -> TerminationReport {
    let raw = analyze_prepared(program, query, adornment.clone(), options, shared_cache, scc_memo);
    if raw.verdict == Verdict::Terminates || options.transform_phases == 0 {
        return raw;
    }
    if options.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
        return raw; // budget spent: skip the transform retry
    }
    // Retry on the transformed program.
    let roots: BTreeSet<PredKey> = [query.clone()].into_iter().collect();
    let (transformed, _report) =
        argus_transform::transform_fixed_phases(program, &roots, options.transform_phases);
    if transformed == *program || transformed.rules.len() > 1000 {
        return raw; // nothing changed, or growth guard tripped
    }
    let cooked = analyze_prepared(&transformed, query, adornment, options, shared_cache, scc_memo);
    if cooked.verdict == Verdict::Terminates {
        return cooked;
    }
    // Neither proved: prefer the raw report when it carries the stronger
    // zero-weight-cycle evidence.
    if raw.verdict == Verdict::ZeroWeightCycle {
        raw
    } else {
        cooked
    }
}

/// Analyze a program assumed already in the required syntactic form.
fn analyze_prepared(
    program: &Program,
    query: &PredKey,
    adornment: Adornment,
    options: &AnalysisOptions,
    shared_cache: Option<&ProjectionCache>,
    scc_memo: Option<&SccCache>,
) -> TerminationReport {
    let program = program.clone();

    // 2. Adorn: one predicate copy per calling adornment, so every
    // predicate has a single bound-free adornment (the paper's standing
    // assumption in §3).
    let adorned = argus_logic::adorn_program(&program, query, adornment);
    let program = adorned.program;
    let query = &adorned.query;
    let modes = adorned.modes;

    let graph = DepGraph::build(&program);
    let proc_index = argus_logic::program::ProcIndex::build(&program);
    let mut incr = IncrementalRunStats::default();

    // 3. Size relations (inferred under the analysis norm). The memoized
    // path walks the same SCCs in the same order with the same per-SCC
    // fixpoint, so its result is byte-identical to the cold inference.
    let infer_options = InferOptions { norm: options.norm, ..options.infer.clone() };
    let mut rels = match scc_memo {
        None => infer_size_relations(&program, &infer_options),
        Some(memo) => crate::incremental::incremental_size_relations(
            &program,
            &graph,
            &proc_index,
            &infer_options,
            memo,
            &mut incr,
        ),
    };
    for (p, poly) in &options.imported {
        rels.insert(p.clone(), poly.clone());
    }
    if options.restrict_imports_to_binary_orders {
        rels = restrict_to_binary_orders(&rels);
    }
    // Digests of the final relations, for θ-phase memo keys (computed once
    // up front so the per-SCC workers share an immutable map).
    let rel_digests: Option<std::collections::HashMap<PredKey, u64>> = scc_memo.map(|_| {
        rels.iter().map(|(p, poly)| (p.clone(), crate::incremental::poly_digest(poly))).collect()
    });

    // 4. SCCs bottom-up, scheduled by topological level. The size
    // relations every SCC imports (§6.2) were inferred globally above, so
    // SCCs on the same level share only immutable inputs and fan out
    // across the worker pool. Results land in per-SCC slots and are
    // emitted in the sequential path's exact bottom-up order, so the
    // report (and everything derived from it) is byte-identical at any
    // parallelism.
    //
    // One projection cache per run, shared by every SCC and every worker —
    // unless the caller supplied a longer-lived one.
    let own_cache = match shared_cache {
        Some(_) => None,
        None if options.fm_cache => Some(ProjectionCache::new()),
        None => None,
    };
    let cache = shared_cache.or(own_cache.as_ref());
    let mut slots: Vec<Option<SccAnalysis>> = (0..graph.scc_count()).map(|_| None).collect();
    for level in graph.scc_levels() {
        // Skip SCCs not reachable from the query (no adornment) and
        // EDB-only SCCs: they produce no report entry.
        let jobs: Vec<usize> = level
            .into_iter()
            .filter(|&id| {
                let members = graph.scc(id);
                let reachable = members.iter().any(|p| modes.get(p).is_some());
                let has_rules = members.iter().any(|p| !proc_index.rule_indices(p).is_empty());
                reachable && has_rules
            })
            .collect();
        let workers = crate::par::effective_workers(options.parallelism, jobs.len());
        let results = crate::par::par_map_indexed(&jobs, workers, |_, &scc_id| {
            match (scc_memo, &rel_digests) {
                (Some(memo), Some(digests)) => analyze_one_scc_memo(
                    &graph, &program, scc_id, &modes, &rels, digests, options, cache, memo,
                ),
                _ => (analyze_one_scc(&graph, &program, scc_id, &modes, &rels, options, cache), 0),
            }
        });
        for (id, (analysis, memo_flag)) in jobs.into_iter().zip(results) {
            match memo_flag {
                THETA_HIT => incr.theta_hits += 1,
                THETA_MISS => incr.theta_misses += 1,
                _ => {}
            }
            slots[id] = Some(analysis);
        }
    }

    let mut sccs = Vec::new();
    let mut verdict = Verdict::Terminates;
    for scc_id in graph.sccs_bottom_up() {
        let Some(analysis) = slots[scc_id].take() else { continue };
        match &analysis.outcome {
            SccOutcome::ZeroWeightCycle(_) => verdict = Verdict::ZeroWeightCycle,
            SccOutcome::NoLinearDecrease { .. } if verdict == Verdict::Terminates => {
                verdict = Verdict::Unknown
            }
            _ => {}
        }
        sccs.push(analysis);
    }

    let run_stats = match cache {
        Some(c) => RunStats { cache_requests: c.requests(), cache_entries: c.entries() },
        None => RunStats::default(),
    };
    TerminationReport {
        program,
        query: query.clone(),
        modes,
        size_relations: rels,
        sccs,
        verdict,
        run_stats,
        incremental: scc_memo.map(|_| incr),
    }
}

/// θ-phase memo flags returned by [`analyze_one_scc_memo`].
const THETA_HIT: u8 = 1;
/// See [`THETA_HIT`].
const THETA_MISS: u8 = 2;

/// [`analyze_one_scc`] with a memo: recursive SCCs are keyed on their
/// rules, adornments, and imported size relations, and replayed from the
/// memo when unchanged. Nonrecursive SCCs are computed directly (the
/// short-circuit is cheaper than a probe). Returns the analysis plus a
/// flag: 0 unmemoized, [`THETA_HIT`], or [`THETA_MISS`].
#[allow(clippy::too_many_arguments)] // same shared context as analyze_one_scc
fn analyze_one_scc_memo(
    graph: &DepGraph,
    program: &Program,
    scc_id: usize,
    modes: &ModeMap,
    rels: &SizeRelations,
    rel_digests: &std::collections::HashMap<PredKey, u64>,
    options: &AnalysisOptions,
    cache: Option<&ProjectionCache>,
    memo: &SccCache,
) -> (SccAnalysis, u8) {
    let started = std::time::Instant::now();
    let members: Vec<PredKey> = graph.scc(scc_id);
    if !members.iter().any(|p| graph.is_recursive(p)) {
        return (analyze_one_scc(graph, program, scc_id, modes, rels, options, cache), 0);
    }
    let rules = graph.scc_rules(program, scc_id);
    let mentioned: Vec<PredKey> = {
        let mut set: BTreeSet<PredKey> = BTreeSet::new();
        for r in &rules {
            set.insert(PredKey { name: r.head.name, arity: r.head.args.len() });
            for l in &r.body {
                set.insert(PredKey { name: l.atom.name, arity: l.atom.args.len() });
            }
        }
        set.into_iter().collect()
    };
    let key =
        crate::incremental::theta_key(&members, &rules, &mentioned, modes, rel_digests, options);
    if let Some(body) = memo.get(&key) {
        if let Some(mut analysis) =
            crate::incremental::decode_theta_entry(&body, &members, &rules, modes)
        {
            analysis.stats.wall_nanos = started.elapsed().as_nanos();
            return (analysis, THETA_HIT);
        }
    }
    let analysis = analyze_one_scc(graph, program, scc_id, modes, rels, options, cache);
    // Deadline safety: FM aborts only fire once the wall clock passes the
    // deadline, so an SCC finishing *before* the deadline cannot contain a
    // degraded projection — only those results are published.
    if options.deadline.is_none_or(|d| std::time::Instant::now() < d) {
        memo.put(&key, &crate::incremental::encode_theta_entry(&analysis));
    }
    (analysis, THETA_MISS)
}

/// Analyze one SCC end-to-end: nonrecursive short-circuit, the θ search,
/// and the optional lexicographic fallback. Reads only shared immutable
/// inputs, so SCCs on the same topological level can run concurrently.
fn analyze_one_scc(
    graph: &DepGraph,
    program: &Program,
    scc_id: usize,
    modes: &ModeMap,
    rels: &SizeRelations,
    options: &AnalysisOptions,
    cache: Option<&ProjectionCache>,
) -> SccAnalysis {
    let started = std::time::Instant::now();
    let mut analysis = (|| {
        let members: Vec<PredKey> = graph.scc(scc_id);
        let recursive = members.iter().any(|p| graph.is_recursive(p));
        if !recursive {
            return SccAnalysis {
                members,
                outcome: SccOutcome::NonRecursive,
                theta_constraints: ConstraintSystem::new(),
                theta_space: ThetaSpace::new(),
                pair_count: 0,
                blame: None,
                stats: SccStats::default(),
            };
        }
        let mut analysis =
            analyze_scc(graph, program, scc_id, &members, modes, rels, options, cache);
        if !analysis.outcome.is_proved() && options.lexicographic {
            if let Some(proof) = crate::lexico::prove_scc_lexicographic(
                program,
                graph,
                scc_id,
                modes,
                rels,
                options.norm,
            ) {
                analysis.outcome = SccOutcome::ProvedLexicographic { proof };
            }
        }
        analysis
    })();
    analysis.stats.wall_nanos = started.elapsed().as_nanos();
    analysis
}

/// Attempt a Farkas refutation of the θ feasibility system (including its
/// nonnegativity rows) within a fixed certificate budget.
fn refute_theta(
    theta_sys: &ConstraintSystem,
    nonneg: &BTreeSet<Var>,
) -> Option<argus_linear::FarkasCertificate> {
    let mut sys = theta_sys.clone();
    for &v in nonneg {
        sys.push(argus_linear::Constraint::nonneg(v));
    }
    argus_linear::farkas::refute(&sys, 20_000)
}

/// Appendix B restriction: keep only constraints with at most two
/// variables, both with coefficient ±1 after canonicalization — i.e. plain
/// partial-order (and difference) constraints between argument positions.
fn restrict_to_binary_orders(rels: &SizeRelations) -> SizeRelations {
    let mut out = SizeRelations::new();
    for (p, poly) in rels.iter() {
        if poly.is_empty() {
            out.insert(p.clone(), poly.clone());
            continue;
        }
        let kept: Vec<argus_linear::Constraint> = poly
            .constraints()
            .constraints()
            .iter()
            .filter(|c| {
                let canon = c.canonicalized();
                let nvars = canon.expr.terms().count();
                nvars <= 2 && canon.expr.terms().all(|(_, k)| k == &Rat::one() || k == &-Rat::one())
            })
            .cloned()
            .collect();
        out.insert(
            p.clone(),
            argus_linear::Poly::from_constraints(p.arity, ConstraintSystem::from_constraints(kept)),
        );
    }
    out
}

/// Analyze one recursive SCC.
#[allow(clippy::too_many_arguments)] // shared immutable analysis context, one slot each
fn analyze_scc(
    graph: &DepGraph,
    program: &Program,
    scc_id: usize,
    members: &[PredKey],
    modes: &ModeMap,
    rels: &SizeRelations,
    options: &AnalysisOptions,
    cache: Option<&ProjectionCache>,
) -> SccAnalysis {
    // θ space: one variable per bound argument of each member.
    let mut space = ThetaSpace::new();
    for p in members {
        let bound = modes.get(p).map(|a| a.bound_positions().len()).unwrap_or(p.arity);
        space.add_pred(p, bound);
    }

    // Build all rule × recursive-subgoal pairs.
    let rules = graph.scc_rules(program, scc_id);
    let mut pairs: Vec<RuleSubgoalSystem> = Vec::new();
    for (ri, rule) in rules.iter().enumerate() {
        for si in graph.recursive_subgoals(rule) {
            pairs.push(crate::pairs::build_pair_with_norm(rule, ri, si, modes, rels, options.norm));
        }
    }

    match options.delta_mode {
        DeltaMode::Paper => {
            // §6.1: fixed δ's + zero-cycle check.
            let assignment = match assign_deltas(members, &pairs) {
                DeltaOutcome::Ok(a) => a,
                DeltaOutcome::ZeroWeightCycle(cycle) => {
                    return SccAnalysis {
                        members: members.to_vec(),
                        outcome: SccOutcome::ZeroWeightCycle(cycle),
                        theta_constraints: ConstraintSystem::new(),
                        theta_space: space,
                        pair_count: pairs.len(),
                        blame: None,
                        stats: SccStats::default(),
                    };
                }
            };
            // Build every pair's Eq. (9) system sequentially (the w base
            // advances pair by pair), then fan the expensive Fourier–
            // Motzkin projections across the worker pool. The sequential
            // path stops at the first failed projection, so the results
            // are truncated at the first `None` — identical `projected`
            // prefix, identical outcome.
            let mut systems = Vec::with_capacity(pairs.len());
            let mut w_base: Var = space.len();
            for pair in &pairs {
                let d = assignment.get(&pair.head_pred, &pair.sub_pred);
                let (sys, w) = eq9_system(pair, &space, w_base, DeltaTerm::Constant(d));
                w_base += w.len();
                systems.push((sys, w));
            }
            let workers = crate::par::effective_workers(options.parallelism, systems.len());
            let cfg = argus_linear::FmConfig {
                deadline: options.deadline,
                ..dual_fm_config(options.fm_tier)
            };
            let results = crate::par::par_map_indexed(&systems, workers, |_, (sys, w)| {
                let mut st = FmStats::default();
                let r = project_pair_with(sys, w, &cfg, cache, &mut st);
                (r, st)
            });
            // Merge *every* pair's FM counters (not just the prefix before a
            // failed projection) so stats stay identical across `--jobs`.
            let mut fm_stats = FmStats::default();
            let projections = results.len() as u64;
            let mut projected = Vec::new();
            let mut ok = true;
            for (r, st) in results {
                fm_stats.merge(&st);
                if !ok {
                    continue;
                }
                match r {
                    Some(p) => projected.push(p),
                    None => ok = false,
                }
            }
            let (theta_sys, nonneg) = feasibility_system(&projected, &space);
            let outcome = if !ok {
                SccOutcome::NoLinearDecrease { refutation: None }
            } else {
                match argus_linear::simplex::feasible_point(&theta_sys, &nonneg) {
                    Some(point) => SccOutcome::Proved {
                        witness: space.extract_witness(&point),
                        deltas: assignment
                            .delta
                            .iter()
                            .map(|(e, d)| (e.clone(), Rat::from_int(*d)))
                            .collect(),
                    },
                    None => SccOutcome::NoLinearDecrease {
                        refutation: refute_theta(&theta_sys, &nonneg),
                    },
                }
            };
            let blame = match &outcome {
                SccOutcome::NoLinearDecrease { .. } => {
                    compute_blame(&rules, &pairs, &[], &projected, &space, !ok)
                }
                _ => None,
            };
            SccAnalysis {
                members: members.to_vec(),
                outcome,
                theta_constraints: theta_sys,
                theta_space: space,
                pair_count: pairs.len(),
                blame,
                stats: SccStats { wall_nanos: 0, fm: fm_stats, projections },
            }
        }
        DeltaMode::PathConstraints => {
            // Appendix C: symbolic δ's with positive-cycle path constraints.
            let edges: BTreeSet<(PredKey, PredKey)> =
                pairs.iter().map(|p| (p.head_pred.clone(), p.sub_pred.clone())).collect();
            let delta_base: Var = space.len();
            let deltas = DeltaVars::allocate(&edges, delta_base);
            let pi_base = delta_base + deltas.len();
            let cycle_sys = positive_cycle_constraints(members, &deltas, pi_base);

            let base = vec![cycle_sys];
            // Same build-then-fan-out shape as the §6.1 branch: sequential
            // w allocation, parallel projections, truncate at first `None`.
            let mut systems = Vec::with_capacity(pairs.len());
            let mut w_base: Var = pi_base + members.len() * members.len();
            for pair in &pairs {
                let dv = deltas.get(&pair.head_pred, &pair.sub_pred).expect("edge allocated");
                let (sys, w) = eq9_system(pair, &space, w_base, DeltaTerm::Variable(dv));
                w_base += w.len();
                systems.push((sys, w));
            }
            let workers = crate::par::effective_workers(options.parallelism, systems.len());
            let cfg = argus_linear::FmConfig {
                deadline: options.deadline,
                ..dual_fm_config(options.fm_tier)
            };
            let results = crate::par::par_map_indexed(&systems, workers, |_, (sys, w)| {
                let mut st = FmStats::default();
                let r = project_pair_with(sys, w, &cfg, cache, &mut st);
                (r, st)
            });
            let mut fm_stats = FmStats::default();
            let projections = results.len() as u64;
            let mut pair_systems = Vec::new();
            let mut ok = true;
            for (r, st) in results {
                fm_stats.merge(&st);
                if !ok {
                    continue;
                }
                match r {
                    Some(p) => pair_systems.push(p),
                    None => ok = false,
                }
            }
            let mut projected = base.clone();
            projected.extend(pair_systems.iter().cloned());
            let (theta_sys, nonneg) = feasibility_system(&projected, &space);
            // δ variables stay free (that is the point of Appendix C).
            let outcome = if !ok {
                SccOutcome::NoLinearDecrease { refutation: None }
            } else {
                match argus_linear::simplex::feasible_point(&theta_sys, &nonneg) {
                    Some(point) => SccOutcome::Proved {
                        witness: space.extract_witness(&point),
                        deltas: deltas
                            .iter()
                            .map(|(e, v)| {
                                (e.clone(), point.get(v).cloned().unwrap_or_else(Rat::zero))
                            })
                            .collect(),
                    },
                    None => SccOutcome::NoLinearDecrease {
                        refutation: refute_theta(&theta_sys, &nonneg),
                    },
                }
            };
            let blame = match &outcome {
                SccOutcome::NoLinearDecrease { .. } => {
                    compute_blame(&rules, &pairs, &base, &pair_systems, &space, !ok)
                }
                _ => None,
            };
            SccAnalysis {
                members: members.to_vec(),
                outcome,
                theta_constraints: theta_sys,
                theta_space: space,
                pair_count: pairs.len(),
                blame,
                stats: SccStats { wall_nanos: 0, fm: fm_stats, projections },
            }
        }
    }
}

/// Isolate the rule × recursive-subgoal pair that blocks the θ search.
///
/// `pair_systems[i]` is the projected θ-constraint system of `pairs[i]`;
/// `base` holds constraints shared by all pairs (the Appendix C cycle
/// constraints; empty in §6.1 mode). When `projection_failed`, projection
/// stopped at `pairs[pair_systems.len()]` — that pair's own system is
/// infeasible, so it is blamed outright. Otherwise each pair is tested
/// *alone* (against `base`), and if every pair is individually satisfiable
/// a prefix scan finds the first pair that tips the conjunction over.
fn compute_blame(
    rules: &[&Rule],
    pairs: &[RuleSubgoalSystem],
    base: &[ConstraintSystem],
    pair_systems: &[ConstraintSystem],
    space: &ThetaSpace,
    projection_failed: bool,
) -> Option<PairBlame> {
    let blame_from = |idx: usize, kind: BlameKind| -> Option<PairBlame> {
        let pair = pairs.get(idx)?;
        let rule = rules.get(pair.rule_index).map(|r| (*r).clone())?;
        Some(PairBlame {
            head_pred: pair.head_pred.clone(),
            sub_pred: pair.sub_pred.clone(),
            rule,
            rule_index: pair.rule_index,
            subgoal_index: pair.subgoal_index,
            kind,
        })
    };
    let infeasible = |systems: &[ConstraintSystem]| -> bool {
        let (sys, nonneg) = feasibility_system(systems, space);
        argus_linear::simplex::feasible_point(&sys, &nonneg).is_none()
    };

    if projection_failed {
        return blame_from(pair_systems.len(), BlameKind::Alone);
    }
    for (i, ps) in pair_systems.iter().enumerate() {
        let mut subset = base.to_vec();
        subset.push(ps.clone());
        if infeasible(&subset) {
            return blame_from(i, BlameKind::Alone);
        }
    }
    let mut subset = base.to_vec();
    for (i, ps) in pair_systems.iter().enumerate() {
        subset.push(ps.clone());
        if infeasible(&subset) {
            return blame_from(i, BlameKind::Conjunction);
        }
    }
    None
}

/// Convenience: parse, analyze with default options, return the report.
///
/// `query_spec` is `"name/arity"`, `adornment` a string of `b`/`f`.
pub fn analyze_source(
    src: &str,
    query_spec: &str,
    adornment: &str,
) -> Result<TerminationReport, String> {
    let program = argus_logic::parser::parse_program(src).map_err(|e| e.to_string())?;
    let (name, arity) = query_spec
        .rsplit_once('/')
        .ok_or_else(|| format!("bad query spec {query_spec:?} (want name/arity)"))?;
    let arity: usize = arity.parse().map_err(|_| format!("bad arity in {query_spec:?}"))?;
    let query = PredKey::new(name, arity);
    let adornment = Adornment::parse(adornment)
        .ok_or_else(|| format!("bad adornment {adornment:?} (want e.g. \"bf\")"))?;
    if adornment.arity() != arity {
        return Err(format!("adornment arity {} != predicate arity {arity}", adornment.arity()));
    }
    Ok(analyze(&program, &query, adornment, &AnalysisOptions::default()))
}
