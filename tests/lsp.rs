//! End-to-end tests of the LSP server (`argus lsp`).
//!
//! The load-bearing contract is **byte-equivalence**: for every corpus
//! program, the diagnostics a `textDocument/publishDiagnostics`
//! notification carries must agree — code for code, byte offset for
//! byte offset, message for message — with what `argus lint --json`
//! prints for the same source and query, at `--jobs 0` and `--jobs 8`
//! alike. The editor view and the CLI view are the same analysis; this
//! suite pins that they can never drift apart.

use argus::diag::render::render_json;
use argus::diag::{lint_source, LintOptions};
use argus::lsp::{spawn_in_process, LspClient, LspOptions};
use argus::serve::jsonval::{self, Json};
use std::io::Write;
use std::process::{Child, Command, Stdio};

/// Corpus source plus its query directive, so one LSP session can carry
/// per-document queries without per-document server options.
fn directive_text(source: &str, query: &str, adornment: &str) -> String {
    let mut text = source.trim_end().to_string();
    text.push('\n');
    text.push_str(&format!("% argus query: {query} {adornment}\n"));
    text
}

fn lsp_severity(name: &str) -> u64 {
    match name {
        "error" => 1,
        "warning" => 2,
        "note" => 3,
        other => panic!("unknown severity {other}"),
    }
}

/// Assert one LSP diagnostic object carries exactly the same payload as
/// one `argus lint --json` diagnostic object.
fn assert_equivalent(lsp: &Json, cli: &Json, context: &str) {
    assert_eq!(
        lsp.get("code").and_then(Json::as_str),
        cli.get("code").and_then(Json::as_str),
        "{context}: code"
    );
    assert_eq!(
        lsp.get("message").and_then(Json::as_str),
        cli.get("message").and_then(Json::as_str),
        "{context}: message"
    );
    let severity = cli.get("severity").and_then(Json::as_str).expect("cli severity");
    assert_eq!(
        lsp.get("severity").and_then(Json::as_u64),
        Some(lsp_severity(severity)),
        "{context}: severity"
    );
    // Raw byte offsets ride along under `data` exactly when the CLI
    // diagnostic has a span.
    match cli.get("start").and_then(Json::as_u64) {
        Some(start) => {
            let data = lsp.get("data").expect("spanned diagnostic carries data");
            assert_eq!(data.get("start").and_then(Json::as_u64), Some(start), "{context}: start");
            assert_eq!(
                data.get("end").and_then(Json::as_u64),
                cli.get("end").and_then(Json::as_u64),
                "{context}: end"
            );
        }
        None => assert!(lsp.get("data").is_none(), "{context}: spanless diagnostic has no data"),
    }
    let notes: Vec<&str> = cli
        .get("notes")
        .and_then(Json::as_array)
        .expect("cli notes")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    let related: Vec<&str> = lsp
        .get("relatedInformation")
        .and_then(Json::as_array)
        .unwrap_or_default()
        .iter()
        .filter_map(|r| r.get("message").and_then(Json::as_str))
        .collect();
    assert_eq!(related, notes, "{context}: notes vs relatedInformation");
}

/// Every corpus entry's published diagnostics, rendered back to JSON
/// text, from one LSP session at the given parallelism.
fn corpus_publishes(jobs: usize) -> Vec<(String, Json)> {
    let (mut client, handle) = spawn_in_process(LspOptions { jobs, ..LspOptions::default() });
    client.initialize(None);
    let mut out = Vec::new();
    for entry in argus::corpus::corpus() {
        let uri = format!("file:///corpus/{}.pl", entry.name);
        let text = directive_text(entry.source, entry.query, entry.adornment);
        client.did_open(&uri, 1, &text);
        let publish = client.wait_publish(&uri, 1);
        client.did_close(&uri);
        out.push((entry.name.to_string(), publish));
    }
    client.shutdown_exit();
    assert_eq!(handle.join().unwrap(), 0);
    out
}

#[test]
fn corpus_diagnostics_are_byte_equivalent_to_lint_json() {
    let sequential = corpus_publishes(0);
    for (name, publish) in &sequential {
        let entry = argus::corpus::find(name).unwrap();
        let text = directive_text(entry.source, entry.query, entry.adornment);
        let (pred, adornment) = entry.query_key();
        let expected = lint_source(&text, &LintOptions { query: Some((pred, adornment)) });
        let cli = jsonval::parse(&render_json(&expected, "x.pl")).expect("render_json parses");
        let cli_diags = cli.get("diagnostics").and_then(Json::as_array).unwrap();
        let lsp_diags = publish.get("diagnostics").and_then(Json::as_array).unwrap();
        assert_eq!(lsp_diags.len(), cli_diags.len(), "{name}: diagnostic count");
        for (i, (l, c)) in lsp_diags.iter().zip(cli_diags).enumerate() {
            assert_equivalent(l, c, &format!("{name}[{i}]"));
        }
    }
}

#[test]
fn corpus_diagnostics_are_deterministic_across_parallelism() {
    let sequential = corpus_publishes(0);
    let parallel = corpus_publishes(8);
    for ((name_a, a), (name_b, b)) in sequential.iter().zip(&parallel) {
        assert_eq!(name_a, name_b);
        assert_eq!(
            a.get("diagnostics"),
            b.get("diagnostics"),
            "{name_a}: diagnostics differ between jobs 0 and jobs 8"
        );
    }
}

#[test]
fn incremental_sync_applies_utf16_edits() {
    let (mut client, handle) = spawn_in_process(LspOptions::default());
    client.initialize(None);
    let uri = "file:///utf16.pl";
    // 'é' is 1 UTF-16 unit, '😀' is 2: the atom ends at unit 8 on line 0.
    client.did_open(uri, 1, "p('é😀', X) :- q(X).\n");
    client.wait_publish(uri, 1);
    // Replace the call `q(X)` (units 15..19) with `p('x', X)` — the edit
    // range counts UTF-16 units, not bytes or chars.
    client.did_change_range(uri, 2, ((0, 15), (0, 19)), "p('x', X)");
    let publish = client.wait_publish(uri, 2);
    let expected = lint_source("p('é😀', X) :- p('x', X).\n", &LintOptions::default());
    let codes: Vec<&str> = publish
        .get("diagnostics")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(|d| d.get("code").and_then(Json::as_str))
        .collect();
    let want: Vec<&str> = expected.iter().map(|d| d.code).collect();
    assert_eq!(codes, want, "diagnostics of the edited text");
    client.shutdown_exit();
    assert_eq!(handle.join().unwrap(), 0);
}

#[test]
fn stats_pin_the_dirty_cone_through_the_protocol() {
    let case = argus::fuzz::gen::scale_case(0xA11CE, 300);
    let mut text = case.program.to_string();
    if !text.ends_with('\n') {
        text.push('\n');
    }
    text.push_str(&format!("% argus query: {} {}\n", case.query, case.adornment));
    let (mut client, handle) = spawn_in_process(LspOptions::default());
    client.initialize(None);
    let uri = "file:///scale.pl";
    client.did_open(uri, 1, &text);
    client.wait_publish(uri, 1);
    let stats = client.wait_stats(uri, 1);
    let total = stats.get("total").and_then(Json::as_u64).unwrap();
    assert!(total > 0, "cold open records SCC computations");

    // A one-clause edit recomputes only its dirty cone.
    let rule = case.program.rules[case.program.rules.len() / 2].to_string();
    let line = text.lines().count();
    client.did_change_range(uri, 2, ((line, 0), (line, 0)), &format!("{rule}\n"));
    client.wait_publish(uri, 2);
    let stats = client.wait_stats(uri, 2);
    let dirty = stats.get("dirty").and_then(Json::as_u64).unwrap();
    let total = stats.get("total").and_then(Json::as_u64).unwrap();
    assert!(dirty * 10 < total, "dirty cone {dirty}/{total} is not < 10%");

    // A no-op edit recomputes nothing.
    let first = text.chars().next().unwrap().to_string();
    client.did_change_range(uri, 3, ((0, 0), (0, 1)), &first);
    client.wait_publish(uri, 3);
    let stats = client.wait_stats(uri, 3);
    assert_eq!(stats.get("dirty").and_then(Json::as_u64), Some(0), "no-op edit is all hits");
    client.shutdown_exit();
    assert_eq!(handle.join().unwrap(), 0);
}

// ---- the real binary over real pipes --------------------------------

fn spawn_argus_lsp() -> (Child, LspClient) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_argus"))
        .args(["lsp", "--debounce-ms", "0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn argus lsp");
    let client = LspClient::over_child(&mut child);
    (child, client)
}

#[test]
fn spawned_binary_matches_lint_json_output() {
    let entry = argus::corpus::find("append_bff").unwrap();
    let path =
        std::env::temp_dir().join(format!("argus-lsp-test-{}-append.pl", std::process::id()));
    std::fs::write(&path, entry.source).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_argus"))
        .args(["lint", path.to_str().unwrap(), "--query", entry.query, "--mode"])
        .arg(entry.adornment)
        .arg("--json")
        .output()
        .unwrap();
    let cli = jsonval::parse(&String::from_utf8(out.stdout).unwrap()).expect("lint --json parses");
    let cli_diags = cli.get("diagnostics").and_then(Json::as_array).unwrap();

    let (mut child, mut client) = spawn_argus_lsp();
    client.initialize(None);
    let uri = "file:///spawned/append.pl";
    client.did_open(uri, 1, &directive_text(entry.source, entry.query, entry.adornment));
    let publish = client.wait_publish(uri, 1);
    let lsp_diags = publish.get("diagnostics").and_then(Json::as_array).unwrap();
    assert_eq!(lsp_diags.len(), cli_diags.len(), "diagnostic count");
    for (i, (l, c)) in lsp_diags.iter().zip(cli_diags).enumerate() {
        assert_equivalent(l, c, &format!("append_bff[{i}]"));
    }
    client.shutdown_exit();
    drop(client);
    assert!(child.wait().unwrap().success());
    std::fs::remove_file(&path).ok();
}

#[test]
fn spawned_binary_survives_hostile_frames() {
    let (mut child, mut client) = spawn_argus_lsp();
    client.initialize(None);

    // Garbage JSON in a well-formed frame: PARSE_ERROR, still serving.
    client.send_raw("this is not json");
    let (_, code) = client.wait_error();
    assert_eq!(code, -32700);

    // Oversized Content-Length (past the 16 MiB default): the declared
    // bytes are drained and answered with INVALID_REQUEST.
    let declared = 17 * 1024 * 1024usize;
    client.send_bytes(format!("Content-Length: {declared}\r\n\r\n").as_bytes());
    client.send_bytes(&vec![b'x'; declared]);
    let (_, code) = client.wait_error();
    assert_eq!(code, -32600);

    // Unknown request: METHOD_NOT_FOUND.
    let err = client.request("workspace/executeCommand", "{}").unwrap_err();
    assert_eq!(err.0, -32601);

    // The session still works end to end afterwards.
    let uri = "file:///hostile/ok.pl";
    client.did_open(uri, 1, "main :- p(a).\np(a).\n");
    let publish = client.wait_publish(uri, 1);
    assert_eq!(publish.get("diagnostics").and_then(Json::as_array).map(<[Json]>::len), Some(0));
    client.shutdown_exit();
    drop(client);
    assert!(child.wait().unwrap().success());
}

#[test]
fn spawned_binary_exits_1_on_truncated_header() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_argus"))
        .args(["lsp"])
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn argus lsp");
    let mut stdin = child.stdin.take().unwrap();
    stdin.write_all(b"Content-Length: 100\r\n").unwrap();
    drop(stdin); // EOF mid-header: unrecoverable desynchronization
    let status = child.wait().unwrap();
    assert_eq!(status.code(), Some(1));
}
